"""Replaying a wrapper against years of page evolution.

Run with::

    python examples/archive_robustness.py

We induce a wrapper on snapshot 0 of a synthetic news site through the
facade, then replay the site's archive (20-day snapshots, like the
paper's Internet Archive study) and watch when the induced, the
expert-written, and the canonical-path wrappers break.
"""

from repro import Sample, WrapperClient, parse_query
from repro.baselines import CanonicalInducer, UnionWrapper
from repro.evolution import SyntheticArchive
from repro.metrics import same_result_set
from repro.sites.verticals import make_news_site


def main() -> None:
    spec = make_news_site(0)
    task = next(t for t in spec.tasks if t.role == "headline")
    archive = SyntheticArchive(spec, n_snapshots=110)

    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, task.role)
    client = WrapperClient()
    handle = client.induce(task.task_id, [Sample(doc0, targets0)])

    wrappers = {
        "generated": UnionWrapper((parse_query(handle.query),)),
        "manual": UnionWrapper((parse_query(task.human_wrapper),)),
        "canonical": CanonicalInducer().induce(doc0, targets0),
    }
    for kind, wrapper in wrappers.items():
        print(f"{kind:10s} {wrapper}")

    alive = dict(wrappers)
    print("\nreplaying the archive (one snapshot every 20 days):")
    for index in range(1, archive.n_snapshots):
        if archive.is_broken(index):
            print(f"  day {archive.day(index):5d}: broken archive capture, skipping")
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, task.role)
        if not truth:
            print(f"  day {archive.day(index):5d}: target removed from the page")
            break
        for kind in list(alive):
            if not same_result_set(alive[kind].select(doc), truth):
                print(f"  day {archive.day(index):5d}: {kind} wrapper broke")
                del alive[kind]
    for kind in alive:
        print(f"  {kind} wrapper survived the whole six-year window")


if __name__ == "__main__":
    main()

"""Multi-field record extraction with relative wrappers (Sec. 7, item 1).

Run with::

    python examples/record_extraction.py

The paper's future-work direction: wrappers that extract *related*
items as records.  We annotate example records (anchor + fields) on a
product search page and induce in ``mode="record"``: the facade builds
one absolute wrapper for the record anchors and a relative dsXPath
wrapper per field, evaluated from each anchor.  Extraction then yields
one ``{field: value}`` row per anchor.
"""

from repro import Sample, WrapperClient, mark_volatile, parse_html

PAGE = """
<html><body>
<div class="refinements"><ul><li>Brand A</li><li>Brand B</li></ul></div>
<div id="results">
  <div class="s-item"><h2><a href="/p/1">Quiet Tablet 300</a></h2>
    <span class="price">$199.00</span><span class="seller">Northwind Labs</span></div>
  <div class="s-item"><h2><a href="/p/2">Rapid Phone 800</a></h2>
    <span class="price">$649.00</span><span class="seller">Acme Group</span></div>
  <div class="s-item"><h2><a href="/p/3">Golden Laptop 200</a></h2>
    <span class="price">$1099.00</span><span class="seller">Helios Partners</span></div>
  <div class="s-item"><h2><a href="/p/4">Electric Watch 500</a></h2>
    <span class="price">$329.00</span><span class="seller">Atlas Guild</span></div>
</div>
</body></html>
"""


def main() -> None:
    client = WrapperClient()
    doc = parse_html(PAGE)
    items = list(doc.root.iter_find(tag="div", class_="s-item"))
    mark_volatile(items)  # titles/prices/sellers are data

    annotated = items[:3]  # 3 of 4 records annotated (25% negative noise)
    sample = Sample(
        doc,
        annotated,
        fields={
            "title": [item.find(tag="a") for item in annotated],
            "price": [item.find(tag="span", class_="price") for item in annotated],
            "seller": [item.find(tag="span", class_="seller") for item in annotated],
        },
    )

    handle = client.induce("shop/items", [sample], mode="record")
    print("anchor wrapper: ", handle.query)
    for name, query in handle.fields.items():
        print(f"field {name!r}: {query}")

    print("\nextracted records:")
    result = client.extract("shop/items", PAGE)
    for record in result.records:
        print("  ", record)


if __name__ == "__main__":
    main()

"""Multi-field record extraction with relative wrappers (Sec. 7, item 1).

Run with::

    python examples/record_extraction.py

The paper's future-work direction: wrappers that extract *related*
items as records.  We annotate two example records (anchor + fields)
on a product search page; the inducer builds one absolute wrapper for
the record anchors and a relative dsXPath wrapper per field, evaluated
from each anchor.
"""

from repro import parse_html
from repro.dom.node import TextNode
from repro.induction import RecordExample, RelativeWrapperInducer

PAGE = """
<html><body>
<div class="refinements"><ul><li>Brand A</li><li>Brand B</li></ul></div>
<div id="results">
  <div class="s-item"><h2><a href="/p/1">Quiet Tablet 300</a></h2>
    <span class="price">$199.00</span><span class="seller">Northwind Labs</span></div>
  <div class="s-item"><h2><a href="/p/2">Rapid Phone 800</a></h2>
    <span class="price">$649.00</span><span class="seller">Acme Group</span></div>
  <div class="s-item"><h2><a href="/p/3">Golden Laptop 200</a></h2>
    <span class="price">$1099.00</span><span class="seller">Helios Partners</span></div>
  <div class="s-item"><h2><a href="/p/4">Electric Watch 500</a></h2>
    <span class="price">$329.00</span><span class="seller">Atlas Guild</span></div>
</div>
</body></html>
"""


def main() -> None:
    doc = parse_html(PAGE)
    for node in doc.root.descendants():
        if isinstance(node, TextNode) and node.parent.tag in ("a", "span"):
            node.meta["volatile"] = True  # titles/prices/sellers are data

    items = list(doc.root.iter_find(tag="div", class_="s-item"))
    examples = [
        RecordExample(
            anchor=item,
            fields={
                "title": item.find(tag="a"),
                "price": item.find(tag="span", class_="price"),
                "seller": item.find(tag="span", class_="seller"),
            },
        )
        for item in items[:3]  # 3 of 4 records annotated (25% negative noise)
    ]

    wrapper = RelativeWrapperInducer(k=10).induce(doc, examples)
    print("anchor wrapper: ", wrapper.anchor_query)
    for name, query in wrapper.field_queries.items():
        print(f"field {name!r}: {query}")

    print("\nextracted records:")
    for record in wrapper.extract_values(doc):
        print("  ", record)


if __name__ == "__main__":
    main()

"""Quickstart: induce a robust wrapper from one annotated page.

Run with::

    python examples/quickstart.py

We load an IMDB-style movie page, annotate the director's name node,
and deploy a wrapper through the :class:`repro.WrapperClient` facade.
Note how the top-ranked expressions use semantic markup
(itemprop/class/id) and template labels instead of the director's name
itself — they keep working when the movie (and director) changes.
"""

from repro import Sample, WrapperClient, mark_volatile, parse_html

PAGE = """
<html><head><title>Casino</title></head><body>
<div class="header">
  <input type="text" name="q" id="suggestion-search">
</div>
<div class="promo"><p>Subscribe now!</p></div>
<div class="article" id="main">
  <h1 itemprop="name">Casino</h1>
  <div class="txt-block">
    <h4 class="inline">Director:</h4>
    <a href="/name/nm0000217"><span itemprop="name" class="itemprop">Martin Scorsese</span></a>
  </div>
  <div class="txt-block">
    <h4 class="inline">Writers:</h4>
    <span itemprop="name" class="itemprop">Nicholas Pileggi</span>
  </div>
</div>
</body></html>
"""


def main() -> None:
    client = WrapperClient()  # in-memory; WrapperClient(store="store/") persists
    doc = parse_html(PAGE)

    # The annotation: the span holding the director's name.  In the
    # automated setting this would come from an entity recognizer.
    target = doc.find(tag="span")
    print(f"annotated node: <span>{target.normalized_text()}</span>\n")

    # Mark the data text as volatile so the inducer does not anchor the
    # wrapper on "Martin Scorsese" (it would break on the next movie).
    mark_volatile(target)

    handle = client.induce("casino/director", [Sample(doc, [target])])

    print("top induced wrappers (best first):")
    for rank, query in enumerate(handle.queries[:5], start=1):
        print(f"  {rank}. {query}")

    print(f"\nbest wrapper: {handle.query}")
    result = client.extract("casino/director", PAGE)
    print(f"selects: {list(result.values)}  [drift signals: {list(result.drift_signals)}]")


if __name__ == "__main__":
    main()

"""Quickstart: induce a robust wrapper from one annotated page.

Run with::

    python examples/quickstart.py

We load an IMDB-style movie page, annotate the director's name node,
and let the inducer return the K best dsXPath wrappers.  Note how the
top-ranked expressions use semantic markup (itemprop/class/id) and
template labels instead of the director's name itself — they keep
working when the movie (and director) changes.
"""

from repro import WrapperInducer, evaluate, parse_html
from repro.dom.node import TextNode

PAGE = """
<html><head><title>Casino</title></head><body>
<div class="header">
  <input type="text" name="q" id="suggestion-search">
</div>
<div class="promo"><p>Subscribe now!</p></div>
<div class="article" id="main">
  <h1 itemprop="name">Casino</h1>
  <div class="txt-block">
    <h4 class="inline">Director:</h4>
    <a href="/name/nm0000217"><span itemprop="name" class="itemprop">Martin Scorsese</span></a>
  </div>
  <div class="txt-block">
    <h4 class="inline">Writers:</h4>
    <span itemprop="name" class="itemprop">Nicholas Pileggi</span>
  </div>
</div>
</body></html>
"""


def main() -> None:
    doc = parse_html(PAGE)

    # The annotation: the span holding the director's name.  In the
    # automated setting this would come from an entity recognizer.
    target = doc.find(tag="span")
    print(f"annotated node: <span>{target.normalized_text()}</span>\n")

    # Mark the data text as volatile so the inducer does not anchor the
    # wrapper on "Martin Scorsese" (it would break on the next movie).
    for node in target.descendants():
        if isinstance(node, TextNode):
            node.meta["volatile"] = True

    inducer = WrapperInducer(k=10)
    result = inducer.induce_one(doc, [target])

    print("top induced wrappers (F0.5, then robustness score):")
    for rank, instance in enumerate(result.top(5), start=1):
        print(f"  {rank}. {instance}")

    best = result.best.query
    print(f"\nbest wrapper: {best}")
    print("selects:", [n.normalized_text() for n in evaluate(best, doc.root, doc)])


if __name__ == "__main__":
    main()

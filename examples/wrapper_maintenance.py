"""Wrapper maintenance: explicit re-annotation after a break.

Run with::

    python examples/wrapper_maintenance.py

The paper motivates noise-resistant induction with wrapper-maintenance
pipelines [22]: when a wrapper breaks, the *old* extraction results can
be located in the new page version (possibly imperfectly) and used as
machine-generated annotations to induce a fresh wrapper — no human in
the loop.  This example runs that loop against the evolving archive
through the facade: ``client.extract`` serves each snapshot (and
reports the drift signals it showed), and ``client.repair`` re-induces
from the stored samples plus the relocated annotations.
"""

from repro import Sample, WrapperClient, canonical_path, mark_volatile
from repro.evolution import SyntheticArchive
from repro.sites.verticals import make_movies_site


def relocate_by_text(doc, texts):
    """Find nodes in a new page version carrying previously-extracted
    values — a toy instance of the known-instances trick of [15, 22]."""
    matches = []
    for element in doc.root.descendant_elements():
        if doc.normalized_text(element) in texts and not element.element_children():
            matches.append(element)
    return matches


MAX_REPAIRS = 4


def main() -> None:
    spec = make_movies_site(1)
    archive = SyntheticArchive(spec, n_snapshots=60)
    client = WrapperClient()
    site_key = f"{spec.site_id}/cast"

    doc = archive.snapshot(0)
    targets = archive.targets(doc, "cast")
    handle = client.induce(site_key, [Sample(doc, targets)])
    print(f"day 0: induced {handle.query}")

    repairs = 0
    for index in range(1, archive.n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, "cast")
        if not truth:
            print(f"day {archive.day(index)}: cast list removed, stopping")
            break
        result = client.extract(site_key, doc)
        wanted = sorted(doc.normalized_text(n) for n in truth)
        if sorted(result.values) == wanted:
            continue

        # The wrapper broke.  Relocate last-known values as annotations;
        # this is noisy (cast lists change between snapshots).
        previous = archive.snapshot(index - 1)
        known = {previous.normalized_text(n) for n in archive.targets(previous, "cast")}
        annotations = relocate_by_text(doc, known)
        if not annotations:
            print(f"day {archive.day(index)}: no known instances found, giving up")
            break
        mark_volatile(annotations)
        handle = client.repair(
            site_key, doc, target_paths=[str(canonical_path(n)) for n in annotations]
        )
        repairs += 1
        # The relocated nodes may sit one level below the original target
        # elements; compare by extracted values, which is what matters.
        extracted = sorted(client.extract(site_key, doc).values)
        verdict = "values match" if extracted == wanted else "partial"
        print(
            f"day {archive.day(index):5d}: repaired from {len(annotations)} relocated "
            f"instances (gen {handle.generation}) -> {handle.query}  ({verdict})"
        )
        if repairs >= MAX_REPAIRS:
            print("(stopping the demo after a few repairs)")
            break

    print(f"\nmaintenance loop finished with {repairs} repair(s)")


if __name__ == "__main__":
    main()

"""Wrapper maintenance: re-induction after a break.

Run with::

    python examples/wrapper_maintenance.py

The paper motivates noise-resistant induction with wrapper-maintenance
pipelines [22]: when a wrapper breaks, the *old* extraction results can
be located in the new page version (possibly imperfectly) and used as
machine-generated annotations to induce a fresh wrapper — no human in
the loop.  This example runs that loop against the evolving archive.
"""

from repro import WrapperInducer, evaluate
from repro.dom.node import TextNode
from repro.evolution import SyntheticArchive
from repro.metrics import same_result_set
from repro.sites.verticals import make_movies_site


def relocate_by_text(doc, texts):
    """Find nodes in a new page version carrying previously-extracted
    values — a toy instance of the known-instances trick of [15, 22]."""
    matches = []
    for element in doc.root.descendant_elements():
        if doc.normalized_text(element) in texts and not element.element_children():
            matches.append(element)
    return matches


MAX_REINDUCTIONS = 4


def main() -> None:
    spec = make_movies_site(1)
    archive = SyntheticArchive(spec, n_snapshots=60)
    inducer = WrapperInducer(k=10)

    doc = archive.snapshot(0)
    targets = archive.targets(doc, "cast")
    wrapper = inducer.induce_one(doc, targets).best.query
    print(f"day 0: induced {wrapper}")

    re_inductions = 0
    for index in range(1, archive.n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, "cast")
        if not truth:
            print(f"day {archive.day(index)}: cast list removed, stopping")
            break
        if same_result_set(evaluate(wrapper, doc.root, doc), truth):
            continue

        # The wrapper broke.  Relocate last-known values as annotations;
        # this is noisy (cast lists change between snapshots).
        previous = archive.snapshot(index - 1)
        known = {previous.normalized_text(n) for n in archive.targets(previous, "cast")}
        annotations = relocate_by_text(doc, known)
        if not annotations:
            print(f"day {archive.day(index)}: no known instances found, giving up")
            break
        for node in annotations:
            for text in node.descendants():
                if isinstance(text, TextNode):
                    text.meta["volatile"] = True
        wrapper = inducer.induce_one(doc, annotations).best.query
        re_inductions += 1
        # The relocated nodes may sit one level below the original target
        # elements; compare by extracted values, which is what matters.
        extracted = sorted(doc.normalized_text(n) for n in evaluate(wrapper, doc.root, doc))
        wanted = sorted(doc.normalized_text(n) for n in truth)
        verdict = "values match" if extracted == wanted else "partial"
        print(
            f"day {archive.day(index):5d}: re-induced from {len(annotations)} "
            f"relocated instances -> {wrapper}  ({verdict})"
        )
        if re_inductions >= MAX_REINDUCTIONS:
            print("(stopping the demo after a few repairs)")
            break

    print(f"\nmaintenance loop finished with {re_inductions} re-induction(s)")


if __name__ == "__main__":
    main()

"""Noise-resistant induction from machine-generated annotations.

Run with::

    python examples/noisy_ner_extraction.py

This is the paper's motivating scenario (Sec. 6.4): annotations come
from an entity recognizer, not a human, so some list entries are missed
(negative noise) and some spurious nodes are annotated (positive
noise).  Because dsXPath is deliberately too weak to express "all list
items except the 3rd and 7th, plus that sidebar node", the induced
wrapper generalizes to the full intended list.
"""

import random

from repro import Sample, WrapperClient, canonical_path
from repro.noise.ner import NERProfile, SimulatedNER
from repro.sites.listings import ListingPageSpec, build_listing_page


def main() -> None:
    spec = ListingPageSpec(
        page_id="bookshop",
        entity_type="person",
        list_size=24,
        with_sidebar=False,
        seed=7,
    )
    doc = build_listing_page(spec)
    truth = doc.find_by_meta("role", "entities")
    print(f"page with {len(truth)} author names in the result list")

    ner = SimulatedNER(NERProfile(miss_rate=(0.25, 0.35), random_positive_rate=(0.2, 0.3)))
    annotation = ner.annotate(doc, "person", random.Random(42))
    print(
        f"NER annotated {len(annotation.nodes)} nodes "
        f"({annotation.negative_noise:.0%} negative, "
        f"{annotation.positive_noise:.0%} positive noise)"
    )

    client = WrapperClient()
    handle = client.induce("bookshop/authors", [Sample(doc, annotation.nodes)])
    print(f"\ninduced wrapper: {handle.query}")

    result = client.extract("bookshop/authors", doc)
    truth_paths = {str(canonical_path(node)) for node in truth}
    selected = set(result.paths)
    tp = len(selected & truth_paths)
    precision = tp / len(selected) if selected else 0.0
    recall = tp / len(truth_paths) if truth_paths else 0.0
    print(
        f"selected {result.count} nodes: precision {precision:.0%}, "
        f"recall {recall:.0%} against the true list"
    )
    if selected == truth_paths:
        print("the wrapper recovered the intended list exactly, despite the noise")


if __name__ == "__main__":
    main()

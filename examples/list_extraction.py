"""Robust list selection with sideways checks.

Run with::

    python examples/list_extraction.py

Lists are where dsXPath's following-/preceding-sibling axes earn their
place (Sec. 6.3): to select exactly the data rows of a table — and not
the header — the wrapper anchors on a *determining element* and walks
sideways.  We also demonstrate noise resistance: annotating only part
of the list induces the same wrapper.
"""

from repro import Sample, WrapperClient, mark_volatile, parse_html

PAGE = """
<html><body>
<div class="page">
  <table class="frontgrid">
    <tr class="head"><td><b>News and Latest Reviews</b></td></tr>
    <tr><td><a href="/r/1">Quiet Tablet 300 review</a></td></tr>
    <tr><td><a href="/r/2">Rapid Phone 800 hands-on</a></td></tr>
    <tr><td><a href="/r/3">Golden Laptop 200 tested</a></td></tr>
    <tr><td><a href="/r/4">Electric Watch 500 preview</a></td></tr>
    <tr><td><a href="/r/5">Hidden Camera 1100 review</a></td></tr>
  </table>
</div>
</body></html>
"""


def main() -> None:
    client = WrapperClient()
    doc = parse_html(PAGE)
    rows = [tr for tr in doc.root.iter_find(tag="tr")][1:]  # all but the header

    # Review titles are page *data*; mark them volatile so the inducer
    # anchors on template structure, not on "Rapid Phone 800".
    mark_volatile(rows)
    print(f"annotating all {len(rows)} data rows:")
    handle = client.induce("reviews/rows", [Sample(doc, rows)])
    print(f"  -> {handle.query}")

    print("\nannotating only 4 of 5 rows (20% negative noise, paper's regime):")
    noisy = [rows[0], rows[1], rows[2], rows[4]]
    noisy_handle = client.induce("reviews/rows-noisy", [Sample(doc, noisy)])
    print(f"  -> {noisy_handle.query}")

    result = client.extract("reviews/rows-noisy", PAGE)
    print(
        f"\nthe noisy wrapper selects {result.count}/{len(rows)} data rows — "
        "the fragment cannot express 'all rows except the 4th', so it generalizes"
    )


if __name__ == "__main__":
    main()

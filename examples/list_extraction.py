"""Robust list selection with sideways checks.

Run with::

    python examples/list_extraction.py

Lists are where dsXPath's following-/preceding-sibling axes earn their
place (Sec. 6.3): to select exactly the data rows of a table — and not
the header — the wrapper anchors on a *determining element* and walks
sideways.  We also demonstrate noise resistance: annotating only part
of the list induces the same wrapper.
"""

from repro import WrapperInducer, evaluate, parse_html

PAGE = """
<html><body>
<div class="page">
  <table class="frontgrid">
    <tr class="head"><td><b>News and Latest Reviews</b></td></tr>
    <tr><td><a href="/r/1">Quiet Tablet 300 review</a></td></tr>
    <tr><td><a href="/r/2">Rapid Phone 800 hands-on</a></td></tr>
    <tr><td><a href="/r/3">Golden Laptop 200 tested</a></td></tr>
    <tr><td><a href="/r/4">Electric Watch 500 preview</a></td></tr>
    <tr><td><a href="/r/5">Hidden Camera 1100 review</a></td></tr>
  </table>
</div>
</body></html>
"""


def main() -> None:
    doc = parse_html(PAGE)
    rows = [tr for tr in doc.root.iter_find(tag="tr")][1:]  # all but the header

    # Review titles are page *data*; mark them volatile so the inducer
    # anchors on template structure, not on "Rapid Phone 800".
    from repro.dom.node import TextNode

    for row in rows:
        for node in row.descendants():
            if isinstance(node, TextNode):
                node.meta["volatile"] = True
    print(f"annotating all {len(rows)} data rows:")
    result = WrapperInducer(k=10).induce_one(doc, rows)
    print(f"  -> {result.best.query}")

    print("\nannotating only 4 of 5 rows (20% negative noise, paper's regime):")
    noisy = [rows[0], rows[1], rows[2], rows[4]]
    noisy_result = WrapperInducer(k=10).induce_one(doc, noisy)
    print(f"  -> {noisy_result.best.query}")

    selected = evaluate(noisy_result.best.query, doc.root, doc)
    print(
        f"\nthe noisy wrapper selects {len(selected)}/{len(rows)} data rows — "
        "the fragment cannot express 'all rows except the 4th', so it generalizes"
    )


if __name__ == "__main__":
    main()

"""The wrapper lifecycle runtime, end to end.

Run with::

    PYTHONPATH=src python examples/lifecycle_runtime.py

Walks the full production loop on one churny corpus site: induce a
wrapper, serialize it to a JSON artifact, reload it, batch-extract it
across archive snapshots, watch the drift detector fire, and repair it
by automatic re-induction from the stored samples plus the drifted page
(labels from the surviving ensemble majority — no human in the loop).
"""

import tempfile
from pathlib import Path

from repro.dom.serialize import to_html
from repro.evolution import SyntheticArchive
from repro.induction import QuerySample, WrapperInducer
from repro.metrics import wrapper_matches_targets
from repro.runtime import (
    BatchExtractor,
    DriftDetector,
    PageJob,
    WrapperArtifact,
    reinduce,
)
from repro.sites.verticals import make_weather_site


def main() -> None:
    spec = make_weather_site(1)
    role = "temp"
    archive = SyntheticArchive(spec, n_snapshots=30)

    # 1. induce + serialize
    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, role)
    result = WrapperInducer(k=10).induce_one(doc0, targets0)
    artifact = WrapperArtifact.from_induction(
        result,
        [QuerySample(doc0, targets0)],
        task_id=f"{spec.site_id}/{role}",
        site_id=spec.site_id,
        role=role,
    )
    path = Path(tempfile.mkdtemp()) / artifact.filename()
    artifact.save(path)
    print(f"induced + saved: {artifact.best.text}")
    print(f"ensemble: {' | '.join(artifact.ensemble)}")

    # 2. reload and serve across the archive
    artifact = WrapperArtifact.load(path)
    detector = DriftDetector()
    extractor = BatchExtractor(workers=1)
    for index in range(1, archive.n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, role)
        if not truth:
            print(f"day {archive.day(index)}: data left the page, stopping")
            return
        job = PageJob(
            page_id=f"{spec.site_id}@{index}",
            html=to_html(doc),
            wrappers=((artifact.task_id, artifact.best.text),),
        )
        (record,) = extractor.extract([job])
        report = detector.check(artifact, doc, snapshot=index)
        status = ",".join(report.signals) if report.signals else "healthy"
        print(f"day {archive.day(index):4d}: {record.count} node(s)  [{status}]")
        if not report.drifted:
            continue

        # 3. drift — repair from stored samples + this page
        print(f"day {archive.day(index)}: DRIFT — re-inducing from stored samples")
        repaired = reinduce(artifact, doc, snapshot=index)
        recovered = wrapper_matches_targets(repaired.best_query(), doc, truth)
        print(f"repaired (gen {repaired.generation}): {repaired.best.text}")
        print(f"matches ground truth on the drifted page: {recovered}")
        repaired.save(path)
        artifact = WrapperArtifact.load(path)

    print("\nserved the full archive window")


if __name__ == "__main__":
    main()

"""The wrapper lifecycle, end to end, through the facade.

Run with::

    PYTHONPATH=src python examples/lifecycle_runtime.py

Walks the full production loop on one churny corpus site with a
store-backed :class:`repro.WrapperClient`: induce a wrapper (persisted
as a JSON artifact in a sharded store), serve it across archive
snapshots, watch the drift signals every served page reports, and
repair it by automatic re-induction from the stored samples plus the
drifted page (labels from the surviving ensemble majority — no human
in the loop).  The same loop runs unchanged against a remote
``serve --listen`` process via :class:`repro.RemoteWrapperClient`.
"""

import tempfile

from repro import Sample, WrapperClient
from repro.evolution import SyntheticArchive
from repro.sites.verticals import make_weather_site


def main() -> None:
    spec = make_weather_site(1)
    role = "temp"
    site_key = f"{spec.site_id}/{role}"
    archive = SyntheticArchive(spec, n_snapshots=30)

    # A store-backed client: every deployed generation lands in the
    # sharded artifact store and survives this process.
    client = WrapperClient(store=tempfile.mkdtemp())

    # 1. induce + deploy
    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, role)
    handle = client.induce(site_key, [Sample(doc0, targets0)], role=role)
    print(f"induced + stored: {handle.query}")
    print(f"ensemble: {' | '.join(handle.ensemble)}")

    # 2. serve across the archive — every extraction doubles as a check
    for index in range(1, archive.n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, role)
        if not truth:
            print(f"day {archive.day(index)}: data left the page, stopping")
            return
        result = client.extract(site_key, doc)
        status = ",".join(result.drift_signals) if result.drift_signals else "healthy"
        print(f"day {archive.day(index):4d}: {result.count} node(s)  [{status}]")
        if not result.drifted:
            continue

        # 3. drift — repair from stored samples + this page
        print(f"day {archive.day(index)}: DRIFT — re-inducing from stored samples")
        handle = client.repair(site_key, doc)
        repaired = client.extract(site_key, doc)
        wanted = sorted(doc.normalized_text(n) for n in truth)
        recovered = sorted(repaired.values) == wanted
        print(f"repaired (gen {handle.generation}): {handle.query}")
        print(f"matches ground truth on the drifted page: {recovered}")

    print("\nserved the full archive window")


if __name__ == "__main__":
    main()

"""DOM substrate: a minimal, self-contained HTML document tree.

The paper operates on the tree structure of HTML documents: element
nodes, attribute nodes, and text nodes (Sec. 2).  This package provides
that tree, an HTML parser built on the standard library, a serializer,
a programmatic builder for synthetic pages, and subtree signatures used
by the robustness metric.

Nodes carry an extra ``meta`` dictionary that is invisible to queries
and serialization.  The evolution simulator uses it to attach *logical
ids* to data items so that ground truth can be tracked across page
versions without influencing induction.
"""

from repro.dom.builder import E, T, document
from repro.dom.node import (
    AttributeNode,
    Document,
    ElementNode,
    Node,
    TextNode,
)
from repro.dom.parser import parse_html
from repro.dom.serialize import to_html
from repro.dom.signatures import subtree_signature

__all__ = [
    "AttributeNode",
    "Document",
    "E",
    "ElementNode",
    "Node",
    "T",
    "TextNode",
    "document",
    "parse_html",
    "subtree_signature",
    "to_html",
]

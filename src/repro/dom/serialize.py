"""Serialization of document trees back to HTML text."""

from __future__ import annotations

from html import escape

from repro.dom.node import AttributeNode, Document, ElementNode, Node, TextNode
from repro.dom.parser import VOID_ELEMENTS


def to_html(node: Node | Document, indent: int | None = None) -> str:
    """Serialize a node or document to HTML.

    With ``indent=None`` the output is compact (no inserted whitespace,
    so it round-trips through :func:`repro.dom.parse_html`).  With an
    integer indent, output is pretty-printed for humans; pretty output
    is *not* guaranteed to round-trip because of inserted whitespace.
    """
    if isinstance(node, Document):
        node = node.root
    parts: list[str] = []
    _serialize(node, parts, indent, 0)
    return "".join(parts)


def _serialize(node: Node, parts: list[str], indent: int | None, depth: int) -> None:
    pad = "" if indent is None else "\n" + " " * (indent * depth)
    if isinstance(node, TextNode):
        parts.append(pad + escape(node.text, quote=False) if indent else escape(node.text, quote=False))
        return
    if isinstance(node, AttributeNode):
        parts.append(f'@{node.name}="{escape(node.value)}"')
        return
    assert isinstance(node, ElementNode)
    if node.tag.startswith("#"):
        for child in node.children:
            _serialize(child, parts, indent, depth)
        return
    attrs = "".join(f' {name}="{escape(value)}"' for name, value in node.attrs.items())
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if node.tag in VOID_ELEMENTS:
        return
    for child in node.children:
        _serialize(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>")

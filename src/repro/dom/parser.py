"""HTML parsing into the repro document tree.

Built on :class:`html.parser.HTMLParser` from the standard library (no
third-party parser is available offline).  The parser is lenient, like
browsers and like the archived pages the paper evaluates on: unmatched
end tags are ignored, unclosed tags are closed implicitly at the end,
and void elements (``<br>``, ``<img>``, ...) never take children.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro.dom.node import Document, ElementNode, TextNode

#: Elements that never have content per the HTML standard.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

#: Elements whose raw text content we keep verbatim but never index as
#: template text (scripts/styles are noise for wrapper induction).
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


class _TreeBuilder(HTMLParser):
    """Accumulates parse events into an element tree."""

    def __init__(self, keep_whitespace: bool) -> None:
        super().__init__(convert_charrefs=True)
        self.keep_whitespace = keep_whitespace
        self.root = ElementNode("#fragment")
        self._stack: list[ElementNode] = [self.root]

    # -- handler overrides ---------------------------------------------------

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element = ElementNode(tag, {k: (v or "") for k, v in attrs})
        self._stack[-1].append_child(element)
        if tag not in VOID_ELEMENTS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element = ElementNode(tag, {k: (v or "") for k, v in attrs})
        self._stack[-1].append_child(element)

    def handle_endtag(self, tag: str) -> None:
        if tag in VOID_ELEMENTS:
            return
        # Pop to the matching open tag if one exists; otherwise ignore the
        # stray end tag (browser-style error recovery).
        for depth in range(len(self._stack) - 1, 0, -1):
            if self._stack[depth].tag == tag:
                del self._stack[depth:]
                return

    def handle_data(self, data: str) -> None:
        if not data:
            return
        if not self.keep_whitespace and not data.strip():
            return
        parent = self._stack[-1]
        if parent.tag in RAW_TEXT_ELEMENTS:
            return
        parent.append_child(TextNode(data))

    def handle_comment(self, data: str) -> None:
        # Comments are not part of the queryable tree model (Sec. 2).
        return


def parse_html(html: str, url: str = "", keep_whitespace: bool = False) -> Document:
    """Parse HTML text into a :class:`Document`.

    The parsed top-level nodes (usually a single ``<html>`` element) are
    placed under the document's synthetic ``#document`` node, so both
    full pages and fragments parse without boilerplate.
    """
    builder = _TreeBuilder(keep_whitespace=keep_whitespace)
    builder.feed(html)
    builder.close()
    return Document(builder.root, url=url)

"""Abstract subtree signatures.

The paper's robustness definition (Sec. 2) compares wrappers across two
documents: ``q`` is robust for ``D`` and ``D'`` if a bijection between
``q(D)`` and ``q(D')`` maps every selected node to one with an equal
*abstract* (node-id free) subtree.  Equality of abstract subtrees is
exactly equality of the signatures computed here, so the bijection
exists iff the two result multisets of signatures coincide.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.dom.node import AttributeNode, ElementNode, Node, TextNode


def subtree_signature(node: Node) -> tuple:
    """A hashable value equal for nodes with equal abstract subtrees."""
    if isinstance(node, TextNode):
        return ("#text", node.text)
    if isinstance(node, AttributeNode):
        return ("#attr", node.name, node.value)
    assert isinstance(node, ElementNode)
    attrs = tuple(sorted(node.attrs.items()))
    children = tuple(subtree_signature(child) for child in node.children)
    return ("#elem", node.tag, attrs, children)


def signature_multiset(nodes: Iterable[Node]) -> Counter:
    """Multiset of subtree signatures of a node-set."""
    return Counter(subtree_signature(node) for node in nodes)


def subtree_bijection_exists(nodes_a: Iterable[Node], nodes_b: Iterable[Node]) -> bool:
    """True iff a subtree-preserving bijection exists between the node sets.

    This is the paper's robustness condition for a query evaluated on two
    documents (order independent, since wrappers return node *sets*).
    """
    return signature_multiset(nodes_a) == signature_multiset(nodes_b)

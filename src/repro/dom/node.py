"""Document tree nodes.

The tree model follows Sec. 2 of the paper: an HTML document gives rise
to element nodes, attribute nodes, and text nodes.  Attribute nodes are
materialized lazily (one per element/attribute-name pair) so that the
``attribute`` axis can return stable node objects.

Every node exposes the navigation needed by the dsXPath axes (parent,
children, siblings) plus a ``meta`` dict used by the experiment harness
for ground-truth bookkeeping; ``meta`` never influences query results.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

_WHITESPACE = re.compile(r"\s+")


def normalize_space(text: str) -> str:
    """Collapse runs of whitespace and strip, like XPath normalize-space."""
    return _WHITESPACE.sub(" ", text).strip()


class Node:
    """Base class for element and text nodes."""

    __slots__ = ("parent", "meta")

    def __init__(self) -> None:
        self.parent: Optional[ElementNode] = None
        self.meta: dict = {}

    # -- navigation ------------------------------------------------------

    def ancestors(self) -> Iterator["ElementNode"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node reachable via parent links."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def index_in_parent(self) -> int:
        """Position of this node among all siblings (0-based).

        Raises ``ValueError`` for detached nodes.
        """
        if self.parent is None:
            raise ValueError("node has no parent")
        for i, child in enumerate(self.parent.children):
            if child is self:
                return i
        raise ValueError("node not found among parent's children")

    def following_siblings(self) -> Iterator["Node"]:
        if self.parent is None:
            return
        seen_self = False
        for child in self.parent.children:
            if seen_self:
                yield child
            elif child is self:
                seen_self = True

    def preceding_siblings(self) -> Iterator["Node"]:
        """Yield preceding siblings in *reverse* document order (nearest first)."""
        if self.parent is None:
            return
        before: list[Node] = []
        for child in self.parent.children:
            if child is self:
                break
            before.append(child)
        yield from reversed(before)

    def with_meta(self, **meta) -> "Node":
        """Attach metadata and return self (builder-style chaining)."""
        self.meta.update(meta)
        return self

    # -- text ------------------------------------------------------------

    def text_value(self) -> str:
        """Concatenation of all descendant text (un-normalized)."""
        raise NotImplementedError

    def normalized_text(self) -> str:
        """normalize-space(.) of this node."""
        return normalize_space(self.text_value())


class TextNode(Node):
    """A text node; its string value is the text itself."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def text_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snippet = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"TextNode({snippet!r})"


class AttributeNode(Node):
    """An attribute node, owned by an element.

    Attribute nodes are created lazily by :meth:`ElementNode.attribute_node`
    and are stable per (element, name) pair, so they can be returned by the
    ``attribute`` axis and compared by identity.
    """

    __slots__ = ("name",)

    def __init__(self, owner: "ElementNode", name: str) -> None:
        super().__init__()
        self.parent = owner
        self.name = name

    @property
    def value(self) -> str:
        assert isinstance(self.parent, ElementNode)
        return self.parent.attrs.get(self.name, "")

    def text_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeNode(@{self.name}={self.value!r})"


class ElementNode(Node):
    """An element node with a tag name, attributes, and ordered children."""

    __slots__ = ("tag", "attrs", "children", "_attr_nodes")

    def __init__(self, tag: str, attrs: Optional[dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Node] = []
        self._attr_nodes: dict[str, AttributeNode] = {}

    # -- structure edits ---------------------------------------------------

    def append_child(self, node: Node) -> Node:
        node.parent = self
        self.children.append(node)
        return node

    def insert_child(self, index: int, node: Node) -> Node:
        node.parent = self
        self.children.insert(index, node)
        return node

    def remove_child(self, node: Node) -> Node:
        self.children.remove(node)
        node.parent = None
        return node

    def replace_child(self, old: Node, new: Node) -> Node:
        index = old.index_in_parent()
        self.children[index] = new
        new.parent = self
        old.parent = None
        return new

    def set_attr(self, name: str, value: str) -> None:
        self.attrs[name] = value

    def remove_attr(self, name: str) -> None:
        self.attrs.pop(name, None)

    # -- navigation ----------------------------------------------------------

    def attribute_node(self, name: str) -> Optional[AttributeNode]:
        """Return the stable attribute node for ``name``, or None if absent."""
        if name not in self.attrs:
            return None
        node = self._attr_nodes.get(name)
        if node is None:
            node = AttributeNode(self, name)
            self._attr_nodes[name] = node
        return node

    def attribute_nodes(self) -> list[AttributeNode]:
        nodes = [self.attribute_node(name) for name in sorted(self.attrs)]
        return [node for node in nodes if node is not None]

    def element_children(self) -> list["ElementNode"]:
        return [c for c in self.children if isinstance(c, ElementNode)]

    def descendants(self) -> Iterator[Node]:
        """Yield all descendants (elements and text) in document order."""
        for child in self.children:
            yield child
            if isinstance(child, ElementNode):
                yield from child.descendants()

    def descendant_elements(self) -> Iterator["ElementNode"]:
        for node in self.descendants():
            if isinstance(node, ElementNode):
                yield node

    def find(self, **criteria) -> Optional["ElementNode"]:
        """First descendant element matching attribute criteria.

        ``tag`` matches the tag name; other keys match HTML attributes
        (``class_`` maps to ``class``).  Convenience for tests/examples.
        """
        for node in self.iter_find(**criteria):
            return node
        return None

    def iter_find(self, **criteria) -> Iterator["ElementNode"]:
        tag = criteria.pop("tag", None)
        attrs = {k.rstrip("_"): v for k, v in criteria.items()}
        for node in self.descendant_elements():
            if tag is not None and node.tag != tag:
                continue
            if all(node.attrs.get(k) == v for k, v in attrs.items()):
                yield node

    # -- text ----------------------------------------------------------------

    def text_value(self) -> str:
        parts: list[str] = []
        for node in self.descendants():
            if isinstance(node, TextNode):
                parts.append(node.text)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attrs.items())
        return f"<{self.tag}{' ' + attrs if attrs else ''}> ({len(self.children)} children)"


class Document:
    """A document: a synthetic document node plus per-version caches.

    Following XPath's data model, ``root`` is a synthetic ``#document``
    node sitting above the top-level element(s); queries are evaluated
    relative to it, and canonical (absolute) paths start at it.  The
    constructor wraps whatever element it is given, so callers can pass
    a plain ``<html>`` element.

    Queries are evaluated against a static document; the document caches
    the document-order index and normalized text values.  Code that
    mutates the tree through node methods must call :meth:`invalidate`
    (the evolution simulator regenerates whole documents instead, so
    this is mostly for tests).
    """

    def __init__(self, root: ElementNode, url: str = "") -> None:
        if root.tag in ("#document", "#fragment"):
            root.tag = "#document"
            self.root = root
        else:
            doc_node = ElementNode("#document")
            doc_node.append_child(root)
            self.root = doc_node
        self.root.parent = None
        self.url = url
        self._version = 0
        self._order_cache: Optional[dict[int, int]] = None
        self._text_cache: dict[int, str] = {}

    @property
    def root_element(self) -> Optional[ElementNode]:
        """The top-level element (usually ``<html>``), if there is one."""
        elements = self.root.element_children()
        return elements[0] if elements else None

    # -- cache management -----------------------------------------------------

    def invalidate(self) -> None:
        """Drop caches after direct tree mutation."""
        self._version += 1
        self._order_cache = None
        self._text_cache = {}

    def _order_index(self) -> dict[int, int]:
        if self._order_cache is None:
            index: dict[int, int] = {id(self.root): 0}
            for position, node in enumerate(self.root.descendants(), start=1):
                index[id(node)] = position
            self._order_cache = index
        return self._order_cache

    # -- queries ---------------------------------------------------------------

    def order_key(self, node: Node) -> tuple[int, int]:
        """Sort key placing nodes in document order.

        Attribute nodes sort just after their owning element, by name, so
        mixed node-sets have a stable, document-order-compatible order.
        """
        index = self._order_index()
        if isinstance(node, AttributeNode):
            owner_key = index.get(id(node.parent))
            if owner_key is None:
                raise KeyError("attribute owner not in document")
            return (owner_key, 1 + sum(1 for n in sorted(node.parent.attrs) if n < node.name))
        key = index.get(id(node))
        if key is None:
            raise KeyError("node not in document")
        return (key, 0)

    def contains(self, node: Node) -> bool:
        if isinstance(node, AttributeNode):
            node = node.parent
        return id(node) in self._order_index()

    def sort_nodes(self, nodes: list[Node]) -> list[Node]:
        """Sort nodes into document order, removing duplicates."""
        seen: set[int] = set()
        unique: list[Node] = []
        for node in nodes:
            if id(node) not in seen:
                seen.add(id(node))
                unique.append(node)
        unique.sort(key=self.order_key)
        return unique

    def normalized_text(self, node: Node) -> str:
        """Cached normalize-space(.) for nodes of this document."""
        key = id(node)
        cached = self._text_cache.get(key)
        if cached is None:
            cached = node.normalized_text()
            self._text_cache[key] = cached
        return cached

    def all_nodes(self) -> Iterator[Node]:
        """Root plus all descendants, in document order."""
        yield self.root
        yield from self.root.descendants()

    def node_count(self) -> int:
        return len(self._order_index())

    def find(self, **criteria) -> Optional[ElementNode]:
        return self.root.find(**criteria)

    def find_by_meta(self, key: str, value) -> list[Node]:
        """All nodes whose ``meta[key] == value`` (ground-truth lookup)."""
        return [n for n in self.all_nodes() if n.meta.get(key) == value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(url={self.url!r}, nodes={self.node_count()})"

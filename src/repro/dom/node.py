"""Document tree nodes and the document-order index.

The tree model follows Sec. 2 of the paper: an HTML document gives rise
to element nodes, attribute nodes, and text nodes.  Attribute nodes are
materialized lazily (one per element/attribute-name pair) so that the
``attribute`` axis can return stable node objects.

Every node exposes the navigation needed by the dsXPath axes (parent,
children, siblings) plus a ``meta`` dict used by the experiment harness
for ground-truth bookkeeping; ``meta`` never influences query results.

Documents are queried far more often than they are mutated, so each
:class:`Document` lazily builds a :class:`DocumentIndex`: every node is
stamped with its pre-order number (``_pre``), the pre-order number of
the last node in its subtree (``_post``), and a build stamp tying it to
one index generation.  Document-order comparison, dedup + sort,
membership, and ancestor tests then become integer comparisons, and the
``descendant``/``following``/``preceding`` axes become list slices.
After direct tree mutation, :meth:`Document.invalidate` drops the index
(and the text cache); the next query rebuilds it.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator, Optional

_WHITESPACE = re.compile(r"\s+")

#: Global generator of index-build stamps.  Each index build gets a fresh
#: stamp and writes it into every indexed node, so ``node._stamp ==
#: index.stamp`` is an O(1) "is this node covered by this index?" test
#: that never confuses nodes of different documents (or of a stale build
#: of the same document).  Stamps start at 1; 0 means "never indexed".
_next_stamp = itertools.count(1).__next__

#: Stamps whose index was dropped by :meth:`Document.invalidate`.  Nodes
#: keep their (now stale) ``_pre``/``_post`` numbers until the next
#: rebuild re-stamps them, so doc-free fast paths (``is_ancestor_of``)
#: must treat a dead stamp as "not indexed" and fall back to tree walks.
#: Grows by one int per invalidate call — rare (tests, evolution tools).
INVALIDATED_STAMPS: set[int] = set()


def normalize_space(text: str) -> str:
    """Collapse runs of whitespace and strip, like XPath normalize-space."""
    return _WHITESPACE.sub(" ", text).strip()


class Node:
    """Base class for element and text nodes."""

    __slots__ = ("parent", "meta", "_pre", "_post", "_stamp", "_slot")

    def __init__(self) -> None:
        self.parent: Optional[ElementNode] = None
        self.meta: dict = {}
        self._pre = -1
        self._post = -1
        self._stamp = 0
        self._slot = -1

    # -- navigation ------------------------------------------------------

    def ancestors(self) -> Iterator["ElementNode"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node reachable via parent links."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def index_in_parent(self) -> int:
        """Position of this node among all siblings (0-based), O(1).

        The cached slot is verified against the parent's child list and
        repaired by a scan when stale (after sibling insertions or
        removals), so the method stays correct without any explicit
        invalidation.  Raises ``ValueError`` for detached nodes.
        """
        if self.parent is None:
            raise ValueError("node has no parent")
        children = self.parent.children
        slot = self._slot
        if 0 <= slot < len(children) and children[slot] is self:
            return slot
        for i, child in enumerate(children):
            if child is self:
                self._slot = i
                return i
        raise ValueError("node not found among parent's children")

    def following_siblings(self) -> Iterator["Node"]:
        if self.parent is None:
            return
        yield from self.parent.children[self.index_in_parent() + 1 :]

    def preceding_siblings(self) -> Iterator["Node"]:
        """Yield preceding siblings in *reverse* document order (nearest first)."""
        if self.parent is None:
            return
        yield from reversed(self.parent.children[: self.index_in_parent()])

    def with_meta(self, **meta) -> "Node":
        """Attach metadata and return self (builder-style chaining)."""
        self.meta.update(meta)
        return self

    # -- text ------------------------------------------------------------

    def text_value(self) -> str:
        """Concatenation of all descendant text (un-normalized)."""
        raise NotImplementedError

    def normalized_text(self) -> str:
        """normalize-space(.) of this node."""
        return normalize_space(self.text_value())


class TextNode(Node):
    """A text node; its string value is the text itself."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def text_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snippet = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"TextNode({snippet!r})"


class AttributeNode(Node):
    """An attribute node, owned by an element.

    Attribute nodes are created lazily by :meth:`ElementNode.attribute_node`
    and are stable per (element, name) pair, so they can be returned by the
    ``attribute`` axis and compared by identity.
    """

    __slots__ = ("name",)

    def __init__(self, owner: "ElementNode", name: str) -> None:
        super().__init__()
        self.parent = owner
        self.name = name

    @property
    def value(self) -> str:
        assert isinstance(self.parent, ElementNode)
        return self.parent.attrs.get(self.name, "")

    def text_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeNode(@{self.name}={self.value!r})"


class ElementNode(Node):
    """An element node with a tag name, attributes, and ordered children."""

    __slots__ = ("tag", "attrs", "children", "_attr_nodes")

    def __init__(self, tag: str, attrs: Optional[dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Node] = []
        self._attr_nodes: dict[str, AttributeNode] = {}

    # -- structure edits ---------------------------------------------------

    def append_child(self, node: Node) -> Node:
        node.parent = self
        node._slot = len(self.children)
        self.children.append(node)
        return node

    def insert_child(self, index: int, node: Node) -> Node:
        node.parent = self
        self.children.insert(index, node)
        node._slot = self.children.index(node)  # displaced siblings self-heal
        return node

    def remove_child(self, node: Node) -> Node:
        self.children.remove(node)
        node.parent = None
        return node

    def replace_child(self, old: Node, new: Node) -> Node:
        index = old.index_in_parent()
        self.children[index] = new
        new.parent = self
        new._slot = index
        old.parent = None
        return new

    def set_attr(self, name: str, value: str) -> None:
        self.attrs[name] = value

    def remove_attr(self, name: str) -> None:
        self.attrs.pop(name, None)

    # -- navigation ----------------------------------------------------------

    def attribute_node(self, name: str) -> Optional[AttributeNode]:
        """Return the stable attribute node for ``name``, or None if absent."""
        if name not in self.attrs:
            return None
        node = self._attr_nodes.get(name)
        if node is None:
            node = AttributeNode(self, name)
            self._attr_nodes[name] = node
        return node

    def attribute_nodes(self) -> list[AttributeNode]:
        nodes = [self.attribute_node(name) for name in sorted(self.attrs)]
        return [node for node in nodes if node is not None]

    def element_children(self) -> list["ElementNode"]:
        return [c for c in self.children if isinstance(c, ElementNode)]

    def descendants(self) -> Iterator[Node]:
        """Yield all descendants (elements and text) in document order."""
        for child in self.children:
            yield child
            if isinstance(child, ElementNode):
                yield from child.descendants()

    def descendant_elements(self) -> Iterator["ElementNode"]:
        for node in self.descendants():
            if isinstance(node, ElementNode):
                yield node

    def find(self, **criteria) -> Optional["ElementNode"]:
        """First descendant element matching attribute criteria.

        ``tag`` matches the tag name; other keys match HTML attributes
        (``class_`` maps to ``class``).  Convenience for tests/examples.
        """
        for node in self.iter_find(**criteria):
            return node
        return None

    def iter_find(self, **criteria) -> Iterator["ElementNode"]:
        tag = criteria.pop("tag", None)
        attrs = {k.rstrip("_"): v for k, v in criteria.items()}
        for node in self.descendant_elements():
            if tag is not None and node.tag != tag:
                continue
            if all(node.attrs.get(k) == v for k, v in attrs.items()):
                yield node

    # -- text ----------------------------------------------------------------

    def text_value(self) -> str:
        parts: list[str] = []
        for node in self.descendants():
            if isinstance(node, TextNode):
                parts.append(node.text)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attrs.items())
        return f"<{self.tag}{' ' + attrs if attrs else ''}> ({len(self.children)} children)"


class DocumentIndex:
    """Document-order index of one build generation of a document.

    ``nodes`` is the pre-order list of all element and text nodes
    (``nodes[n._pre] is n``); a node ``n``'s subtree is the contiguous
    slice ``nodes[n._pre : n._post + 1]``.  The per-tag and
    per-attribute-name lists hold elements in document order, with
    parallel lists of their pre-order numbers for ``bisect``-based
    subtree/interval slicing.  All lists are immutable by convention:
    after a mutation, :meth:`Document.invalidate` discards the whole
    index and the next query rebuilds it under a fresh ``stamp``.
    """

    __slots__ = (
        "stamp",
        "nodes",
        "tag_nodes",
        "tag_pres",
        "attr_nodes",
        "attr_pres",
        "elements",
        "elem_pres",
        "texts",
        "text_pres",
        "filter_cache",
        "match_cache",
        "pattern_cache",
    )

    def __init__(self) -> None:
        self.stamp: int = 0
        self.nodes: list[Node] = []
        self.tag_nodes: dict[str, list[ElementNode]] = {}
        self.tag_pres: dict[str, list[int]] = {}
        self.attr_nodes: dict[str, list[ElementNode]] = {}
        self.attr_pres: dict[str, list[int]] = {}
        self.elements: list[ElementNode] = []
        self.elem_pres: list[int] = []
        self.texts: list[TextNode] = []
        self.text_pres: list[int] = []
        #: Per-index memos that hold node references.  Living on the
        #: index — not in module globals keyed by stamp — they are
        #: reclaimed with the document, so long-running serving/fleet
        #: processes parsing unbounded page streams do not accumulate
        #: dead DOMs (which also makes every gc pass, in the parent and
        #: in forked pool workers, proportionally slower).
        #: Filtered descendant candidates
        #: (``repro.xpath.compile._compile_filtered_descendant``):
        self.filter_cache: dict = {}
        #: Single-step match lists (``repro.induction.step_pattern._axis_matches``):
        self.match_cache: dict = {}
        #: node_patterns results (``repro.induction.step_pattern._cached_node_patterns``):
        self.pattern_cache: dict = {}


class Document:
    """A document: a synthetic document node plus per-version caches.

    Following XPath's data model, ``root`` is a synthetic ``#document``
    node sitting above the top-level element(s); queries are evaluated
    relative to it, and canonical (absolute) paths start at it.  The
    constructor wraps whatever element it is given, so callers can pass
    a plain ``<html>`` element.

    Queries are evaluated against a static document; the document caches
    the document-order index (:class:`DocumentIndex`) and normalized
    text values.  Code that mutates the tree through node methods must
    call :meth:`invalidate` (the evolution simulator regenerates whole
    documents instead, so this is mostly for tests).
    """

    def __init__(self, root: ElementNode, url: str = "") -> None:
        if root.tag in ("#document", "#fragment"):
            root.tag = "#document"
            self.root = root
        else:
            doc_node = ElementNode("#document")
            doc_node.append_child(root)
            self.root = doc_node
        self.root.parent = None
        self.url = url
        self._version = 0
        self._index: Optional[DocumentIndex] = None
        self._text_cache: dict[int, str] = {}
        self._attr_ids: dict[tuple[int, str], int] = {}
        self._next_attr_id = 0

    @property
    def root_element(self) -> Optional[ElementNode]:
        """The top-level element (usually ``<html>``), if there is one."""
        elements = self.root.element_children()
        return elements[0] if elements else None

    # -- cache management -----------------------------------------------------

    def invalidate(self) -> None:
        """Drop caches after direct tree mutation."""
        self._version += 1
        if self._index is not None:
            INVALIDATED_STAMPS.add(self._index.stamp)
        self._index = None
        self._text_cache = {}
        self._attr_ids = {}

    @property
    def index(self) -> DocumentIndex:
        """The document-order index, built on first use after invalidation."""
        index = self._index
        if index is None:
            index = self._build_index()
        return index

    def _build_index(self) -> DocumentIndex:
        index = DocumentIndex()
        stamp = index.stamp = _next_stamp()
        nodes = index.nodes
        tag_nodes, tag_pres = index.tag_nodes, index.tag_pres
        attr_nodes, attr_pres = index.attr_nodes, index.attr_pres
        elements, elem_pres = index.elements, index.elem_pres
        texts, text_pres = index.texts, index.text_pres

        # Iterative pre-order walk; a (node, True) entry closes the
        # node's subtree and records its post number.
        stack: list[tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, closing = stack.pop()
            if closing:
                node._post = len(nodes) - 1
                continue
            pre = len(nodes)
            node._pre = pre
            node._stamp = stamp
            nodes.append(node)
            if isinstance(node, TextNode):
                node._post = pre
                texts.append(node)
                text_pres.append(pre)
                continue
            if not isinstance(node, ElementNode):  # pragma: no cover - defensive
                node._post = pre
                continue
            tag = node.tag
            if not tag.startswith("#"):
                elements.append(node)
                elem_pres.append(pre)
                bucket = tag_nodes.get(tag)
                if bucket is None:
                    tag_nodes[tag] = [node]
                    tag_pres[tag] = [pre]
                else:
                    bucket.append(node)
                    tag_pres[tag].append(pre)
                for name in node.attrs:
                    abucket = attr_nodes.get(name)
                    if abucket is None:
                        attr_nodes[name] = [node]
                        attr_pres[name] = [pre]
                    else:
                        abucket.append(node)
                        attr_pres[name].append(pre)
            children = node.children
            if children:
                stack.append((node, True))
                for slot in range(len(children) - 1, -1, -1):
                    child = children[slot]
                    child._slot = slot
                    stack.append((child, False))
            else:
                node._post = pre

        self._index = index
        self._attr_ids = {}
        self._next_attr_id = len(nodes)
        return index

    # -- queries ---------------------------------------------------------------

    def node_id(self, node: Node) -> int:
        """A stable, document-local integer id for ``node``.

        Element and text nodes map to their pre-order number; attribute
        nodes get ids past the tree's node count, allocated lazily and
        stable per (owner, name) until :meth:`invalidate`.  Hot-loop set
        algebra (DP tables, target sets, vote counting) runs on these
        small ints instead of ``id()`` values.
        """
        stamp = self.index.stamp
        if isinstance(node, AttributeNode):
            owner = node.parent
            if owner is None or owner._stamp != stamp:
                raise KeyError("attribute owner not in document")
            key = (owner._pre, node.name)
            nid = self._attr_ids.get(key)
            if nid is None:
                nid = self._next_attr_id
                self._next_attr_id += 1
                self._attr_ids[key] = nid
            return nid
        if node._stamp != stamp:
            raise KeyError("node not in document")
        return node._pre

    def node_ids(self, nodes: Iterator[Node]) -> frozenset[int]:
        """``node_id`` over a node collection."""
        return frozenset(self.node_id(node) for node in nodes)

    def order_key(self, node: Node) -> tuple[int, int]:
        """Sort key placing nodes in document order.

        Attribute nodes sort just after their owning element, by name, so
        mixed node-sets have a stable, document-order-compatible order.
        """
        stamp = self.index.stamp
        if isinstance(node, AttributeNode):
            owner = node.parent
            if owner is None or owner._stamp != stamp:
                raise KeyError("attribute owner not in document")
            return (owner._pre, 1 + sum(1 for n in owner.attrs if n < node.name))
        if node._stamp != stamp:
            raise KeyError("node not in document")
        return (node._pre, 0)

    def contains(self, node: Node) -> bool:
        stamp = self.index.stamp  # may (re)build the index, stamping nodes
        if isinstance(node, AttributeNode):
            node = node.parent
            if node is None:
                return False
        return node._stamp == stamp

    def is_ancestor(self, ancestor: Node, node: Node) -> bool:
        """Strict ancestorship as an O(1) interval test."""
        stamp = self.index.stamp
        if ancestor._stamp != stamp or node._stamp != stamp:
            raise KeyError("node not in document")
        return ancestor._pre < node._pre <= ancestor._post

    def sort_nodes(self, nodes: list[Node]) -> list[Node]:
        """Sort nodes into document order, removing duplicates."""
        stamp = self.index.stamp
        for node in nodes:
            if isinstance(node, AttributeNode):
                # Slow path: mixed sets with attribute nodes sort on the
                # (owner pre, attribute rank) key.
                keyed: dict[tuple[int, int], Node] = {}
                for n in nodes:
                    keyed.setdefault(self.order_key(n), n)
                return [keyed[k] for k in sorted(keyed)]
        by_pre: dict[int, Node] = {}
        for node in nodes:
            if node._stamp != stamp:
                raise KeyError("node not in document")
            by_pre[node._pre] = node
        return [by_pre[k] for k in sorted(by_pre)]

    def normalized_text(self, node: Node) -> str:
        """Cached normalize-space(.) for nodes of this document."""
        key = id(node)
        cached = self._text_cache.get(key)
        if cached is None:
            cached = node.normalized_text()
            self._text_cache[key] = cached
        return cached

    def all_nodes(self) -> Iterator[Node]:
        """Root plus all descendants, in document order."""
        return iter(self.index.nodes)

    def node_count(self) -> int:
        return len(self.index.nodes)

    def find(self, **criteria) -> Optional[ElementNode]:
        return self.root.find(**criteria)

    def find_by_meta(self, key: str, value) -> list[Node]:
        """All nodes whose ``meta[key] == value`` (ground-truth lookup)."""
        return [n for n in self.all_nodes() if n.meta.get(key) == value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(url={self.url!r}, nodes={self.node_count()})"

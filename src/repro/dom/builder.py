"""Programmatic construction of document trees.

The evolution simulator renders synthetic pages directly as trees, so a
compact builder matters.  ``E`` builds elements, ``T`` text nodes, and
``document`` wraps a root into a :class:`Document`:

>>> page = document(
...     E("html",
...       E("body",
...         E("div", T("Director: "), E("span", T("Martin Scorsese"),
...                                     itemprop="name"),
...           class_="credit"))))
>>> page.find(tag="span").normalized_text()
'Martin Scorsese'

Keyword attribute names have a single trailing underscore stripped so
Python keywords work (``class_`` -> ``class``, ``for_`` -> ``for``);
other underscores map to dashes (``data_id`` -> ``data-id``).
"""

from __future__ import annotations

from repro.dom.node import Document, ElementNode, Node, TextNode


def _attr_name(name: str) -> str:
    if name.endswith("_"):
        name = name[:-1]
    return name.replace("_", "-")


def E(tag: str, *children: Node | str | None, **attrs: str) -> ElementNode:
    """Build an element; string children become text nodes, None is skipped."""
    element = ElementNode(tag, {_attr_name(k): v for k, v in attrs.items()})
    for child in children:
        if child is None:
            continue
        if isinstance(child, str):
            child = TextNode(child)
        element.append_child(child)
    return element


def T(text: str) -> TextNode:
    """Build a text node."""
    return TextNode(text)


def document(root: ElementNode, url: str = "") -> Document:
    """Wrap a root element into a Document."""
    return Document(root, url=url)

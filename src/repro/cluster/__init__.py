"""``repro.cluster`` — cross-host sharded serving.

The store's SHA-1 placement needs no coordination, which makes scaling
out a routing problem instead of a consensus problem: point N ``serve
--listen`` hosts at disjoint shard groups and teach one client the
placement function.  This package holds that layer:

* :mod:`repro.cluster.placement` — the shared pure-function placement
  vocabulary (site keys, SHA-1 shard indexes, tenant namespaces,
  :class:`ShardOwnership`, the epoch-versioned :class:`ClusterMap`,
  and :func:`replica_indexes` — each shard's primary plus ring-order
  replica hosts at :data:`REPLICATION_FACTOR`);
* :mod:`repro.cluster.router` — :class:`RouterClient`, the full
  :class:`~repro.api.client.WrapperClient` surface routed per site key
  to the shard's primary with failover to the replica, writes fanned
  to every replica at write-quorum 1, a per-host circuit breaker, and
  scatter-gather listing / ``extract_many`` batch extraction fanned
  out concurrently across hosts.

Independent shard owners fail independently — one dead host degrades
only its own shard group, the same diversification argument the
ensemble layer makes for committee members; with replication, one dead
host degrades *nothing* until its replica dies too.
"""

from repro.cluster.placement import (
    ClusterMap,
    DEFAULT_SHARDS,
    DEFAULT_TENANT,
    PlacementError,
    REPLICATION_FACTOR,
    ShardOwnership,
    TENANT_SEP,
    qualify_key,
    replica_indexes,
    shard_index,
    shard_of_task,
    site_key_of,
    split_tenant,
    tenant_of,
    validate_tenant,
)

#: Lazily exported (PEP 562): the router imports ``repro.api.remote``,
#: which imports runtime modules that import this package's placement —
#: an eager import here would cycle during ``repro.api`` startup.
_ROUTER_EXPORTS = ("RouterClient",)


def __getattr__(name: str):
    if name in _ROUTER_EXPORTS:
        from repro.cluster import router

        return getattr(router, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ClusterMap",
    "DEFAULT_SHARDS",
    "DEFAULT_TENANT",
    "PlacementError",
    "REPLICATION_FACTOR",
    "RouterClient",
    "ShardOwnership",
    "TENANT_SEP",
    "qualify_key",
    "replica_indexes",
    "shard_index",
    "shard_of_task",
    "site_key_of",
    "split_tenant",
    "tenant_of",
    "validate_tenant",
]

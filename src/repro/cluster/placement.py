"""Placement: the one pure function every layer agrees on.

Sharding decisions appear in four places — the artifact store lays
files out on disk, the sweep fleet assigns shards to worker processes,
a serving host decides which keys it owns, and a router client decides
which host to call.  All four MUST compute the same answer for the same
key, with no coordination service in between, or stored artifacts are
orphaned and requests are misrouted.  This module is that single
answer: a dependency-free pure-function vocabulary shared by
:mod:`repro.runtime.store`, :mod:`repro.runtime.fleet`,
:mod:`repro.runtime.net`, and :mod:`repro.cluster.router`.

* :func:`site_key_of` — the partition key of a task id (everything
  before the first ``/``, so co-located tasks share a shard);
* :func:`shard_index` — SHA-1 placement, immune to ``PYTHONHASHSEED``
  (Python's builtin ``hash`` is salted per process and would scatter
  the same key across shards in different processes);
* :func:`qualify_key` / :func:`split_tenant` — multi-tenant
  namespaces: ``<tenant>::<site_key>`` prefixes flow through
  :func:`site_key_of` unchanged, so two tenants' copies of the same
  site key shard (and store) independently with zero extra mechanism;
* :class:`ShardOwnership` — the shard subset one serving host answers
  for (``serve --listen --own-shards``);
* :class:`ClusterMap` — host → shard-group assignment derived purely
  from the host list order, so N ``serve --listen`` processes and a
  :class:`~repro.cluster.router.RouterClient` agree on ownership
  without ever talking to each other.

The assignment is pinned by the golden fixture
``tests/golden/placement.json`` — a refactor that silently remaps
shards would orphan every stored artifact, so the corpus-wide
``site_key → shard_index`` table is frozen the same way induction
scores are.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Iterable, Optional

#: Default shard count — small enough that an 84-site corpus keeps every
#: shard populated, large enough to feed a one-process-per-shard fleet.
DEFAULT_SHARDS = 8

#: Every shard lives on this many hosts (capped by the host count): a
#: primary and one independently-placed secondary.  The same redundancy
#: argument the ensemble layer makes for committee members, one layer
#: up — one dead host must never take out the only copy of a shard.
REPLICATION_FACTOR = 2

#: The unnamed namespace: keys stay bare, all seed-era behavior intact.
DEFAULT_TENANT = ""

#: Separator between a tenant name and the site key it namespaces.
#: Chosen to never collide with ``/`` (the task-id role separator) or
#: ``__`` (the store's filename encoding of ``/``), and to read like
#: the dsXPath axis separator the codebase already speaks.  Note the
#: colon makes tenant-qualified store filenames POSIX-only (NTFS
#: reserves ``:``) — the store, like the serving stack, targets POSIX
#: hosts.
TENANT_SEP = "::"

#: Tenant names must be safe on every POSIX layer that embeds them
#: (store paths, telemetry stream filenames, URL path segments).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class PlacementError(ValueError):
    """A key, tenant, or shard specification is malformed."""


def site_key_of(task_id: str) -> str:
    """The partition key for a task id.

    Corpus task ids are ``<site_id>/<role>``; everything before the
    first ``/`` is the site key, so co-located tasks share a shard.  Ids
    without a ``/`` partition by the whole id.  A tenant prefix
    (``tenant::site/role``) stays part of the site key, so each
    tenant's fleet places independently.
    """
    return task_id.split("/", 1)[0]


def shard_index(site_key: str, n_shards: int) -> int:
    """Stable shard for a site key: same key → same shard, every
    process, every run (SHA-1 based, immune to hash salting)."""
    digest = hashlib.sha1(site_key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def shard_of_task(task_id: str, n_shards: int) -> int:
    """Shard of a (possibly tenant-qualified) task id."""
    return shard_index(site_key_of(task_id), n_shards)


def replica_indexes(
    shard: int, n_hosts: int, replication: int = REPLICATION_FACTOR
) -> tuple[int, ...]:
    """Host indexes serving one shard: ``(primary, secondary, ...)``.

    Pure and deterministic — every router and every launch script
    derive the same replica set with no coordination.  The primary is
    the classic ``shard % n_hosts`` owner; each further replica is the
    next host in ring order, so with ≥ 2 hosts the secondary is never
    on the primary's host.  ``replication`` is capped by the host count
    (a 1-host cluster has no independent second home to offer).
    """
    if n_hosts < 1:
        raise PlacementError("replica placement needs at least one host")
    if replication < 1:
        raise PlacementError("replication factor must be >= 1")
    primary = shard % n_hosts
    return tuple(
        (primary + offset) % n_hosts for offset in range(min(replication, n_hosts))
    )


# -- tenant namespaces -------------------------------------------------------


def split_tenant(key: str) -> tuple[str, str]:
    """``(tenant, bare_key)`` for a possibly-qualified key.

    Unqualified keys belong to :data:`DEFAULT_TENANT`.  Only a
    well-formed tenant name before the first ``::`` (and before any
    ``/``) counts as a prefix — a stray ``::`` inside a role never
    re-partitions a key.
    """
    head, sep, rest = key.partition(TENANT_SEP)
    if sep and rest and _TENANT_RE.match(head) and "/" not in head:
        return head, rest
    return DEFAULT_TENANT, key


def tenant_of(key: str) -> str:
    """The namespace a key belongs to (``""`` for unqualified keys)."""
    return split_tenant(key)[0]


def validate_tenant(tenant: str) -> str:
    """``tenant`` back, or :class:`PlacementError` for names that would
    not survive store paths, telemetry filenames, or URL segments.
    Clients validate at construction so a bad namespace fails fast."""
    if tenant and not _TENANT_RE.match(tenant):
        raise PlacementError(
            f"invalid tenant name {tenant!r} (letters, digits, '._-', "
            "starting alphanumeric)"
        )
    return tenant


def qualify_key(site_key: str, tenant: str = DEFAULT_TENANT) -> str:
    """Prefix ``site_key`` into ``tenant``'s namespace.

    Idempotent for keys already carrying the same tenant prefix (so a
    tenant-scoped client and a tenant-scoped server can both qualify
    without double-prefixing).  A key already qualified for a
    *different* tenant raises — one tenant's client must never reach
    into another's namespace.
    """
    validate_tenant(tenant)
    existing, bare = split_tenant(site_key)
    if existing == tenant:
        return site_key
    if existing and not tenant:
        # The default (admin) namespace addresses qualified keys as-is.
        return site_key
    if existing:
        raise PlacementError(
            f"key {site_key!r} belongs to tenant {existing!r}, "
            f"not {tenant!r} (cross-tenant access)"
        )
    if not bare:
        raise PlacementError("site key must be non-empty")
    return f"{tenant}{TENANT_SEP}{bare}" if tenant else bare


# -- shard ownership ---------------------------------------------------------


@dataclass(frozen=True)
class ShardOwnership:
    """The shard subset one serving host answers for.

    ``serve --listen --own-shards 0,2,5`` builds one of these; every
    keyed request is checked with :meth:`owns_task` and rejected with a
    typed error when the key places outside ``owned`` — a misrouted
    request is a deployment bug the caller must see, not data served
    from the wrong host.
    """

    n_shards: int
    owned: frozenset[int]

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise PlacementError("n_shards must be >= 1")
        bad = sorted(s for s in self.owned if not 0 <= s < self.n_shards)
        if bad:
            raise PlacementError(
                f"owned shards {bad} out of range for {self.n_shards} shards"
            )
        if not self.owned:
            raise PlacementError("a serving host must own at least one shard")

    @classmethod
    def all_shards(cls, n_shards: int) -> "ShardOwnership":
        return cls(n_shards=n_shards, owned=frozenset(range(n_shards)))

    @classmethod
    def parse(cls, spec: str, n_shards: int) -> "ShardOwnership":
        """Parse a CLI ``--own-shards`` value like ``"0,2,5"``."""
        try:
            owned = frozenset(
                int(part) for part in spec.split(",") if part.strip() != ""
            )
        except ValueError as exc:
            raise PlacementError(
                f"--own-shards wants comma-separated shard indexes, got {spec!r}"
            ) from exc
        return cls(n_shards=n_shards, owned=owned)

    @property
    def is_total(self) -> bool:
        return len(self.owned) == self.n_shards

    def shard_of(self, task_id: str) -> int:
        return shard_of_task(task_id, self.n_shards)

    def owns_task(self, task_id: str) -> bool:
        return self.shard_of(task_id) in self.owned

    def sorted_owned(self) -> list[int]:
        return sorted(self.owned)

    def as_payload(self) -> dict:
        """The ``/healthz`` form: total shard count + owned subset."""
        return {"n_shards": self.n_shards, "owned": self.sorted_owned()}


# -- cluster maps ------------------------------------------------------------


@dataclass(frozen=True)
class ClusterMap:
    """Host → shard-group assignment, derived purely from placement.

    ``hosts`` is an ordered tuple of ``"host:port"`` addresses; shard
    ``s`` is owned by ``hosts[s % len(hosts)]``.  Because the
    assignment is a pure function of the (ordered) host list and the
    shard count, every router client and every serving host given the
    same pair computes identical ownership with no coordination — the
    cross-host generalization of the store's coordination-free on-disk
    placement.

    ``epoch`` versions the map: two maps with different epochs describe
    the cluster at different points of its life (hosts joined/left, a
    store was re-sharded by ``python -m repro.runtime migrate``).
    Serving hosts advertise their epoch in ``/healthz`` and stamp it
    into every ``421 shard_not_owned`` payload, so a client holding a
    stale map can *detect* the mismatch and refresh instead of
    hammering the wrong owner.

    Replication: :meth:`replica_hosts` places every shard on
    :data:`REPLICATION_FACTOR` hosts — ``(primary, secondary)`` in ring
    order, the secondary never on the primary's host — and
    :meth:`replica_ownership_of` is the shard group to *launch* one
    replicated host with (its primary shards plus every shard it
    seconds; a host launched with only its primary group would 421 the
    replica traffic the router sends it).
    """

    hosts: tuple[str, ...]
    n_shards: int = DEFAULT_SHARDS
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise PlacementError("cluster map epoch must be >= 0")
        if not self.hosts:
            raise PlacementError("a cluster map needs at least one host")
        if len(set(self.hosts)) != len(self.hosts):
            raise PlacementError(f"duplicate hosts in cluster map: {self.hosts}")
        if self.n_shards < 1:
            raise PlacementError("n_shards must be >= 1")
        for host in self.hosts:
            name, _, port = host.rpartition(":")
            if not name or not port.isdigit():
                raise PlacementError(
                    f"cluster hosts must be 'host:port' addresses, got {host!r}"
                )

    @classmethod
    def from_hosts(
        cls,
        hosts: Iterable[str],
        n_shards: Optional[int] = None,
        epoch: int = 0,
    ) -> "ClusterMap":
        return cls(
            hosts=tuple(hosts),
            n_shards=DEFAULT_SHARDS if n_shards is None else int(n_shards),
            epoch=int(epoch),
        )

    def advanced(
        self,
        hosts: Optional[Iterable[str]] = None,
        n_shards: Optional[int] = None,
    ) -> "ClusterMap":
        """The next-epoch map: same cluster, one topology step later
        (hosts joined/left, or the store was re-sharded)."""
        return ClusterMap(
            hosts=self.hosts if hosts is None else tuple(hosts),
            n_shards=self.n_shards if n_shards is None else int(n_shards),
            epoch=self.epoch + 1,
        )

    # -- ownership ----------------------------------------------------------

    def owner_index_of_shard(self, shard: int) -> int:
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        return shard % len(self.hosts)

    def host_of_shard(self, shard: int) -> str:
        return self.hosts[self.owner_index_of_shard(shard)]

    def shard_of(self, task_id: str) -> int:
        return shard_of_task(task_id, self.n_shards)

    def host_of(self, task_id: str) -> str:
        """The serving host that owns a (qualified) task id."""
        return self.host_of_shard(self.shard_of(task_id))

    def shards_of(self, host: str) -> tuple[int, ...]:
        """The shard group one host owns (empty when more hosts than
        shards leave it idle)."""
        try:
            index = self.hosts.index(host)
        except ValueError:
            raise PlacementError(
                f"{host!r} is not in the cluster map {self.hosts}"
            ) from None
        return tuple(
            shard
            for shard in range(self.n_shards)
            if shard % len(self.hosts) == index
        )

    def ownership_of(self, host: str) -> ShardOwnership:
        """The :class:`ShardOwnership` to launch one host with."""
        return ShardOwnership(
            n_shards=self.n_shards, owned=frozenset(self.shards_of(host))
        )

    def assignments(self) -> dict[str, tuple[int, ...]]:
        return {host: self.shards_of(host) for host in self.hosts}

    def own_shards_arg(self, host: str) -> str:
        """The ``--own-shards`` CLI value for one host (``"0,2,4"``)."""
        return ",".join(str(s) for s in self.shards_of(host))

    # -- replication --------------------------------------------------------

    def replica_indexes_of_shard(
        self, shard: int, replication: int = REPLICATION_FACTOR
    ) -> tuple[int, ...]:
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        return replica_indexes(shard, len(self.hosts), replication)

    def replica_hosts_of_shard(
        self, shard: int, replication: int = REPLICATION_FACTOR
    ) -> tuple[str, ...]:
        return tuple(
            self.hosts[index]
            for index in self.replica_indexes_of_shard(shard, replication)
        )

    def replica_hosts(
        self, task_id: str, replication: int = REPLICATION_FACTOR
    ) -> tuple[str, ...]:
        """``(primary, secondary)`` hosts for a (qualified) task id —
        deterministic, and the secondary is never the primary's host
        (when the cluster has a second host to offer)."""
        return self.replica_hosts_of_shard(self.shard_of(task_id), replication)

    def replica_shards_of(
        self, host: str, replication: int = REPLICATION_FACTOR
    ) -> tuple[int, ...]:
        """Every shard this host serves as *any* replica (primary or
        secondary) — the group a replicated cluster member must own."""
        try:
            index = self.hosts.index(host)
        except ValueError:
            raise PlacementError(
                f"{host!r} is not in the cluster map {self.hosts}"
            ) from None
        return tuple(
            shard
            for shard in range(self.n_shards)
            if index in replica_indexes(shard, len(self.hosts), replication)
        )

    def replica_ownership_of(
        self, host: str, replication: int = REPLICATION_FACTOR
    ) -> ShardOwnership:
        """The :class:`ShardOwnership` to launch one *replicated* host
        with (primary group plus seconded shards)."""
        return ShardOwnership(
            n_shards=self.n_shards,
            owned=frozenset(self.replica_shards_of(host, replication)),
        )

    def replica_own_shards_arg(
        self, host: str, replication: int = REPLICATION_FACTOR
    ) -> str:
        """The ``--own-shards`` CLI value for one replicated host."""
        return ",".join(str(s) for s in self.replica_shards_of(host, replication))


__all__ = [
    "ClusterMap",
    "DEFAULT_SHARDS",
    "DEFAULT_TENANT",
    "PlacementError",
    "REPLICATION_FACTOR",
    "ShardOwnership",
    "TENANT_SEP",
    "qualify_key",
    "replica_indexes",
    "shard_index",
    "shard_of_task",
    "site_key_of",
    "split_tenant",
    "tenant_of",
    "validate_tenant",
]

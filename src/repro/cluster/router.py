""":class:`RouterClient` — one client object over N serving hosts.

The cross-host scale step: every :class:`~repro.cluster.placement.ClusterMap`
host runs ``python -m repro.runtime serve --listen --own-shards <group>``
over a disjoint shard group, and the router implements the full
:class:`~repro.api.client.WrapperClient` surface by computing the same
placement function the hosts enforce:

* keyed verbs (``induce``/``extract``/``check``/``repair``/``get``/
  ``delete``) route to the owning host's
  :class:`~repro.api.remote.RemoteWrapperClient`;
* ``keys()``/``handles()`` scatter-gather across every host and merge
  (host shard groups are disjoint, so the union is exact);
* :meth:`extract_many` fans a batch out concurrently across hosts and
  pipelines each host's slice through per-thread connections — the
  N-host generalization of single-host pipelining.

Failure containment mirrors the placement function: a dead host fails
*its* keys (as :class:`~repro.api.remote.RemoteError` carrying the
host address) and no others — requests to live hosts never wait on, or
get poisoned by, the dead one.  The router is drop-in interchangeable
with the local and single-host clients; the facade parity suite runs
byte-identically against a 2-host router backend.

Like :class:`RemoteWrapperClient`, one router is not thread-safe (it
owns one keep-alive connection per host); ``extract_many`` manages its
own per-thread connections internally.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Optional, Sequence, Union

from repro.cluster.placement import (
    ClusterMap,
    DEFAULT_TENANT,
    qualify_key,
    validate_tenant,
)
from repro.api.remote import Page, RemoteWrapperClient
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    WrapperHandle,
)


class RouterClient:
    """The facade, routed across a cluster of shard-owning hosts.

    ``cluster`` is a :class:`ClusterMap` (or a plain host list, sharded
    with ``n_shards``).  ``tenant`` scopes every verb into one
    namespace, exactly as on the other two clients.  The connect/read
    timeout split is forwarded to every per-host client so a dead host
    is detected on the connect phase without capping live work.
    """

    def __init__(
        self,
        cluster: Union[ClusterMap, Iterable[str]],
        *,
        n_shards: Optional[int] = None,
        tenant: str = DEFAULT_TENANT,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> None:
        if not isinstance(cluster, ClusterMap):
            cluster = ClusterMap.from_hosts(cluster, n_shards)
        elif n_shards is not None and n_shards != cluster.n_shards:
            raise FacadeError(
                f"cluster map has {cluster.n_shards} shards; "
                f"n_shards={n_shards} would misroute keys"
            )
        self.cluster = cluster
        try:
            self.tenant = validate_tenant(tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc
        self._timeouts = {
            "timeout": timeout,
            "connect_timeout": connect_timeout,
            "read_timeout": read_timeout,
        }
        self._clients: dict[str, RemoteWrapperClient] = {}

    # -- routing ------------------------------------------------------------

    def _qualify(self, site_key: str) -> str:
        # Same surface as the other two clients: a cross-tenant or
        # malformed key is a FacadeError.
        try:
            return qualify_key(site_key, self.tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc

    def host_of(self, site_key: str) -> str:
        """The serving host that owns ``site_key`` (tenant-qualified
        first, so two tenants' copies of one site may route apart)."""
        return self.cluster.host_of(self._qualify(site_key))

    def client_for_host(self, host: str) -> RemoteWrapperClient:
        """The router's keep-alive client for one cluster host."""
        if host not in self.cluster.hosts:
            raise FacadeError(f"{host!r} is not in the cluster map")
        client = self._clients.get(host)
        if client is None:
            client = RemoteWrapperClient(host, tenant=self.tenant, **self._timeouts)
            self._clients[host] = client
        return client

    def _client_for(self, site_key: str) -> RemoteWrapperClient:
        return self.client_for_host(self.host_of(site_key))

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- keyed verbs: route to the owner ------------------------------------

    def induce(self, site_key: str, samples, mode: str = "node", **options):
        return self._client_for(site_key).induce(site_key, samples, mode, **options)

    def extract(self, site_key: str, page: Page) -> ExtractionResult:
        return self._client_for(site_key).extract(site_key, page)

    def check(self, site_key: str, page: Page) -> CheckResult:
        return self._client_for(site_key).check(site_key, page)

    def repair(
        self,
        site_key: str,
        page: Page,
        target_paths: Optional[Sequence[str]] = None,
    ) -> WrapperHandle:
        return self._client_for(site_key).repair(site_key, page, target_paths)

    def get(self, site_key: str) -> WrapperHandle:
        return self._client_for(site_key).get(site_key)

    def delete(self, site_key: str) -> None:
        self._client_for(site_key).delete(site_key)

    def __contains__(self, site_key: str) -> bool:
        try:
            self._qualify(site_key)
        except FacadeError:
            return False  # parity: an unaddressable key is not contained
        return site_key in self._client_for(site_key)

    # -- scatter-gather -----------------------------------------------------

    def _gather(self, fn):
        """Run ``fn(client)`` against every host concurrently; a failing
        host fails the gather with its own RemoteError (a partial
        listing silently missing a shard group would be worse)."""
        hosts = self.cluster.hosts
        if len(hosts) == 1:
            return [fn(self.client_for_host(hosts[0]))]
        with ThreadPoolExecutor(max_workers=len(hosts)) as pool:
            return list(
                pool.map(lambda host: fn(self.client_for_host(host)), hosts)
            )

    def handles(self) -> list[WrapperHandle]:
        merged = [h for part in self._gather(lambda c: c.handles()) for h in part]
        return sorted(merged, key=lambda handle: handle.site_key)

    def keys(self) -> list[str]:
        return sorted(
            key for part in self._gather(lambda c: c.keys()) for key in part
        )

    def healthz(self) -> dict:
        """Per-host health, keyed by address; a dead host reports its
        RemoteError string instead of poisoning the others."""

        def probe(client: RemoteWrapperClient) -> dict:
            try:
                return client.healthz()
            except FacadeError as exc:
                return {"ok": False, "error": str(exc)}

        return dict(zip(self.cluster.hosts, self._gather(probe)))

    def __len__(self) -> int:
        if self.tenant:
            # Namespace filtering happens client-side; count the keys.
            return len(self.keys())
        # Hosts count only their owned shard group, and groups are
        # disjoint — summing /healthz counters avoids shipping every
        # handle payload just to count them.
        return sum(
            int(count)
            for count in self._gather(
                lambda c: c.healthz().get("wrappers", 0)
            )
        )

    # -- batch extraction ---------------------------------------------------

    def extract_many(
        self,
        items: Sequence[tuple[str, Page]],
        *,
        concurrency: int = 4,
        return_errors: bool = False,
    ) -> list:
        """Batch extraction: concurrent across hosts, pipelined per host.

        Items are grouped by owning host; every host's slice runs
        through that host's :meth:`RemoteWrapperClient.extract_many`
        pipeline (depth ``concurrency``, the same meaning the kwarg has
        there) while the other hosts' slices run in parallel.  Results
        come back in item order.  A dead host yields its
        :class:`~repro.api.remote.RemoteError` for *its* items only —
        as does an unroutable (cross-tenant, malformed) key; with
        ``return_errors`` those errors are returned in place, otherwise
        the first one raises after the batch drains.
        """
        results: list = [None] * len(items)
        by_host: dict[str, list[int]] = {}
        for index, (site_key, _) in enumerate(items):
            try:
                host = self.host_of(site_key)
            except FacadeError as exc:
                # An unroutable key fails its own item only — exactly
                # like a failed request would.
                results[index] = exc
                continue
            by_host.setdefault(host, []).append(index)

        def run_host(host: str, indexes: list[int]) -> None:
            slice_items = [items[i] for i in indexes]
            try:
                part = self.client_for_host(host).extract_many(
                    slice_items, concurrency=concurrency, return_errors=True
                )
            except Exception as exc:  # noqa: BLE001 - host-wide failure
                part = [exc] * len(indexes)
            for index, result in zip(indexes, part):
                results[index] = result

        if by_host:
            with ThreadPoolExecutor(max_workers=len(by_host)) as pool:
                list(pool.map(lambda kv: run_host(*kv), by_host.items()))
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results


__all__ = ["RouterClient"]

""":class:`RouterClient` — one client object over N serving hosts.

The cross-host scale step: every :class:`~repro.cluster.placement.ClusterMap`
host runs ``python -m repro.runtime serve --listen --own-shards <group>``
and the router implements the full
:class:`~repro.api.client.WrapperClient` surface by computing the same
placement function the hosts enforce:

* keyed reads (``extract``/``check``/``get``) route to the shard's
  *primary* replica and fail over — one jittered-backoff retry — to the
  secondary when the primary is unreachable or rejects with a typed 421;
* writes (``induce``/``repair``/``deploy``/``delete``) go to **every**
  replica with write-quorum 1: the verb succeeds once any replica
  accepted it, and a replica that missed the write is logged to the
  router's telemetry stream as ``write_repair_needed`` (best-effort
  repair — the artifact is deterministic, so re-running the write on
  the recovered replica converges);
* ``keys()``/``handles()`` scatter-gather across every host and merge,
  de-duplicating by site key (replicas list the same wrappers twice);
* :meth:`extract_many` fans a batch out concurrently across hosts and
  pipelines each host's slice through per-thread connections, re-queuing
  a failed item against its next replica between rounds.

Failure containment mirrors the placement function: a host with no live
replica fails *its* keys (as :class:`~repro.api.remote.RemoteError`
carrying the first failing host's address) and no others.  A per-host
circuit breaker opens after ``breaker_threshold`` consecutive transport
failures and skips the host for ``breaker_reset_s`` seconds, so a dead
host costs one connect timeout — not one per request.

Topology changes are detected without a coordination service: every
421 rejection and every ``/healthz`` answer carries the server's
``epoch`` (see :class:`~repro.cluster.placement.ClusterMap`).  When a
rejection proves the router's map is *stale* (server epoch newer), the
router refreshes its ownership table from the live hosts' ``/healthz``
— once — and retries the key against the new owner.

The router is drop-in interchangeable with the local and single-host
clients; the facade parity suite runs byte-identically against both a
disjoint 2-host and a replicated 3-host router backend.  Like
:class:`RemoteWrapperClient`, one router is not thread-safe (it owns
one keep-alive connection per host); ``extract_many`` manages its own
per-thread connections internally.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.cluster.placement import (
    ClusterMap,
    DEFAULT_TENANT,
    REPLICATION_FACTOR,
    qualify_key,
    shard_of_task,
    validate_tenant,
)
from repro.api.remote import (
    OwnershipError,
    Page,
    RateLimitError,
    RemoteError,
    RemoteWrapperClient,
)
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    WrapperHandle,
)

_UNSET = object()

# Ceiling on any single failover backoff sleep; the base delay doubles
# per attempt (full jitter) but never past this.
_BACKOFF_CAP_S = 1.0


class RouterClient:
    """The facade, routed across a cluster of shard-owning hosts.

    ``cluster`` is a :class:`ClusterMap` (or a plain host list, sharded
    with ``n_shards``).  ``tenant`` scopes every verb into one
    namespace, exactly as on the other two clients.  The connect/read
    timeout split is forwarded to every per-host client so a dead host
    is detected on the connect phase without capping live work.

    ``replication`` is how many replicas each shard has (primary +
    ring-order successors; default :data:`REPLICATION_FACTOR`).  With
    ``replication=1`` failover is off and the router behaves exactly
    like the pre-replication strict router.  ``telemetry_sink``, when
    given, receives every telemetry event dict as it is emitted (the
    last 512 events are always kept on :attr:`telemetry`).
    """

    def __init__(
        self,
        cluster: Union[ClusterMap, Iterable[str]],
        *,
        n_shards: Optional[int] = None,
        tenant: str = DEFAULT_TENANT,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        replication: int = REPLICATION_FACTOR,
        api_key: str = "",
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        failover_backoff_s: float = 0.05,
        telemetry_sink: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if not isinstance(cluster, ClusterMap):
            cluster = ClusterMap.from_hosts(cluster, n_shards)
        elif n_shards is not None and n_shards != cluster.n_shards:
            raise FacadeError(
                f"cluster map has {cluster.n_shards} shards; "
                f"n_shards={n_shards} would misroute keys"
            )
        self.cluster = cluster
        try:
            self.tenant = validate_tenant(tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc
        if replication < 1:
            raise FacadeError("replication must be >= 1")
        if breaker_threshold < 1:
            raise FacadeError("breaker_threshold must be >= 1")
        self.replication = int(replication)
        # One credential for the whole cluster: forwarded to every
        # per-host client (hosts share one key table, so one key grants
        # the same tenant everywhere).
        self.api_key = str(api_key)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self.failover_backoff_s = float(failover_backoff_s)
        self._timeouts = {
            "timeout": timeout,
            "connect_timeout": connect_timeout,
            "read_timeout": read_timeout,
        }
        self._clients: dict[str, RemoteWrapperClient] = {}
        # Per-host breaker state: [consecutive failures, open-until].
        self._breaker: dict[str, list[float]] = {}
        # Topology the router currently believes.  ``_owned`` is the
        # overlay adopted from /healthz after an epoch refresh: host →
        # shards it actually owns.  ``None`` means "trust the map".
        self._epoch = cluster.epoch
        self._owned: Optional[dict[str, frozenset[int]]] = None
        self._owned_n_shards = cluster.n_shards
        self.telemetry: deque[dict] = deque(maxlen=512)
        self._telemetry_sink = telemetry_sink

    # -- telemetry ----------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        record = {"event": event, "epoch": self._epoch, **fields}
        self.telemetry.append(record)
        if self._telemetry_sink is not None:
            try:
                self._telemetry_sink(record)
            except Exception:  # noqa: BLE001 - a broken sink must not break serving
                pass

    # -- circuit breaker ----------------------------------------------------

    def _breaker_open(self, host: str) -> bool:
        state = self._breaker.get(host)
        return (
            state is not None
            and state[0] >= self.breaker_threshold
            and time.monotonic() < state[1]
        )

    def _record_failure(self, host: str) -> None:
        state = self._breaker.setdefault(host, [0, 0.0])
        state[0] += 1
        if state[0] >= self.breaker_threshold:
            was_open = time.monotonic() < state[1]
            state[1] = time.monotonic() + self.breaker_reset_s
            if not was_open:
                self._emit(
                    "breaker_open", host=host, failures=int(state[0])
                )

    def _record_success(self, host: str) -> None:
        self._breaker.pop(host, None)

    def _breaker_error(self, host: str) -> RemoteError:
        name, _, port = host.rpartition(":")
        return RemoteError(
            f"{host} skipped: circuit breaker open after "
            f"{self.breaker_threshold} consecutive failures",
            host=name or host,
            port=int(port) if port.isdigit() else 0,
            attempts=0,
        )

    def _backoff_sleep(self, attempt: int) -> None:
        # Full-jitter exponential backoff before a failover retry.
        delay = min(
            self.failover_backoff_s * (2 ** max(attempt - 1, 0)), _BACKOFF_CAP_S
        )
        if delay > 0:
            time.sleep(delay * random.uniform(0.5, 1.0))

    # -- routing ------------------------------------------------------------

    def _qualify(self, site_key: str) -> str:
        # Same surface as the other two clients: a cross-tenant or
        # malformed key is a FacadeError.
        try:
            return qualify_key(site_key, self.tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc

    def host_of(self, site_key: str) -> str:
        """The *primary* serving host for ``site_key`` (tenant-qualified
        first, so two tenants' copies of one site may route apart)."""
        return self.cluster.host_of(self._qualify(site_key))

    def replica_hosts(self, site_key: str) -> list[str]:
        """Every host a key may be served from, primary first — the
        failover order keyed verbs walk."""
        return self._candidates(self._qualify(site_key))

    def _candidates(self, qualified: str) -> list[str]:
        """Replica hosts for a qualified key, primary first.

        After an epoch refresh the overlay (ground truth from the live
        hosts' ``/healthz``) wins over the map-derived placement — the
        map may predate a re-shard.
        """
        if self._owned:
            shard = shard_of_task(qualified, self._owned_n_shards)
            hosts = self.cluster.hosts
            start = shard % len(hosts)
            ring = [*hosts[start:], *hosts[:start]]
            owners = [h for h in ring if shard in self._owned.get(h, ())]
            if owners:
                return owners
        shard = self.cluster.shard_of(qualified)
        return list(self.cluster.replica_hosts_of_shard(shard, self.replication))

    def client_for_host(self, host: str) -> RemoteWrapperClient:
        """The router's keep-alive client for one cluster host."""
        if host not in self.cluster.hosts:
            raise FacadeError(f"{host!r} is not in the cluster map")
        client = self._clients.get(host)
        if client is None:
            client = RemoteWrapperClient(
                host, tenant=self.tenant, api_key=self.api_key, **self._timeouts
            )
            self._clients[host] = client
        return client

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- epoch refresh ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The topology epoch the router currently routes against."""
        return self._epoch

    def refresh_map(self) -> int:
        """Re-learn ownership from the live hosts' ``/healthz``.

        Adopts the newest epoch any live host advertises and the
        ownership table of the hosts serving it; hosts still on an
        older epoch (mid-rollout) are left out of the overlay until
        they catch up.  Returns the adopted epoch.  Called
        automatically — once per verb — when a 421 proves the router's
        map is stale; callable directly after an operator re-shard.
        """
        found: dict[str, tuple[int, int, Optional[frozenset[int]]]] = {}
        best = self._epoch
        for host, info in self.healthz().items():
            if not info.get("ok", False):
                continue
            epoch = int(info.get("epoch", 0))
            shards_info = info.get("shards")
            if shards_info:
                n = int(shards_info.get("n_shards", self.cluster.n_shards))
                owned: Optional[frozenset[int]] = frozenset(
                    int(s) for s in shards_info.get("owned", ())
                )
            else:
                n, owned = self.cluster.n_shards, None  # owns every shard
            found[host] = (epoch, n, owned)
            best = max(best, epoch)
        overlay: dict[str, frozenset[int]] = {}
        n_shards = self._owned_n_shards
        for host, (epoch, n, owned) in found.items():
            if epoch != best:
                continue
            n_shards = n
            overlay[host] = (
                owned if owned is not None else frozenset(range(n))
            )
        if overlay:
            self._owned = overlay
            self._owned_n_shards = n_shards
        self._epoch = best
        self._emit(
            "map_refresh",
            hosts=sorted(overlay),
            n_shards=n_shards,
        )
        return best

    # -- keyed reads: primary, then failover to the replica ------------------

    def _with_failover(self, site_key: str, fn):
        qualified = self._qualify(site_key)
        candidates = self._candidates(qualified)
        first_remote: Optional[RemoteError] = None
        last_ownership: Optional[OwnershipError] = None
        last_ratelimit: Optional[RateLimitError] = None
        refreshed = False
        tried = 0
        i = 0
        while i < len(candidates):
            host = candidates[i]
            if self._breaker_open(host):
                if first_remote is None:
                    first_remote = self._breaker_error(host)
                i += 1
                continue
            if tried:
                self._backoff_sleep(tried)
            tried += 1
            try:
                result = fn(self.client_for_host(host))
            except RemoteError as exc:
                self._record_failure(host)
                self._emit(
                    "failover", host=host, site_key=site_key, error=str(exc)
                )
                if first_remote is None:
                    first_remote = exc
                i += 1
                continue
            except RateLimitError as exc:
                # A 429 is a live, answering host — never a breaker
                # strike.  Another replica may still have budget for
                # this tenant, so the walk continues; the telemetry
                # event is what surfaces per-host throttling upstream.
                self._record_success(host)
                self._emit(
                    "rate_limited",
                    host=host,
                    site_key=site_key,
                    retry_after_s=exc.retry_after_s,
                )
                last_ratelimit = exc
                i += 1
                continue
            except OwnershipError as exc:
                self._record_success(host)  # the host is alive, just not the owner
                if exc.epoch > self._epoch and not refreshed:
                    # Stale map, not a misroute: learn the new topology
                    # once, then walk the fresh candidate list.
                    refreshed = True
                    self.refresh_map()
                    candidates = self._candidates(qualified)
                    i = 0
                    continue
                if last_ownership is None:
                    last_ownership = exc
                i += 1
                continue
            self._record_success(host)
            return result
        # Surfacing order: a transport failure names the host that
        # actually died; an OwnershipError only surfaces when every
        # replica answered and none owned the key (a real routing bug);
        # a RateLimitError means every live owner throttled the tenant
        # — the caller gets the Retry-After hint to honor.
        error: Optional[FacadeError] = (
            last_ratelimit or first_remote or last_ownership
        )
        if error is None:
            error = RemoteError(f"no live replica reachable for {site_key!r}")
        raise error

    def extract(self, site_key: str, page: Page) -> ExtractionResult:
        return self._with_failover(site_key, lambda c: c.extract(site_key, page))

    def check(self, site_key: str, page: Page) -> CheckResult:
        return self._with_failover(site_key, lambda c: c.check(site_key, page))

    def get(self, site_key: str) -> WrapperHandle:
        return self._with_failover(site_key, lambda c: c.get(site_key))

    def __contains__(self, site_key: str) -> bool:
        try:
            self._qualify(site_key)
        except FacadeError:
            return False  # parity: an unaddressable key is not contained
        try:
            self.get(site_key)
        except KeyError:
            return False
        return True

    # -- writes: every replica, quorum 1 ------------------------------------

    def _replicated_write(self, verb: str, site_key: str, fn):
        """Run a mutating verb against every replica of ``site_key``.

        Succeeds (returning the first replica's answer) as soon as ANY
        replica accepted the write; replicas that missed it are logged
        as ``write_repair_needed`` so an operator — or the next write —
        can converge them.  Raises only when no replica accepted: the
        first transport error (naming its host), else the ownership
        rejection, else the KeyError every replica agreed on.
        """
        qualified = self._qualify(site_key)
        candidates = self._candidates(qualified)
        result = _UNSET
        first_remote: Optional[RemoteError] = None
        last_ownership: Optional[OwnershipError] = None
        last_ratelimit: Optional[RateLimitError] = None
        missing: Optional[KeyError] = None
        repair_needed: list[tuple[str, Exception]] = []
        refreshed = False
        i = 0
        while i < len(candidates):
            host = candidates[i]
            if self._breaker_open(host):
                exc = self._breaker_error(host)
                repair_needed.append((host, exc))
                if first_remote is None:
                    first_remote = exc
                i += 1
                continue
            try:
                value = fn(self.client_for_host(host))
            except RemoteError as exc:
                self._record_failure(host)
                repair_needed.append((host, exc))
                if first_remote is None:
                    first_remote = exc
                i += 1
                continue
            except RateLimitError as exc:
                # The replica is alive but throttled this tenant: the
                # write did not land there, which is exactly the
                # write_repair_needed situation — another replica may
                # still accept it.
                self._record_success(host)
                self._emit(
                    "rate_limited",
                    host=host,
                    site_key=site_key,
                    retry_after_s=exc.retry_after_s,
                )
                repair_needed.append((host, exc))
                last_ratelimit = exc
                i += 1
                continue
            except OwnershipError as exc:
                self._record_success(host)
                if exc.epoch > self._epoch and not refreshed and result is _UNSET:
                    # Stale map and nothing written yet: safe to learn
                    # the new topology and restart the replica walk.
                    refreshed = True
                    self.refresh_map()
                    candidates = self._candidates(qualified)
                    i = 0
                    continue
                if last_ownership is None:
                    last_ownership = exc
                i += 1
                continue
            except KeyError as exc:
                # delete of a key this replica never had — agreement,
                # not divergence (the shared-store topology deletes the
                # artifact once and the second replica finds it gone).
                self._record_success(host)
                if missing is None:
                    missing = exc
                i += 1
                continue
            self._record_success(host)
            if result is _UNSET:
                result = value
            i += 1
        if result is not _UNSET:
            for host, exc in repair_needed:
                self._emit(
                    "write_repair_needed",
                    verb=verb,
                    host=host,
                    site_key=site_key,
                    error=str(exc),
                )
            return result
        error: Optional[Exception] = (
            last_ratelimit or first_remote or last_ownership or missing
        )
        if error is None:
            error = RemoteError(f"no live replica accepted {verb} of {site_key!r}")
        raise error

    def induce(self, site_key: str, samples, mode: str = "node", **options):
        return self._replicated_write(
            "induce", site_key, lambda c: c.induce(site_key, samples, mode, **options)
        )

    def repair(
        self,
        site_key: str,
        page: Page,
        target_paths: Optional[Sequence[str]] = None,
    ) -> WrapperHandle:
        return self._replicated_write(
            "repair", site_key, lambda c: c.repair(site_key, page, target_paths)
        )

    def deploy(self, artifact) -> WrapperHandle:
        """Deploy a prebuilt artifact to every replica of its shard."""
        return self._replicated_write(
            "deploy", artifact.task_id, lambda c: c.deploy(artifact)
        )

    def delete(self, site_key: str) -> None:
        result = self._replicated_write(
            "delete", site_key, lambda c: c.delete(site_key)
        )
        return result if result is not _UNSET else None

    # -- scatter-gather -----------------------------------------------------

    def _gather_parts(self, fn) -> dict[str, tuple[bool, object]]:
        """``fn(client)`` against every host concurrently; per-host
        ``(ok, value-or-error)`` so callers decide failure policy."""
        hosts = self.cluster.hosts

        def probe(host: str) -> tuple[bool, object]:
            try:
                return True, fn(self.client_for_host(host))
            except FacadeError as exc:
                return False, exc

        if len(hosts) == 1:
            return {hosts[0]: probe(hosts[0])}
        with ThreadPoolExecutor(max_workers=len(hosts)) as pool:
            return dict(zip(hosts, pool.map(probe, hosts)))

    def _tolerate_failures(self, parts: dict[str, tuple[bool, object]]) -> None:
        """Decide whether a listing may proceed without the dead hosts.

        A partial listing silently missing a shard group is worse than
        an error — so a failed host is tolerated only when the *live*
        hosts' ``/healthz`` ownership provably covers every shard (the
        replicated deployment).  In a disjoint deployment the dead
        host's shards are uncovered and its error surfaces, exactly as
        before replication existed.
        """
        failed = {host: part[1] for host, part in parts.items() if not part[0]}
        if not failed:
            return
        needed: Optional[set[int]] = None
        covered: set[int] = set()
        unsharded_live = False
        for host, (ok, _) in parts.items():
            if not ok:
                continue
            try:
                info = self.client_for_host(host).healthz()
            except FacadeError:
                continue
            shards_info = info.get("shards")
            if not shards_info:
                unsharded_live = True  # this host serves every shard
                continue
            needed = set(range(int(shards_info["n_shards"])))
            covered |= {int(s) for s in shards_info.get("owned", ())}
        if unsharded_live or (needed is not None and needed <= covered):
            for host, exc in failed.items():
                self._record_failure(host)
                self._emit("degraded_scan", host=host, error=str(exc))
            return
        raise next(iter(failed.values()))

    def handles(self) -> list[WrapperHandle]:
        parts = self._gather_parts(lambda c: c.handles())
        self._tolerate_failures(parts)
        merged: dict[str, WrapperHandle] = {}
        for ok, part in parts.values():
            if not ok:
                continue
            for handle in part:
                # Replicas list the same wrapper; first listing wins.
                merged.setdefault(handle.site_key, handle)
        return sorted(merged.values(), key=lambda handle: handle.site_key)

    def keys(self) -> list[str]:
        return [handle.site_key for handle in self.handles()]

    def healthz(self) -> dict:
        """Per-host health, keyed by address; a dead host reports its
        RemoteError string instead of poisoning the others."""
        parts = self._gather_parts(lambda c: c.healthz())
        return {
            host: (part if ok else {"ok": False, "error": str(part)})
            for host, (ok, part) in parts.items()
        }

    def metrics(self) -> dict:
        """Cluster-wide traffic counters: per-host ``GET /metrics``
        scatter-gather (dead hosts report their error, like healthz)
        plus the router's own view — breaker/failover/429/write-repair
        event counts from the retained telemetry window and which
        breakers are open right now."""
        parts = self._gather_parts(lambda c: c.metrics())
        events: dict[str, int] = {}
        for record in self.telemetry:
            name = str(record.get("event", ""))
            events[name] = events.get(name, 0) + 1
        return {
            "hosts": {
                host: (part if ok else {"ok": False, "error": str(part)})
                for host, (ok, part) in parts.items()
            },
            "router": {
                "epoch": self._epoch,
                "events": events,
                "breaker_open": sorted(
                    host for host in self.cluster.hosts if self._breaker_open(host)
                ),
            },
        }

    def __len__(self) -> int:
        if self.tenant or self.replication > 1:
            # Namespace filtering and replica de-duplication both happen
            # client-side; count the merged keys.
            return len(self.keys())
        # Disjoint groups: summing /healthz counters avoids shipping
        # every handle payload just to count them.
        parts = self._gather_parts(lambda c: c.healthz())
        self._tolerate_failures(parts)
        return sum(
            int(part.get("wrappers", 0)) for ok, part in parts.values() if ok
        )

    # -- batch extraction ---------------------------------------------------

    def extract_many(
        self,
        items: Sequence[tuple[str, Page]],
        *,
        concurrency: int = 4,
        return_errors: bool = False,
        wire: str = "pipeline",
    ) -> list:
        """Batch extraction: concurrent across hosts, pipelined per host.

        Items are grouped by the first live replica of their shard;
        every host's slice runs through that host's
        :meth:`RemoteWrapperClient.extract_many` pipeline (depth
        ``concurrency``) while the other hosts' slices run in parallel.
        ``wire`` is handed through to each host's client unchanged —
        ``"bulk"``/``"stream"`` send one ``/extract_many`` request per
        host instead of one ``/extract`` per item (streamed slots with
        ``"stream"``); failover and per-item error semantics are
        identical in every mode.
        An item whose host fails mid-batch is re-queued against its
        next replica in the following round (with jittered backoff), so
        a host dying under a batch costs a retry — not the batch.
        Results come back in item order.  An item with no live replica
        yields the first transport error (naming the host that died);
        an unroutable (cross-tenant, malformed) key fails per item.
        With ``return_errors`` errors are returned in place, otherwise
        the first one raises after the batch drains.
        """
        if concurrency < 1:
            raise FacadeError("extract_many concurrency must be >= 1")
        if wire not in ("pipeline", "bulk", "stream"):
            raise FacadeError(
                f"wire must be 'pipeline', 'bulk', or 'stream' (got {wire!r})"
            )
        results: list = [None] * len(items)
        qualified: dict[int, str] = {}
        pending: list[int] = []
        for index, (site_key, _) in enumerate(items):
            try:
                qualified[index] = self._qualify(site_key)
            except FacadeError as exc:
                # An unroutable key fails its own item only — exactly
                # like a failed request would.
                results[index] = exc
                continue
            pending.append(index)
        cands: dict[int, list[str]] = {}
        pos: dict[int, int] = {index: 0 for index in pending}
        first_remote: dict[int, RemoteError] = {}
        last_err: dict[int, Exception] = {}
        refreshed = False
        round_no = 0

        def run_host(host: str, indexes: list[int]) -> list:
            slice_items = [items[i] for i in indexes]
            try:
                return self.client_for_host(host).extract_many(
                    slice_items,
                    concurrency=concurrency,
                    return_errors=True,
                    wire=wire,
                )
            except Exception as exc:  # noqa: BLE001 - host-wide failure
                return [exc] * len(indexes)

        while pending:
            if round_no:
                self._backoff_sleep(round_no)
            round_no += 1
            by_host: dict[str, list[int]] = {}
            for index in pending:
                lst = cands.get(index)
                if lst is None:
                    lst = cands[index] = self._candidates(qualified[index])
                host = None
                while pos[index] < len(lst):
                    candidate = lst[pos[index]]
                    if self._breaker_open(candidate):
                        first_remote.setdefault(
                            index, self._breaker_error(candidate)
                        )
                        pos[index] += 1
                        continue
                    host = candidate
                    break
                if host is None:
                    results[index] = (
                        first_remote.get(index)
                        or last_err.get(index)
                        or RemoteError(
                            f"no live replica reachable for {items[index][0]!r}"
                        )
                    )
                    continue
                by_host.setdefault(host, []).append(index)
            next_pending: list[int] = []
            if by_host:
                if len(by_host) == 1:
                    host, indexes = next(iter(by_host.items()))
                    parts = [run_host(host, indexes)]
                else:
                    with ThreadPoolExecutor(max_workers=len(by_host)) as pool:
                        parts = list(
                            pool.map(lambda kv: run_host(*kv), by_host.items())
                        )
                refresh_now = False
                for (host, indexes), part in zip(by_host.items(), parts):
                    answered = 0
                    transport_failures = 0
                    for index, result in zip(indexes, part):
                        if isinstance(result, RemoteError):
                            transport_failures += 1
                            first_remote.setdefault(index, result)
                            self._emit(
                                "failover",
                                host=host,
                                site_key=items[index][0],
                                error=str(result),
                            )
                            pos[index] += 1
                            next_pending.append(index)
                        elif isinstance(result, RateLimitError):
                            # The per-host pipeline already honored the
                            # Retry-After hint and still got throttled;
                            # requeue against the next replica.
                            answered += 1
                            self._emit(
                                "rate_limited",
                                host=host,
                                site_key=items[index][0],
                                retry_after_s=result.retry_after_s,
                            )
                            last_err[index] = result
                            pos[index] += 1
                            next_pending.append(index)
                        elif isinstance(result, OwnershipError):
                            answered += 1
                            if result.epoch > self._epoch and not refreshed:
                                refresh_now = True
                            last_err.setdefault(index, result)
                            pos[index] += 1
                            next_pending.append(index)
                        else:
                            # A real answer — including KeyError and
                            # other FacadeErrors the host *decided*.
                            answered += 1
                            results[index] = result
                    if answered:
                        self._record_success(host)
                    elif transport_failures:
                        self._record_failure(host)
                if refresh_now:
                    refreshed = True
                    self.refresh_map()
                    cands.clear()
                    for index in next_pending:
                        pos[index] = 0
            pending = next_pending
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results


__all__ = ["RouterClient"]

"""Site state: everything a template needs to render one snapshot.

``SiteProfile`` is the static registry of a site's evolvable knobs;
``SiteState`` is one point of the random walk over them.  Builders
(see :mod:`repro.sites.verticals`) read the state through a
:class:`RenderContext` and never see the change process itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.dom.node import TextNode


@dataclass(frozen=True)
class Knob:
    """An integer knob with bounds (list sizes, repeated-block counts)."""

    initial: int
    minimum: int
    maximum: int


@dataclass(frozen=True)
class SiteProfile:
    """Static description of a site's evolvable surface.

    * ``class_tokens`` / ``id_tokens``: logical names resolved to actual
      attribute values per state (renames change the resolution);
    * ``counts``: block-repetition knobs (promos before the content, …);
    * ``lists``: data-list length knobs;
    * ``flags``: toggleable optional blocks;
    * ``texts``: volatile data slots, mapping key → generator kind
      (see :mod:`repro.sites.datagen`);
    * ``removable_roles``: target roles the site may eventually drop
      (break group f).
    """

    class_tokens: Mapping[str, str] = field(default_factory=dict)  # token -> initial name
    id_tokens: Mapping[str, str] = field(default_factory=dict)
    counts: Mapping[str, Knob] = field(default_factory=dict)
    lists: Mapping[str, Knob] = field(default_factory=dict)
    flags: Mapping[str, bool] = field(default_factory=dict)
    texts: Mapping[str, str] = field(default_factory=dict)  # key -> generator kind
    removable_roles: tuple[str, ...] = ()


@dataclass
class SiteState:
    """One snapshot's rendering parameters."""

    snapshot_index: int
    day: int
    class_map: dict[str, str]
    id_map: dict[str, str]
    counts: dict[str, int]
    lists: dict[str, int]
    flags: dict[str, bool]
    texts: dict[str, str]
    redesign_level: int = 0
    removed_roles: frozenset[str] = frozenset()
    broken: bool = False

    def clone(self) -> "SiteState":
        return SiteState(
            snapshot_index=self.snapshot_index,
            day=self.day,
            class_map=dict(self.class_map),
            id_map=dict(self.id_map),
            counts=dict(self.counts),
            lists=dict(self.lists),
            flags=dict(self.flags),
            texts=dict(self.texts),
            redesign_level=self.redesign_level,
            removed_roles=self.removed_roles,
            broken=self.broken,
        )


class RenderContext:
    """What a template builder sees: resolved names, values, and helpers.

    ``rng`` is seeded per snapshot, so rendering is deterministic while
    list contents still churn between snapshots like real page data.
    """

    def __init__(self, state: SiteState, rng=None, site: str = "") -> None:
        self.state = state
        self.site = site
        from repro.util import seeded_rng

        self.rng = rng if rng is not None else seeded_rng("render", state.snapshot_index)

    def cls(self, token: str) -> str:
        """Current class-attribute value for a logical token."""
        return self.state.class_map[token]

    def ident(self, token: str) -> str:
        """Current id-attribute value for a logical token."""
        return self.state.id_map[token]

    def text(self, key: str) -> str:
        """Current (volatile) data value for a slot."""
        return self.state.texts[key]

    def count(self, knob: str) -> int:
        return self.state.counts[knob]

    def list_size(self, knob: str) -> int:
        return self.state.lists[knob]

    def flag(self, knob: str) -> bool:
        return self.state.flags[knob]

    def removed(self, role: str) -> bool:
        return role in self.state.removed_roles

    @property
    def redesign(self) -> int:
        return self.state.redesign_level

    def data(self, key: str) -> TextNode:
        """A text node holding volatile data (never used in predicates)."""
        node = TextNode(self.text(key))
        node.meta["volatile"] = True
        return node

    def volatile(self, text: str) -> TextNode:
        """Mark arbitrary text as volatile data."""
        node = TextNode(text)
        node.meta["volatile"] = True
        return node

    def gen_str(self, kind: str) -> str:
        """A fresh data value of the given kind (churns per snapshot)."""
        from repro.sites import datagen

        return datagen.generate(kind, self.rng)

    def gen(self, kind: str) -> TextNode:
        """A fresh volatile data text node of the given kind."""
        return self.volatile(self.gen_str(kind))

    def stable_str(self, kind: str, *key) -> str:
        """A data value that stays the same across snapshots of one site
        (a movie's cast, a hotel's name) — still treated as volatile for
        induction, since it is page data, not template."""
        from repro.sites import datagen
        from repro.util import seeded_rng

        return datagen.generate(kind, seeded_rng(self.site, "stable", kind, *key))

    def stable(self, kind: str, *key) -> TextNode:
        """A stable (per-site) volatile data text node."""
        return self.volatile(self.stable_str(kind, *key))

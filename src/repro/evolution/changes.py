"""The change process: one random-walk step per archive snapshot.

Per-snapshot probabilities are calibrated against the paper's
observations: canonical paths change a handful of times over a
wrapper's life (avg ≈ 4.1 c-changes, Sec. 6.2), class values get
renamed at redesigns and occasionally in between, ids are markedly more
stable than classes, data text churns on essentially every snapshot,
and a small fraction of snapshots are broken archive captures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.evolution.state import SiteProfile, SiteState

#: A post-step hook: receives the freshly evolved state and the step's
#: RNG and returns the (possibly replaced) state.  Scripted break
#: points (:mod:`repro.sitegen.breaks`) use this to inject *known*
#: structural changes at chosen snapshot indices on top of the random
#: walk, so ground truth for "when did the site actually break" exists.
StateHook = Callable[[SiteState, random.Random], SiteState]


def _datagen():
    # Imported lazily: repro.sites imports this module for ChangeModel,
    # and a top-level import back into repro.sites would be circular.
    from repro.sites import datagen

    return datagen


@dataclass(frozen=True)
class ChangeModel:
    """Per-snapshot (≈20 days) change probabilities."""

    p_class_rename: float = 0.035
    p_id_rename: float = 0.008
    p_count_change: float = 0.08
    p_list_resize: float = 0.30
    p_flag_toggle: float = 0.035
    p_redesign: float = 0.004
    #: Fraction of class tokens renamed during a redesign.
    redesign_class_churn: float = 0.6
    #: Fraction of id tokens renamed during a redesign.
    redesign_id_churn: float = 0.25
    p_target_removal: float = 0.004
    p_broken_snapshot: float = 0.0015
    data_churn_rate: float = 0.9

    def scaled(self, factor: float) -> "ChangeModel":
        """A model with all structural-change rates scaled by ``factor``
        (used to give sites different volatility)."""
        return ChangeModel(
            p_class_rename=self.p_class_rename * factor,
            p_id_rename=self.p_id_rename * factor,
            p_count_change=self.p_count_change * factor,
            p_list_resize=self.p_list_resize,
            p_flag_toggle=self.p_flag_toggle * factor,
            p_redesign=self.p_redesign * factor,
            redesign_class_churn=self.redesign_class_churn,
            redesign_id_churn=self.redesign_id_churn,
            p_target_removal=self.p_target_removal * factor,
            p_broken_snapshot=self.p_broken_snapshot,
            data_churn_rate=self.data_churn_rate,
        )


def rename_attribute_value(value: str, rng: random.Random) -> str:
    """Mutate an attribute value the way real sites do.

    Styles observed in the paper: numeric-suffix change
    (``headline20`` → ``headline16``), wording expansion
    (``hp-content-block`` → ``homepage-content-block``), truncation
    (``searchInputArea`` → ``searchArea``), and versioning.
    """
    style = rng.randrange(4)
    if style == 0:  # numeric suffix change
        stripped = value.rstrip("0123456789")
        return f"{stripped}{rng.randrange(2, 99)}"
    if style == 1:  # wording expansion
        prefix = rng.choice(["main", "page", "site", "new", "home"])
        return f"{prefix}-{value}" if "-" in value or value.islower() else f"{prefix}{value.capitalize()}"
    if style == 2:  # truncation / simplification
        for sep in ("-", "_"):
            if sep in value:
                parts = value.split(sep)
                if len(parts) > 1:
                    return sep.join(parts[:-1])
        return value[: max(3, len(value) - rng.randrange(2, 5))]
    return f"{value}-v{rng.randrange(2, 9)}"  # versioning


def initial_state(profile: SiteProfile, rng: random.Random) -> SiteState:
    """Snapshot-0 state: profile values with per-site jitter on knobs."""
    counts = {
        name: min(knob.maximum, max(knob.minimum, knob.initial + rng.randint(-1, 1)))
        for name, knob in profile.counts.items()
    }
    lists = {
        name: min(knob.maximum, max(knob.minimum, knob.initial + rng.randint(-1, 2)))
        for name, knob in profile.lists.items()
    }
    texts = {
        key: _datagen().generate(kind, rng) for key, kind in profile.texts.items()
    }
    return SiteState(
        snapshot_index=0,
        day=0,
        class_map=dict(profile.class_tokens),
        id_map=dict(profile.id_tokens),
        counts=counts,
        lists=lists,
        flags=dict(profile.flags),
        texts=texts,
    )


def evolve_state(
    profile: SiteProfile,
    state: SiteState,
    model: ChangeModel,
    rng: random.Random,
    interval_days: int = 20,
    hook: Optional[StateHook] = None,
) -> SiteState:
    """One random-walk step: the state of the next archive snapshot.

    ``hook`` runs after the random-walk step with the new state and the
    same RNG stream; it may mutate the state in place or return a
    replacement.  The walk itself consumes an identical number of RNG
    draws with or without a hook, so hooked and unhooked archives stay
    comparable snapshot-for-snapshot.
    """
    new = state.clone()
    new.snapshot_index += 1
    new.day += interval_days
    new.broken = rng.random() < model.p_broken_snapshot

    # Data churn: most data slots change between snapshots.
    datagen = _datagen()
    for key, kind in profile.texts.items():
        if rng.random() < model.data_churn_rate:
            new.texts[key] = datagen.generate(kind, rng)

    for token in profile.class_tokens:
        if rng.random() < model.p_class_rename:
            new.class_map[token] = rename_attribute_value(new.class_map[token], rng)
    for token in profile.id_tokens:
        if rng.random() < model.p_id_rename:
            new.id_map[token] = rename_attribute_value(new.id_map[token], rng)

    for name, knob in profile.counts.items():
        if rng.random() < model.p_count_change:
            delta = rng.choice([-1, 1])
            new.counts[name] = min(knob.maximum, max(knob.minimum, new.counts[name] + delta))
    for name, knob in profile.lists.items():
        if rng.random() < model.p_list_resize:
            delta = rng.choice([-2, -1, 1, 2])
            new.lists[name] = min(knob.maximum, max(knob.minimum, new.lists[name] + delta))
    for name in profile.flags:
        if rng.random() < model.p_flag_toggle:
            new.flags[name] = not new.flags[name]

    if rng.random() < model.p_redesign:
        new.redesign_level += 1
        for token in profile.class_tokens:
            if rng.random() < model.redesign_class_churn:
                new.class_map[token] = rename_attribute_value(new.class_map[token], rng)
        for token in profile.id_tokens:
            if rng.random() < model.redesign_id_churn:
                new.id_map[token] = rename_attribute_value(new.id_map[token], rng)

    if profile.removable_roles and rng.random() < model.p_target_removal:
        candidates = [r for r in profile.removable_roles if r not in new.removed_roles]
        if candidates:
            new.removed_roles = new.removed_roles | {rng.choice(candidates)}

    if hook is not None:
        hooked = hook(new, rng)
        if hooked is not None:
            new = hooked
    return new

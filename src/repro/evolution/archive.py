"""Synthetic archive: deterministic snapshot sequences for one site.

Mirrors how the paper consumes the Internet Archive: snapshots at
20-day intervals over up to six years.  States evolve deterministically
from the site seed; documents are rendered lazily and cached with a
small LRU so long studies stay memory-bounded.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.dom.node import Document, Node
from repro.evolution.changes import StateHook, evolve_state, initial_state
from repro.evolution.state import RenderContext
from repro.util import seeded_rng

if TYPE_CHECKING:  # avoid a circular import with repro.sites.spec
    from repro.sites.spec import SiteSpec


class SyntheticArchive:
    """Snapshot access for one site (20-day cadence by default)."""

    def __init__(
        self,
        spec: "SiteSpec",
        n_snapshots: int = 110,
        interval_days: int = 20,
        cache_size: int = 8,
        seed: int | None = None,
        state_hook: "StateHook | None" = None,
    ) -> None:
        if n_snapshots < 1:
            raise ValueError("an archive needs at least one snapshot")
        self.spec = spec
        self.n_snapshots = n_snapshots
        self.interval_days = interval_days
        #: Root seed for every RNG this archive derives.  Defaults to the
        #: site seed (same trajectory as the published corpus); an
        #: explicit override replays the *same site* under an alternate
        #: deterministic history without touching the global RNG.
        self.seed = spec.seed if seed is None else seed
        #: Post-step hook on every evolution step (scripted break
        #: points).  Defaults to the spec's own hook so generated sites
        #: (repro.sitegen) carry their break script wherever the spec
        #: travels — including through induce_corpus_task's throwaway
        #: archives.
        self.state_hook = (
            state_hook if state_hook is not None else getattr(spec, "state_hook", None)
        )
        self._states = [initial_state(spec.profile, self._rng())]
        self._doc_cache: OrderedDict[int, Document] = OrderedDict()
        self._cache_size = cache_size

    def _rng(self, *parts) -> random.Random:
        """A deterministic RNG derived from the archive's single root seed.

        Every stochastic call site (initial state, per-step evolution,
        per-snapshot rendering) draws from its own derived stream, so
        snapshots are identical regardless of materialization order.
        """
        return seeded_rng(self.seed, self.spec.site_id, *parts)

    # -- state / snapshot access ------------------------------------------

    def state(self, index: int):
        if not 0 <= index < self.n_snapshots:
            raise IndexError(f"snapshot {index} out of range")
        while len(self._states) <= index:
            step = len(self._states)
            rng = self._rng(step)
            self._states.append(
                evolve_state(
                    self.spec.profile,
                    self._states[-1],
                    self.spec.change_model,
                    rng,
                    self.interval_days,
                    hook=self.state_hook,
                )
            )
        return self._states[index]

    def day(self, index: int) -> int:
        return index * self.interval_days

    def is_broken(self, index: int) -> bool:
        return self.state(index).broken

    def snapshot(self, index: int) -> Document:
        """Render (cached) the document of snapshot ``index``."""
        cached = self._doc_cache.get(index)
        if cached is not None:
            self._doc_cache.move_to_end(index)
            return cached
        state = self.state(index)
        if state.broken:
            doc = _broken_page(self.spec.url)
        else:
            rng = self._rng("render", index)
            doc = self.spec.build(RenderContext(state, rng, site=self.spec.site_id))
            doc.url = self.spec.url
        self._doc_cache[index] = doc
        if len(self._doc_cache) > self._cache_size:
            self._doc_cache.popitem(last=False)
        return doc

    # -- ground truth --------------------------------------------------------

    def targets(self, doc: Document, role: str) -> list[Node]:
        """Ground-truth target nodes for a role in a rendered snapshot."""
        return doc.find_by_meta("role", role)

    def targets_at(self, index: int, role: str) -> list[Node]:
        return self.targets(self.snapshot(index), role)


def _broken_page(url: str) -> Document:
    """An erroneous archive capture: structurally broken, no content."""
    from repro.dom.builder import E, document

    return document(
        E("html", E("body", E("div", "Wayback Machine: snapshot unavailable", class_="error"))),
        url=url,
    )

"""Page-evolution simulator: the offline stand-in for the Internet Archive.

The paper tracks >100 pages over six years of Internet Archive
snapshots at 20-day intervals.  Offline, each site is a parameterized
template whose *state* performs a seeded random walk over exactly the
change classes the paper observes on real pages (Sec. 6.2):

* positional changes of ``div``s on the canonical path (blocks inserted
  or removed before the content);
* class-attribute renames (``hp-content-block`` →
  ``homepage-content-block``-style) and rarer id renames;
* data churn on every snapshot (headlines, names, prices);
* site-wide redesigns that restructure the template;
* permanent removal of the target data (the paper's break group f);
* occasional empty/structurally-broken archive snapshots (group e).

States evolve deterministically from a seed, so every experiment is
reproducible; snapshots are rendered on demand.
"""

from repro.evolution.archive import SyntheticArchive
from repro.evolution.changes import ChangeModel, StateHook, evolve_state, initial_state
from repro.evolution.state import SiteProfile, SiteState

__all__ = [
    "ChangeModel",
    "SiteProfile",
    "SiteState",
    "StateHook",
    "SyntheticArchive",
    "evolve_state",
    "initial_state",
]

"""Scoring parameters with the paper's published defaults (Sec. 6.3).

The paper fixes one global configuration for both single- and
multi-target induction: decay δ = 2.5 (tuned over 0.5–5), generic node
tests at 1, named tags at 10, positional factor 20, no-function-penalty
15, no-predicate-penalty 1000, plus the axis/attribute/function score
tables reproduced below verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.xpath.ast import Axis

#: Axis scores (Sec. 6.3).  ``following``/``preceding`` never appear in
#: induced queries; they get a prohibitive default for completeness.
DEFAULT_AXIS_SCORES: Mapping[Axis, float] = {
    Axis.DESCENDANT: 1,
    Axis.ATTRIBUTE: 1,
    Axis.FOLLOWING_SIBLING: 1,
    Axis.CHILD: 10,
    Axis.PARENT: 10,
    Axis.ANCESTOR: 20,
    Axis.PRECEDING_SIBLING: 25,
    Axis.FOLLOWING: 500,
    Axis.PRECEDING: 500,
    Axis.SELF: 0,
}

#: Attribute scores (Sec. 6.3); anything not listed costs ``default_attribute``.
#: The paper's table stops at ``name``; the extra entries below are needed
#: because the paper's own induced queries use them (``@href`` on
#: jobs.nih.gov, ``@itemprop`` on IMDB) — with the 1000 default those
#: expressions could never rank, so semantic/navigational attributes get
#: moderate scores.
DEFAULT_ATTRIBUTE_SCORES: Mapping[str, float] = {
    "id": 1,
    "type": 1,
    "title": 1,
    "itemprop": 2,
    "class": 5,
    "itemtype": 5,
    "for": 10,
    "alt": 25,
    "href": 30,
    "src": 30,
    "rel": 30,
    "name": 50,
}

#: Function scores (Sec. 6.3).  ``ends-with`` is not listed in the paper's
#: table; we score it like its mirror ``starts-with``.
DEFAULT_FUNCTION_SCORES: Mapping[str, float] = {
    "equals": 1,
    "position": 1,
    "contains": 5,
    "starts-with": 5,
    "ends-with": 5,
    "normalize-space": 5,
    "last": 20,
    "string": 100,
}


@dataclass(frozen=True)
class ScoringParams:
    """All constants of the robustness score.

    ``no_predicate_penalty_scope`` controls whether the no-predicate
    penalty applies once per query (our reading of Sec. 4, where the
    penalty is added "to score(q)") or to every bare step; the ablation
    benchmarks flip it.
    """

    decay: float = 2.5
    axis_scores: Mapping[Axis, float] = field(
        default_factory=lambda: dict(DEFAULT_AXIS_SCORES)
    )
    attribute_scores: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ATTRIBUTE_SCORES)
    )
    default_attribute_score: float = 1000
    function_scores: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FUNCTION_SCORES)
    )
    generic_nodetest_score: float = 1  # c_node() = c_* = 1
    default_tag_score: float = 10  # c_default
    tag_scores: Mapping[str, float] = field(default_factory=dict)
    positional_factor: float = 20  # c_pos
    length_factor: float = 1  # c_f
    no_function_penalty: float = 15  # y
    no_predicate_penalty: float = 1000
    no_predicate_penalty_scope: str = "query"  # "query" | "step"

    def axis_score(self, axis: Axis) -> float:
        return self.axis_scores.get(axis, 100)

    def attribute_score(self, name: str) -> float:
        return self.attribute_scores.get(name, self.default_attribute_score)

    def function_score(self, name: str) -> float:
        return self.function_scores.get(name, 100)

    def tag_score(self, tag: str) -> float:
        return self.tag_scores.get(tag, self.default_tag_score)

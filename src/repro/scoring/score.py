"""The recursive robustness score (Sec. 4).

score(a₁::t₁P₁/…/aₙ::tₙPₙ) = Σᵢ score(aᵢ::tᵢPᵢ)·δ^(i-1)

* step:        score(a::t p₁…pₘ) = s_a + s_t + Σⱼ score(pⱼ)
* positional:  score([n]) = c_pos·n + s_position;
               score([last()-n]) = c_pos·n + s_last
* attribute:   score([f(@a,w)]) = s_f + y + s_a + c_f·|w|  with y ≠ 0
               only for the bare existence test [@a]
* text:        score([f(.,w)]) = s_f + s_text + c_f·|w|
               (s_text is the normalize-space function score)
* a query without any predicate receives the no-predicate penalty

Plus-composability (the property Theorem 1 relies on):
score(q₁/q₂) = score(q₁) + δ^len(q₁)·score(q₂) — verified by property
tests.  Note the paper's single worked example (score 40 for
``descendant::img[@class="adv"][1]``) drops the s_f term of the equals
predicate; we implement the formula as written, which yields 41.
"""

from __future__ import annotations

from repro.scoring.params import ScoringParams
from repro.xpath.ast import (
    AttributePredicate,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TextSubject,
)


def score_nodetest(nodetest: NodeTest, params: ScoringParams) -> float:
    if nodetest.kind == "name":
        return params.tag_score(nodetest.name)  # c_default unless overridden
    return params.generic_nodetest_score  # node(), *, text()


def score_predicate(predicate: Predicate, params: ScoringParams) -> float:
    if isinstance(predicate, PositionalPredicate):
        if predicate.index is not None:
            return params.positional_factor * predicate.index + params.function_score(
                "position"
            )
        return params.positional_factor * predicate.from_last + params.function_score(
            "last"
        )
    if isinstance(predicate, AttributePredicate):
        # Bare [@a]: no function, zero-length string, non-zero y penalty.
        return params.no_function_penalty + params.attribute_score(predicate.name)
    if isinstance(predicate, StringPredicate):
        base = params.function_score(predicate.function)
        length = params.length_factor * len(predicate.value)
        if isinstance(predicate.subject, TextSubject):
            return base + params.function_score("normalize-space") + length
        return base + params.attribute_score(predicate.subject.name) + length
    if isinstance(predicate, RelativePredicate):
        # Human-wrapper extension: score the nested path as a query.
        return score_query(predicate.query, params)
    raise TypeError(f"unexpected predicate: {predicate!r}")


def score_step(step: Step, params: ScoringParams) -> float:
    total = params.axis_score(step.axis) + score_nodetest(step.nodetest, params)
    for predicate in step.predicates:
        total += score_predicate(predicate, params)
    if params.no_predicate_penalty_scope == "step" and not step.predicates:
        total += params.no_predicate_penalty
    return total


def score_query(query: Query, params: ScoringParams) -> float:
    """Decay-weighted sum of step scores, plus the no-predicate penalty."""
    total = 0.0
    for i, step in enumerate(query.steps):
        total += score_step(step, params) * params.decay**i
    if params.no_predicate_penalty_scope == "query" and not any(
        step.predicates for step in query.steps
    ):
        total += params.no_predicate_penalty
    return total


class Scorer:
    """Caching wrapper around :func:`score_query` for one parameter set."""

    def __init__(self, params: ScoringParams | None = None) -> None:
        self.params = params or ScoringParams()
        self._cache: dict[Query, float] = {}

    def score(self, query: Query) -> float:
        cached = self._cache.get(query)
        if cached is None:
            cached = score_query(query, self.params)
            self._cache[query] = cached
        return cached

"""The recursive robustness score (Sec. 4).

score(a₁::t₁P₁/…/aₙ::tₙPₙ) = Σᵢ score(aᵢ::tᵢPᵢ)·δ^(i-1)

* step:        score(a::t p₁…pₘ) = s_a + s_t + Σⱼ score(pⱼ)
* positional:  score([n]) = c_pos·n + s_position;
               score([last()-n]) = c_pos·n + s_last
* attribute:   score([f(@a,w)]) = s_f + y + s_a + c_f·|w|  with y ≠ 0
               only for the bare existence test [@a]
* text:        score([f(.,w)]) = s_f + s_text + c_f·|w|
               (s_text is the normalize-space function score)
* a query without any predicate receives the no-predicate penalty

Plus-composability (the property Theorem 1 relies on):
score(q₁/q₂) = score(q₁) + δ^len(q₁)·score(q₂) — verified by property
tests.  Note the paper's single worked example (score 40 for
``descendant::img[@class="adv"][1]``) drops the s_f term of the equals
predicate; we implement the formula as written, which yields 41.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scoring.params import ScoringParams
from repro.xpath.ast import (
    AttributePredicate,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TextSubject,
)


def score_nodetest(nodetest: NodeTest, params: ScoringParams) -> float:
    if nodetest.kind == "name":
        return params.tag_score(nodetest.name)  # c_default unless overridden
    return params.generic_nodetest_score  # node(), *, text()


def score_predicate(predicate: Predicate, params: ScoringParams) -> float:
    if isinstance(predicate, PositionalPredicate):
        if predicate.index is not None:
            return params.positional_factor * predicate.index + params.function_score(
                "position"
            )
        return params.positional_factor * predicate.from_last + params.function_score(
            "last"
        )
    if isinstance(predicate, AttributePredicate):
        # Bare [@a]: no function, zero-length string, non-zero y penalty.
        return params.no_function_penalty + params.attribute_score(predicate.name)
    if isinstance(predicate, StringPredicate):
        base = params.function_score(predicate.function)
        length = params.length_factor * len(predicate.value)
        if isinstance(predicate.subject, TextSubject):
            return base + params.function_score("normalize-space") + length
        return base + params.attribute_score(predicate.subject.name) + length
    if isinstance(predicate, RelativePredicate):
        # Human-wrapper extension: score the nested path as a query.
        return score_query(predicate.query, params)
    raise TypeError(f"unexpected predicate: {predicate!r}")


def score_step(step: Step, params: ScoringParams) -> float:
    total = params.axis_score(step.axis) + score_nodetest(step.nodetest, params)
    for predicate in step.predicates:
        total += score_predicate(predicate, params)
    if params.no_predicate_penalty_scope == "step" and not step.predicates:
        total += params.no_predicate_penalty
    return total


def score_query(query: Query, params: ScoringParams) -> float:
    """Decay-weighted sum of step scores, plus the no-predicate penalty."""
    total = 0.0
    for i, step in enumerate(query.steps):
        total += score_step(step, params) * params.decay**i
    if params.no_predicate_penalty_scope == "query" and not any(
        step.predicates for step in query.steps
    ):
        total += params.no_predicate_penalty
    return total


#: Bound on each Scorer-internal memo dict.  Scorers are pinned in the
#: shared registry below for the process lifetime, so their caches need
#: the same clear-on-overflow guard as the other global caches.
_SCORER_CACHE_LIMIT = 200_000


class Scorer:
    """Caching wrapper around :func:`score_query` for one parameter set.

    Besides the per-query memo, step scores and decay powers are cached
    individually: the induction re-scores the same few hundred steps in
    millions of combinations, so ``score``/``score_pair`` reduce to one
    cached-float multiply-add per step.  All accumulation happens in the
    same order (and with the same ``decay**i`` exponentiations) as
    :func:`score_query`, so cached results are bit-identical to the
    direct computation.
    """

    def __init__(self, params: ScoringParams | None = None) -> None:
        self.params = params or ScoringParams()
        self._cache: dict[Query, float] = {}
        self._pair_cache: dict[tuple[Query, Query], float] = {}
        self._step_cache: dict[Step, float] = {}
        self._pows: list[float] = [1.0]

    def _step_score(self, step: Step) -> float:
        cached = self._step_cache.get(step)
        if cached is None:
            if len(self._step_cache) > _SCORER_CACHE_LIMIT:
                self._step_cache.clear()
            cached = score_step(step, self.params)
            self._step_cache[step] = cached
        return cached

    def _pow(self, i: int) -> float:
        pows = self._pows
        while len(pows) <= i:
            pows.append(self.params.decay ** len(pows))
        return pows[i]

    def score(self, query: Query) -> float:
        cached = self._cache.get(query)
        if cached is None:
            if len(self._cache) > _SCORER_CACHE_LIMIT:
                self._cache.clear()
            cached = self.score_pair(query, None)
            self._cache[query] = cached
        return cached

    def score_pair(self, head: Query, tail: Query | None) -> float:
        """``score(head/tail)`` without materializing the concatenation.

        Exactly equal (bitwise) to ``score(head.concat(tail))``: the
        per-step terms accumulate in the same order with the same decay
        powers, and the no-predicate penalty considers both parts.
        (head, tail) results are memoized — the DP retries the same
        piece × tail combinations across anchors.
        """
        if tail is not None:
            key = (head, tail)
            cached = self._pair_cache.get(key)
            if cached is not None:
                return cached
            if len(self._pair_cache) > _SCORER_CACHE_LIMIT:
                self._pair_cache.clear()
            result = self._score_pair_uncached(head, tail)
            self._pair_cache[key] = result
            return result
        return self._score_pair_uncached(head, None)

    def _score_pair_uncached(self, head: Query, tail: Query | None) -> float:
        step_score = self._step_score
        pow_ = self._pow
        total = 0.0
        i = 0
        has_predicates = False
        for step in head.steps:
            total += step_score(step) * pow_(i)
            i += 1
            has_predicates = has_predicates or bool(step.predicates)
        if tail is not None:
            for step in tail.steps:
                total += step_score(step) * pow_(i)
                i += 1
                has_predicates = has_predicates or bool(step.predicates)
        if self.params.no_predicate_penalty_scope == "query" and not has_predicates:
            total += self.params.no_predicate_penalty
        return total


#: Scorer registry shared by the induction layers: one Scorer per
#: (ScoringParams object, variant), pinned so its caches stay warm
#: across samples and documents.  Keys use the params object's id; the
#: stored params reference pins the object so the id stays valid, and
#: an identity re-check guards against id reuse after a clear.
_SCORER_REGISTRY: dict[tuple[int, str], tuple[ScoringParams, Scorer]] = {}


def shared_scorer(params: ScoringParams, variant: str = "exact") -> Scorer:
    """The process-wide Scorer for ``params``.

    ``variant="exact"`` scores with the params as given; ``"pieces"``
    zeroes the no-predicate penalty (used when ranking bare query
    pieces, whose penalty is a property of the final composed query).
    """
    key = (id(params), variant)
    entry = _SCORER_REGISTRY.get(key)
    if entry is None or entry[0] is not params:
        if len(_SCORER_REGISTRY) > 128:
            _SCORER_REGISTRY.clear()
        if variant == "pieces":
            scorer = Scorer(replace(params, no_predicate_penalty=0.0))
        elif variant == "exact":
            scorer = Scorer(params)
        else:
            raise ValueError(f"unknown scorer variant: {variant}")
        entry = (params, scorer)
        _SCORER_REGISTRY[key] = entry
    return entry[1]

"""Robustness scoring and ranking of query instances (Sec. 4).

Queries are ranked first by F0.5 accuracy against the samples, then by
a plus-composable robustness score: lower score = more robust.  The
score of a query is the decay-weighted sum of its step scores; step
scores sum axis, node test, and predicate scores from the constant
tables published in Sec. 6.3 of the paper.
"""

from repro.scoring.params import ScoringParams
from repro.scoring.ranking import KBestTable, QueryInstance, fbeta, rank_key
from repro.scoring.score import Scorer, score_query

__all__ = [
    "KBestTable",
    "QueryInstance",
    "Scorer",
    "ScoringParams",
    "fbeta",
    "rank_key",
    "score_query",
]

"""Query instances, the F0.5/score ranking, and bounded K-best tables.

A query instance ⟨p, t+, f+, f−⟩ bundles an expression with its
accuracy counts against the samples (Sec. 4).  Instances are ordered by
(1) higher F_β — the paper uses β = 0.5, biasing precision so that
noisy extra annotations cost little recall pressure — and (2) lower
robustness score.  Remaining ties break deterministically by query
length and text so runs are reproducible.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.xpath.ast import Query


def precision(tp: int, fp: int) -> float:
    return tp / (tp + fp) if tp + fp else 0.0


def recall(tp: int, fn: int) -> float:
    return tp / (tp + fn) if tp + fn else 0.0


def fbeta(tp: int, fp: int, fn: int, beta: float = 0.5) -> float:
    """F_β of approximation counts (Sec. 2); 0 when undefined."""
    prec = tp / (tp + fp) if tp + fp else 0.0
    rec = tp / (tp + fn) if tp + fn else 0.0
    if prec == 0.0 and rec == 0.0:
        return 0.0
    b2 = beta * beta
    return (1 + b2) * prec * rec / (b2 * prec + rec)


class QueryInstance:
    """⟨p, t+, f+, f−⟩ plus the precomputed robustness score.

    A plain ``__slots__`` class rather than a (frozen) dataclass: the
    induction creates tens of thousands of instances per task, and the
    ``object.__setattr__`` calls of a frozen dataclass ``__init__``
    dominated candidate generation.  Treat instances as immutable.
    """

    __slots__ = ("query", "tp", "fp", "fn", "score")

    def __init__(self, query: Query, tp: int, fp: int, fn: int, score: float) -> None:
        self.query = query
        self.tp = tp
        self.fp = fp
        self.fn = fn
        self.score = score

    @property
    def precision(self) -> float:
        return precision(self.tp, self.fp)

    @property
    def recall(self) -> float:
        return recall(self.tp, self.fn)

    def f_beta(self, beta: float = 0.5) -> float:
        return fbeta(self.tp, self.fp, self.fn, beta)

    @property
    def is_accurate(self) -> bool:
        """Exactly the targets: no false positives or negatives."""
        return self.fp == 0 and self.fn == 0 and self.tp > 0

    def with_counts(self, tp: int, fp: int, fn: int) -> "QueryInstance":
        return QueryInstance(self.query, tp, fp, fn, self.score)

    def _key(self) -> tuple:
        return (self.query, self.tp, self.fp, self.fn, self.score)

    def __eq__(self, other) -> bool:
        if not isinstance(other, QueryInstance):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryInstance(query={self.query!r}, tp={self.tp}, fp={self.fp}, "
            f"fn={self.fn}, score={self.score!r})"
        )

    def __str__(self) -> str:
        return (
            f"{self.query}  [F0.5={self.f_beta():.3f} "
            f"t+={self.tp} f+={self.fp} f-={self.fn} score={self.score:g}]"
        )


class QueryText:
    """Lazy final tiebreaker: compares like ``str(query)`` but only
    renders the text when a comparison actually reaches it.

    Rank keys compare on (F_β, score, length) first; the text tiebreak
    is needed only for exact ties, yet eagerly building it dominated
    ``rank_key``.  Comparisons against plain strings keep working (the
    pruning code uses ``""`` as the optimistic smallest text).
    """

    __slots__ = ("query",)

    def __init__(self, query: Query) -> None:
        self.query = query

    def _text(self, other) -> str:
        return str(other.query) if isinstance(other, QueryText) else other

    def __lt__(self, other) -> bool:
        return str(self.query) < self._text(other)

    def __le__(self, other) -> bool:
        return str(self.query) <= self._text(other)

    def __gt__(self, other) -> bool:
        return str(self.query) > self._text(other)

    def __ge__(self, other) -> bool:
        return str(self.query) >= self._text(other)

    def __eq__(self, other) -> bool:
        return str(self.query) == self._text(other)

    def __hash__(self) -> int:
        return hash(str(self.query))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryText({str(self.query)!r})"


def rank_key(instance: QueryInstance, beta: float = 0.5) -> tuple:
    """Sort key: better instances sort first (q < q' iff key(q) < key(q'))."""
    return (
        -instance.f_beta(beta),
        instance.score,
        len(instance.query),
        QueryText(instance.query),
    )


class KBestTable:
    """A bounded table of the K best query instances, deduplicated by query.

    Implements the ``best(n)`` tables of Algorithm 2: insertion keeps the
    table sorted by :func:`rank_key` and capped at K entries; a candidate
    enters only if the table is not full or it beats the K-th entry
    (``q < best(n)[K]``, Line 8).
    """

    def __init__(self, k: int, beta: float = 0.5) -> None:
        if k < 1:
            raise ValueError("K must be >= 1")
        self.k = k
        self.beta = beta
        # Parallel lists of rank keys and instances, sorted by key; keys
        # are computed exactly once per inserted instance (they are the
        # hot path of the whole induction).
        self._item_keys: list[tuple] = []
        self._items: list[QueryInstance] = []
        self._keys: dict[Query, tuple] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[QueryInstance]:
        return iter(self._items)

    @property
    def items(self) -> list[QueryInstance]:
        return list(self._items)

    def best(self) -> Optional[QueryInstance]:
        return self._items[0] if self._items else None

    def worst_key(self) -> Optional[tuple]:
        """Rank key of the K-th entry when full, else None (anything enters)."""
        if len(self._items) < self.k:
            return None
        return self._item_keys[-1]

    def would_accept(self, key: tuple) -> bool:
        worst = self.worst_key()
        return worst is None or key < worst

    def would_accept_partial(self, partial: tuple) -> bool:
        """Pruning check on a text-free key prefix ``(-F_β, score, len)``.

        Equivalent to :meth:`would_accept` with the optimistic ``""``
        text tiebreak: on a full prefix tie the empty text sorts first,
        so ties are accepted.
        """
        if len(self._items) < self.k:
            return True
        return partial <= self._item_keys[-1][:3]

    def insert(self, instance: QueryInstance, key: tuple | None = None) -> bool:
        """Insert if it beats the K-th entry; returns True when kept.

        ``key`` may carry the precomputed :func:`rank_key` of
        ``instance`` (bulk callers compute it once and reuse it across
        tables); when omitted it is derived here.
        """
        if key is None:
            neg_f = -fbeta(instance.tp, instance.fp, instance.fn, self.beta)
            if len(self._items) >= self.k:
                # Cheap pre-check: if the text-free key prefix already
                # loses to the K-th entry, the full key loses too.  (A
                # replaceable duplicate always beats the K-th entry, so
                # the dedup path below is unreachable when pre-rejected.)
                partial = (neg_f, instance.score, len(instance.query))
                if partial > self._item_keys[-1][:3]:
                    return False
            key = (neg_f, instance.score, len(instance.query), QueryText(instance.query))
        elif len(self._items) >= self.k and key[:3] > self._item_keys[-1][:3]:
            return False
        existing = self._keys.get(instance.query)
        if existing is not None:
            if key >= existing:
                return False
            index = next(
                i for i, item in enumerate(self._items) if item.query == instance.query
            )
            del self._items[index]
            del self._item_keys[index]
            del self._keys[instance.query]
        if not self.would_accept(key):
            return False
        # Insertion sort: tables are tiny (K ~ 10).
        index = 0
        while index < len(self._item_keys) and self._item_keys[index] < key:
            index += 1
        self._items.insert(index, instance)
        self._item_keys.insert(index, key)
        self._keys[instance.query] = key
        if len(self._items) > self.k:
            dropped = self._items.pop()
            self._item_keys.pop()
            del self._keys[dropped.query]
        return instance.query in self._keys

    def extend(self, instances: Iterable[QueryInstance]) -> None:
        for instance in instances:
            self.insert(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KBestTable(k={self.k}, items={len(self._items)})"

"""The facade's one annotation model.

A :class:`Sample` is what every induction mode consumes: a document, the
annotated target nodes, optionally one related field node per target and
per field name (record mode).  Locally it holds live DOM nodes; for the
wire it round-trips through the same portable representation the
artifact layer already uses for self-contained repair
(:class:`repro.runtime.artifact.StoredSample`: page HTML + canonical
paths + volatile text values), so a sample annotated in one process can
be induced from in another.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.dom.node import Document, Node, TextNode
from repro.induction.relative import RecordExample
from repro.induction.samples import QuerySample
from repro.runtime.artifact import StoredSample, resolve_path
from repro.api.results import FacadeError
from repro.xpath.canonical import canonical_path


def mark_volatile(*nodes, key: str = "volatile") -> None:
    """Mark text under ``nodes`` as volatile page *data*.

    The induction protocol (Sec. 6.2) never anchors wrappers on data
    values — only on template structure — but it learns which text is
    data from the ``meta[key]`` mark.  Accepts any mix of nodes,
    documents, and iterables of either; every :class:`TextNode` at or
    below each argument is marked.
    """
    for item in nodes:
        if isinstance(item, Document):
            for text in item.index.texts:
                text.meta[key] = True
        elif isinstance(item, TextNode):
            item.meta[key] = True
        elif isinstance(item, Node):
            for child in item.descendants():
                if isinstance(child, TextNode):
                    child.meta[key] = True
        elif isinstance(item, Iterable):
            mark_volatile(*item, key=key)
        else:
            raise TypeError(f"cannot mark {type(item).__name__} volatile")


class Sample:
    """One annotated page: ⟨document, targets⟩ plus optional record fields.

    ``fields`` maps a field name to one node per target (the targets are
    then the record *anchors*); all field sequences must align with the
    targets.  ``context`` is the evaluation context node (the document
    node when omitted) — note that stored/served wrappers require
    document-node contexts.
    """

    def __init__(
        self,
        doc: Document,
        targets: Sequence[Node],
        fields: Optional[Mapping[str, Sequence[Node]]] = None,
        context: Optional[Node] = None,
    ) -> None:
        self.doc = doc
        self.targets = list(targets)
        if not self.targets:
            raise ValueError("a sample needs at least one target node")
        self.context = context
        self.fields: Optional[dict[str, tuple[Node, ...]]] = None
        if fields is not None:
            converted = {name: tuple(nodes) for name, nodes in fields.items()}
            for name, nodes in converted.items():
                if len(nodes) != len(self.targets):
                    raise ValueError(
                        f"field {name!r} has {len(nodes)} nodes for "
                        f"{len(self.targets)} targets (one per target required)"
                    )
            self.fields = converted

    # -- engine views -------------------------------------------------------

    def as_query_sample(self) -> QuerySample:
        return QuerySample(self.doc, self.targets, self.context)

    def as_record_examples(self) -> list[RecordExample]:
        """Record-mode view: each target is an anchor with its fields."""
        if not self.fields:
            raise ValueError("record mode needs a sample with fields")
        return [
            RecordExample(
                anchor=anchor,
                fields={name: nodes[i] for name, nodes in self.fields.items()},
            )
            for i, anchor in enumerate(self.targets)
        ]

    # -- wire form ----------------------------------------------------------

    def to_payload(self, volatile_key: str = "volatile") -> dict:
        """The portable (JSON) form: HTML + canonical paths.

        Built on :class:`~repro.runtime.artifact.StoredSample`, so the
        round trip is validated at build time (targets must re-resolve
        on the reparsed page) rather than at induction time.
        """
        stored = StoredSample.from_sample(
            self.as_query_sample(), volatile_meta_key=volatile_key
        )
        payload = stored.to_payload()
        if self.fields:
            payload["fields"] = {
                name: [str(canonical_path(node)) for node in nodes]
                for name, nodes in sorted(self.fields.items())
            }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Sample":
        """Rebuild a live sample from its wire form (reparses the page
        and re-resolves every canonical path)."""
        stored = StoredSample.from_payload(payload)
        sample = stored.restore()
        fields = None
        raw_fields = payload.get("fields")
        if raw_fields:
            fields = {
                str(name): tuple(
                    resolve_path(sample.doc, str(path)) for path in paths
                )
                for name, paths in raw_fields.items()
            }
        return cls(
            sample.doc,
            sample.targets,
            fields=fields,
            context=None if sample.context is sample.doc.root else sample.context,
        )

    def __repr__(self) -> str:
        fields = f", fields={sorted(self.fields)}" if self.fields else ""
        return f"Sample({len(self.targets)} target(s){fields})"


def coerce_samples(samples: Sequence) -> list[Sample]:
    """Normalize a facade ``samples`` argument: :class:`Sample` passes
    through, legacy :class:`~repro.induction.samples.QuerySample` is
    wrapped, anything else (and an empty sequence) is a
    :class:`~repro.api.results.FacadeError` — the one validation both
    the local and the remote client apply."""
    out: list[Sample] = []
    for sample in samples:
        if isinstance(sample, Sample):
            out.append(sample)
        elif isinstance(sample, QuerySample):
            out.append(Sample(sample.doc, sample.targets, context=sample.context))
        else:
            raise FacadeError(
                f"samples must be repro.api.Sample or QuerySample, "
                f"got {type(sample).__name__}"
            )
    if not out:
        raise FacadeError("at least one sample is required")
    return out


__all__ = ["Sample", "coerce_samples", "mark_volatile"]

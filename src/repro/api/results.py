"""Typed facade results and the record → result assembly logic.

Every facade verb returns one of three result types, each with a
lossless JSON payload round trip — those payloads *are* the network
protocol (:mod:`repro.runtime.net`), which is what makes
:class:`~repro.api.client.WrapperClient` and
:class:`~repro.api.remote.RemoteWrapperClient` interchangeable:

* :class:`WrapperHandle` — a deployed wrapper (``induce``/``repair``/
  ``get``): the ranked queries, the ensemble, the mode, the generation;
* :class:`ExtractionResult` — one served page (``extract``): values,
  node paths, the queries that ran, record rows in record mode, and the
  drift signals observed *on this very page*;
* :class:`CheckResult` — a drift check (``check``): signals + vote
  counts.

Drift signals are computed from the extraction records alone (canonical
paths identify nodes uniquely), so serving and checking share one page
evaluation — no second parse, and the network server can compute them
from :class:`~repro.runtime.extractor.ExtractionRecord` batches without
ever materializing a DOM on the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.placement import tenant_of
from repro.runtime.artifact import WrapperArtifact
from repro.runtime.drift import (
    CANONICAL_CHANGE,
    EMPTY_RESULT,
    ENSEMBLE_DISAGREEMENT,
    DriftConfig,
)
from repro.runtime.extractor import ExtractionRecord


class FacadeError(ValueError):
    """A facade request was invalid or could not be served."""


#: Provenance key under which facade metadata (mode, record fields)
#: rides inside a :class:`WrapperArtifact` — artifacts stay version-1
#: compatible and fully usable by the lower runtime layers.
FACADE_KEY = "facade"

#: Wrapper id of the top-ranked query in extraction batches.
BEST_ID = "best"


def facade_meta(artifact: WrapperArtifact) -> dict:
    meta = artifact.provenance.get(FACADE_KEY)
    return meta if isinstance(meta, dict) else {}


def facade_mode(artifact: WrapperArtifact) -> str:
    """The induction mode an artifact was built under (``node`` for
    artifacts produced by pre-facade tooling)."""
    return str(facade_meta(artifact).get("mode", "node"))


def facade_fields(artifact: WrapperArtifact) -> dict[str, str]:
    """Record-mode field queries (name → canonical dsXPath text)."""
    fields = facade_meta(artifact).get("fields", {})
    return {str(name): str(text) for name, text in fields.items()}


def extraction_wrappers(artifact: WrapperArtifact) -> tuple[tuple[str, str], ...]:
    """The (wrapper id, query text) batch one served page evaluates:
    the best query plus every ensemble member."""
    return ((BEST_ID, artifact.best.text),) + tuple(
        (f"m{i}", text) for i, text in enumerate(artifact.ensemble)
    )


def _vote(
    member_records: Sequence[ExtractionRecord], quorum: int
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Quorum vote over member result sets, keyed by canonical path
    (deterministic path-sorted order — stable across processes)."""
    votes: dict[str, int] = {}
    values: dict[str, str] = {}
    for record in member_records:
        for path, value in zip(record.paths, record.values):
            votes[path] = votes.get(path, 0) + 1
            values[path] = value
    selected = sorted(path for path, count in votes.items() if count >= quorum)
    return tuple(selected), tuple(values[path] for path in selected)


def signals_from_records(
    artifact: WrapperArtifact,
    best: ExtractionRecord,
    members: Sequence[ExtractionRecord],
    drift: Optional[DriftConfig] = None,
) -> tuple[tuple[str, ...], int]:
    """The drift signals one served page exhibits, plus the number of
    disagreeing ensemble members.

    Mirrors :meth:`repro.runtime.drift.DriftDetector.check` but works on
    extraction records: empty result, canonical fingerprint moved off
    the stored baseline, ensemble majority disagreeing with the best
    query's node set.
    """
    drift = drift or DriftConfig()
    signals: list[str] = []
    if best.is_empty:
        signals.append(EMPTY_RESULT)
    elif tuple(sorted(best.paths)) != artifact.baseline_paths:
        signals.append(CANONICAL_CHANGE)
    best_set = frozenset(best.paths)
    disagreeing = sum(
        1 for record in members if frozenset(record.paths) != best_set
    )
    if members and disagreeing / len(members) >= drift.disagreement_threshold:
        signals.append(ENSEMBLE_DISAGREEMENT)
    return tuple(signals), disagreeing


@dataclass(frozen=True)
class WrapperHandle:
    """A deployed wrapper, as the facade sees it."""

    site_key: str
    mode: str
    query: str
    score: float
    queries: tuple[str, ...]
    ensemble: tuple[str, ...]
    quorum: int
    generation: int = 0
    site_id: str = ""
    role: str = ""
    fields: dict[str, str] = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        """The namespace this wrapper lives in (``""`` untenanted) —
        derived from the (possibly qualified) site key, so tenancy
        rides every payload without a second source of truth."""
        return tenant_of(self.site_key)

    @classmethod
    def from_artifact(cls, artifact: WrapperArtifact) -> "WrapperHandle":
        return cls(
            site_key=artifact.task_id,
            mode=facade_mode(artifact),
            query=artifact.best.text,
            score=artifact.best.score,
            queries=tuple(ranked.text for ranked in artifact.queries),
            ensemble=artifact.ensemble,
            quorum=artifact.quorum,
            generation=artifact.generation,
            site_id=artifact.site_id,
            role=artifact.role,
            fields=facade_fields(artifact),
        )

    def to_payload(self) -> dict:
        return {
            "site_key": self.site_key,
            "tenant": self.tenant,
            "mode": self.mode,
            "query": self.query,
            "score": self.score,
            "queries": list(self.queries),
            "ensemble": list(self.ensemble),
            "quorum": self.quorum,
            "generation": self.generation,
            "site_id": self.site_id,
            "role": self.role,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WrapperHandle":
        try:
            return cls(
                site_key=str(payload["site_key"]),
                mode=str(payload["mode"]),
                query=str(payload["query"]),
                score=float(payload["score"]),
                queries=tuple(str(q) for q in payload["queries"]),
                ensemble=tuple(str(m) for m in payload["ensemble"]),
                quorum=int(payload["quorum"]),
                generation=int(payload.get("generation", 0)),
                site_id=str(payload.get("site_id", "")),
                role=str(payload.get("role", "")),
                fields={
                    str(k): str(v) for k, v in payload.get("fields", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FacadeError(f"malformed wrapper handle payload: {exc}") from exc


@dataclass(frozen=True)
class ExtractionResult:
    """What one page yielded: values + node paths + the drift signals
    observed while serving it.

    ``values``/``paths`` follow the serving mode: the best query's
    matches in ``node``/``record`` mode (record anchors), the quorum
    vote in ``ensemble`` mode.  ``records`` holds one ``{field: value}``
    row per anchor in record mode (``None`` for a missing field).
    """

    site_key: str
    mode: str
    values: tuple[str, ...]
    paths: tuple[str, ...]
    query: str
    queries: tuple[str, ...]
    drift_signals: tuple[str, ...] = ()
    drifted: bool = False
    generation: int = 0
    records: tuple[dict, ...] = ()

    @property
    def count(self) -> int:
        return len(self.paths)

    @property
    def is_empty(self) -> bool:
        return not self.paths

    @property
    def tenant(self) -> str:
        return tenant_of(self.site_key)

    def to_payload(self) -> dict:
        return {
            "site_key": self.site_key,
            "tenant": self.tenant,
            "mode": self.mode,
            "values": list(self.values),
            "paths": list(self.paths),
            "query": self.query,
            "queries": list(self.queries),
            "drift_signals": list(self.drift_signals),
            "drifted": self.drifted,
            "generation": self.generation,
            "records": [dict(row) for row in self.records],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExtractionResult":
        try:
            return cls(
                site_key=str(payload["site_key"]),
                mode=str(payload["mode"]),
                values=tuple(str(v) for v in payload["values"]),
                paths=tuple(str(p) for p in payload["paths"]),
                query=str(payload["query"]),
                queries=tuple(str(q) for q in payload["queries"]),
                drift_signals=tuple(str(s) for s in payload.get("drift_signals", ())),
                drifted=bool(payload.get("drifted", False)),
                generation=int(payload.get("generation", 0)),
                records=tuple(dict(row) for row in payload.get("records", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FacadeError(f"malformed extraction result payload: {exc}") from exc


@dataclass(frozen=True)
class CheckResult:
    """Drift verdict for one (wrapper, page) check."""

    site_key: str
    signals: tuple[str, ...]
    drifted: bool
    result_count: int = 0
    disagreeing_members: int = 0
    member_count: int = 0
    generation: int = 0

    @property
    def healthy(self) -> bool:
        return not self.signals

    @property
    def tenant(self) -> str:
        return tenant_of(self.site_key)

    def to_payload(self) -> dict:
        return {
            "site_key": self.site_key,
            "tenant": self.tenant,
            "signals": list(self.signals),
            "drifted": self.drifted,
            "result_count": self.result_count,
            "disagreeing_members": self.disagreeing_members,
            "member_count": self.member_count,
            "generation": self.generation,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CheckResult":
        try:
            return cls(
                site_key=str(payload["site_key"]),
                signals=tuple(str(s) for s in payload["signals"]),
                drifted=bool(payload["drifted"]),
                result_count=int(payload.get("result_count", 0)),
                disagreeing_members=int(payload.get("disagreeing_members", 0)),
                member_count=int(payload.get("member_count", 0)),
                generation=int(payload.get("generation", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FacadeError(f"malformed check result payload: {exc}") from exc


def result_from_records(
    artifact: WrapperArtifact,
    records: Sequence[ExtractionRecord],
    drift: Optional[DriftConfig] = None,
    record_rows: Sequence[dict] = (),
) -> ExtractionResult:
    """Assemble an :class:`ExtractionResult` from the page's extraction
    batch (best query first, then the ensemble members, in
    :func:`extraction_wrappers` order).

    Shared by the local client and the network front-end so both
    backends produce byte-identical results for the same page.
    """
    drift = drift or DriftConfig()
    best, members = records[0], list(records[1 : 1 + len(artifact.ensemble)])
    signals, _ = signals_from_records(artifact, best, members, drift)
    hard = drift.hard_signals()
    mode = facade_mode(artifact)
    if mode == "ensemble":
        paths, values = _vote(members, artifact.quorum)
    else:
        paths, values = best.paths, best.values
    return ExtractionResult(
        site_key=artifact.task_id,
        mode=mode,
        values=values,
        paths=paths,
        query=artifact.best.text,
        queries=tuple(text for _, text in extraction_wrappers(artifact)),
        drift_signals=signals,
        drifted=any(signal in hard for signal in signals),
        generation=artifact.generation,
        records=tuple(dict(row) for row in record_rows),
    )


def check_from_records(
    artifact: WrapperArtifact,
    records: Sequence[ExtractionRecord],
    drift: Optional[DriftConfig] = None,
) -> CheckResult:
    """Assemble a :class:`CheckResult` from the same extraction batch."""
    drift = drift or DriftConfig()
    best, members = records[0], list(records[1 : 1 + len(artifact.ensemble)])
    signals, disagreeing = signals_from_records(artifact, best, members, drift)
    hard = drift.hard_signals()
    return CheckResult(
        site_key=artifact.task_id,
        signals=signals,
        drifted=any(signal in hard for signal in signals),
        result_count=best.count,
        disagreeing_members=disagreeing,
        member_count=len(members),
        generation=artifact.generation,
    )


__all__ = [
    "BEST_ID",
    "CheckResult",
    "ExtractionResult",
    "FACADE_KEY",
    "FacadeError",
    "WrapperHandle",
    "check_from_records",
    "extraction_wrappers",
    "facade_fields",
    "facade_mode",
    "result_from_records",
    "signals_from_records",
]

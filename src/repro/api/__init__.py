"""``repro.api`` — the one client object model over the whole lifecycle.

The paper's value proposition is a complete wrapper *lifecycle*: induce
from a few annotated samples, serve robustly, detect drift, repair.
The engine layers implement each stage (:mod:`repro.induction`,
:mod:`repro.runtime`), but each speaks its own dataclasses.  This
package is the stable facade that the rest of the codebase — examples,
CLI, network front-end, benchmarks — converges on:

* :class:`Sample` / :func:`mark_volatile` — one portable annotation
  model (document + target nodes locally, HTML + canonical paths on the
  wire) covering single-node, list, and record extraction;
* :class:`WrapperClient` — induce / extract / check / repair against an
  in-memory registry or a :class:`~repro.runtime.store.ShardedArtifactStore`;
* :class:`RemoteWrapperClient` — the identical surface over the HTTP
  JSON front-end (:mod:`repro.runtime.net`), so local and remote are
  interchangeable backends;
* typed results — :class:`WrapperHandle`, :class:`ExtractionResult`,
  :class:`CheckResult` — instead of layer-specific dataclasses, each
  with a lossless JSON payload round trip (that payload *is* the wire
  protocol);
* :class:`RouterClient` + :class:`ClusterMap` — the same surface over a
  *cluster* of shard-owning hosts, each launched with ``serve --listen
  --own-shards``; placement helpers (:func:`site_key_of`,
  :func:`shard_index`, :func:`qualify_key`, :func:`split_tenant`) are
  re-exported here so deployment tooling shares the exact function the
  store, the hosts, and the router place keys with.

All three clients take a ``tenant`` namespace and grow an
``extract_many`` batch verb (parse-amortized locally, pipelined over
per-thread connections remotely, fanned out across hosts by the
router).

Quickstart::

    from repro import Sample, WrapperClient, mark_volatile, parse_html

    client = WrapperClient()                 # or WrapperClient(store="store/")
    doc = parse_html(open("movie.html").read())
    target = doc.find(tag="span", itemprop="name")
    mark_volatile(target)                    # data text must not anchor the wrapper
    handle = client.induce("movie/director", [Sample(doc, [target])])
    result = client.extract("movie/director", open("movie.html").read())
    print(handle.query, result.values, result.drift_signals)

See docs/API.md for the full facade reference and the wire protocol.
"""

from repro.api.client import WrapperClient
from repro.api.remote import (
    AuthError,
    OwnershipError,
    RateLimitError,
    RemoteError,
    RemoteWrapperClient,
)
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    WrapperHandle,
)
from repro.api.sample import Sample, mark_volatile
from repro.cluster.placement import (
    ClusterMap,
    REPLICATION_FACTOR,
    ShardOwnership,
    qualify_key,
    replica_indexes,
    shard_index,
    site_key_of,
    split_tenant,
)
from repro.cluster.router import RouterClient

#: Facade modes accepted by :meth:`WrapperClient.induce`.
MODES = ("node", "record", "ensemble")

__all__ = [
    "MODES",
    "REPLICATION_FACTOR",
    "CheckResult",
    "ClusterMap",
    "ExtractionResult",
    "FacadeError",
    "AuthError",
    "OwnershipError",
    "RateLimitError",
    "RemoteError",
    "RemoteWrapperClient",
    "RouterClient",
    "Sample",
    "ShardOwnership",
    "WrapperClient",
    "WrapperHandle",
    "mark_volatile",
    "qualify_key",
    "replica_indexes",
    "shard_index",
    "site_key_of",
    "split_tenant",
]

""":class:`WrapperClient` — the local facade over the whole lifecycle.

One object, four verbs::

    client = WrapperClient()                  # in-memory registry
    client = WrapperClient(store="store/")    # sharded artifact store

    handle = client.induce(site_key, samples, mode="node")   # deploy
    result = client.extract(site_key, html)                  # serve
    check  = client.check(site_key, html)                    # monitor
    handle = client.repair(site_key, html)                   # recover

``mode`` selects the induction variant — all three land in the same
:class:`~repro.runtime.artifact.WrapperArtifact` format, so every
deployed wrapper (whatever its mode) is served, checked, repaired, and
swept by the same machinery:

* ``node`` — absolute single-/multi-node wrappers (Algorithm 3); served
  by the top-ranked query.
* ``ensemble`` — same induction, but extraction serves the
  feature-diverse committee's quorum vote instead of the single best
  query (the paper's future-work item 4: survives a class rename that
  breaks individual members).
* ``record`` — anchor + relative field wrappers (future-work item 1);
  extraction yields one ``{field: value}`` row per anchor.

Every served page doubles as a drift check: :class:`ExtractionResult`
carries the signals the page exhibited, so callers get monitoring for
free.  :class:`~repro.api.remote.RemoteWrapperClient` exposes the
identical surface over the network front-end.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Optional, Sequence, Union

from repro.cluster.placement import (
    DEFAULT_TENANT,
    qualify_key,
    tenant_of,
    validate_tenant,
)
from repro.dom.node import Document
from repro.dom.parser import parse_html
from repro.induction.config import InductionConfig, config_with_options
from repro.induction.induce import WrapperInducer
from repro.induction.relative import RecordWrapper, RelativeWrapperInducer
from repro.induction.samples import QuerySample
from repro.runtime.artifact import ArtifactError, WrapperArtifact, resolve_path
from repro.runtime.drift import DriftConfig, reinduce
from repro.runtime.extractor import extract_document
from repro.runtime.store import ShardedArtifactStore, site_key_of
from repro.xpath.parser import parse_query
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FACADE_KEY,
    FacadeError,
    WrapperHandle,
    check_from_records,
    extraction_wrappers,
    facade_fields,
    facade_mode,
    result_from_records,
)
from repro.api.sample import Sample, coerce_samples

#: A page, as the facade accepts it: raw HTML or an already-parsed DOM.
Page = Union[str, Document]


def _as_doc(page: Page) -> Document:
    if isinstance(page, Document):
        return page
    try:
        return parse_html(page)
    except Exception as exc:
        raise FacadeError(f"page failed to parse: {exc}") from exc


def record_rows(artifact: WrapperArtifact, doc: Document) -> list[dict]:
    """Record-mode rows for one page: evaluate the anchor query, then
    each stored field query relative to every anchor."""
    wrapper = RecordWrapper(
        anchor_query=artifact.best_query(),
        field_queries={
            name: parse_query(text)
            for name, text in facade_fields(artifact).items()
        },
    )
    return wrapper.extract_values(doc)


class WrapperClient:
    """Induce, serve, monitor, and repair wrappers behind one facade.

    ``store`` selects the backend: ``None`` keeps artifacts in an
    in-process dict (throwaway sessions, tests); a path or an existing
    :class:`~repro.runtime.store.ShardedArtifactStore` persists them
    (creating a new store at a fresh path).  ``drift`` tunes the
    signal thresholds applied by ``extract``/``check``.

    ``tenant`` scopes the client into one namespace: every site key is
    qualified to ``tenant::key`` on the way in, so two tenants' copies
    of the same site key never share an artifact, a store path, or a
    drift-telemetry stream, and ``keys()``/``handles()`` list only this
    tenant's wrappers.  The default (empty) tenant sees every key —
    including other tenants' qualified keys — unchanged.
    """

    def __init__(
        self,
        store: Union[str, os.PathLike, ShardedArtifactStore, None] = None,
        *,
        shards: Optional[int] = None,
        drift: Optional[DriftConfig] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.drift = drift or DriftConfig()
        try:
            self.tenant = validate_tenant(tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc
        self._memory: dict[str, WrapperArtifact] = {}
        #: Aggregate induce-side counters (surfaced by the serving
        #: layer's ``/metrics`` induction block).  The serving layer
        #: updates these from its multi-threaded induce executor, so
        #: writes go through :meth:`_bump_counters` and readers take
        #: :meth:`induction_counter_snapshot`.
        self.induction_counters: dict[str, int] = {
            "inductions": 0,
            "repairs": 0,
            "candidates_considered": 0,
            "pruned_candidates_skipped": 0,
        }
        self._counters_lock = threading.Lock()
        if store is None:
            self._store: Optional[ShardedArtifactStore] = None
        elif isinstance(store, ShardedArtifactStore):
            self._store = store
        else:
            self._store = ShardedArtifactStore(store, n_shards=shards)

    @property
    def store(self) -> Optional[ShardedArtifactStore]:
        """The persistent backend, or ``None`` for in-memory clients."""
        return self._store

    def _bump_counters(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to :attr:`induction_counters`."""
        with self._counters_lock:
            for key, delta in deltas.items():
                self.induction_counters[key] += delta

    def induction_counter_snapshot(self) -> dict[str, int]:
        """A consistent copy of :attr:`induction_counters` (the
        ``/metrics`` reader runs concurrently with inductions)."""
        with self._counters_lock:
            return dict(self.induction_counters)

    def _qualify(self, site_key: str) -> str:
        """``site_key`` in this client's namespace (FacadeError on a
        cross-tenant key — one tenant never reaches another's)."""
        try:
            return qualify_key(site_key, self.tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc

    # -- registry -----------------------------------------------------------

    def artifact(self, site_key: str) -> WrapperArtifact:
        """The raw deployed artifact (the escape hatch to the runtime
        layers).  Raises :class:`KeyError` for unknown keys."""
        site_key = self._qualify(site_key)
        if self._store is not None:
            return self._store.get(site_key)
        return self._memory[site_key]

    def _put(self, artifact: WrapperArtifact) -> None:
        if self._store is not None:
            self._store.put(artifact)
        else:
            self._memory[artifact.task_id] = artifact

    def deploy(self, artifact: WrapperArtifact) -> WrapperHandle:
        """Deploy a prebuilt artifact (migration path for wrappers
        induced by pre-facade tooling; they serve in ``node`` mode).

        A tenant-scoped client deploys into its own namespace: a bare
        ``task_id`` is qualified (so the wrapper is reachable through
        this client's verbs), and an artifact already qualified for a
        different tenant is rejected.
        """
        qualified = self._qualify(artifact.task_id)
        if qualified != artifact.task_id:
            artifact = dataclasses.replace(artifact, task_id=qualified)
        self._put(artifact)
        return WrapperHandle.from_artifact(artifact)

    def get(self, site_key: str) -> WrapperHandle:
        return WrapperHandle.from_artifact(self.artifact(site_key))

    def keys(self) -> list[str]:
        if self._store is not None:
            ids = self._store.task_ids()
        else:
            ids = sorted(self._memory)
        if self.tenant:
            ids = [key for key in ids if tenant_of(key) == self.tenant]
        return ids

    def handles(self) -> list[WrapperHandle]:
        return [self.get(site_key) for site_key in self.keys()]

    def delete(self, site_key: str) -> None:
        site_key = self._qualify(site_key)
        if self._store is not None:
            self._store.remove(site_key)
        else:
            del self._memory[site_key]

    def __contains__(self, site_key: str) -> bool:
        try:
            site_key = self._qualify(site_key)
        except FacadeError:
            return False
        if self._store is not None:
            return site_key in self._store
        return site_key in self._memory

    def __len__(self) -> int:
        return len(self.keys())

    # -- induce -------------------------------------------------------------

    def induce(
        self,
        site_key: str,
        samples: Sequence[Union[Sample, QuerySample]],
        mode: str = "node",
        *,
        k: int = 10,
        ensemble_size: int = 3,
        max_queries: int = 10,
        config: Optional[InductionConfig] = None,
        role: str = "",
        provenance: Optional[dict] = None,
        options: Optional[dict] = None,
    ) -> WrapperHandle:
        """Induce and deploy a wrapper for ``site_key``.

        ``samples`` are :class:`Sample` annotations (legacy
        :class:`~repro.induction.samples.QuerySample` accepted).  Record
        mode requires exactly one sample carrying ``fields``.

        ``options`` tunes the induction fast path without constructing a
        config: ``search="pruned"`` (stochastic beam instead of the
        exhaustive DP), ``beam_width``/``prune_trials``/``prune_seed``,
        ``fold_workers`` (pooled parallel folds), and ``diversity``
        (fragile-feature-penalized ensemble selection).  Unknown keys
        raise :class:`FacadeError`.
        """
        if mode not in ("node", "record", "ensemble"):
            raise FacadeError(f"unknown induction mode {mode!r}")
        site_key = self._qualify(site_key)
        config = config or InductionConfig(k=k)
        if options:
            try:
                config = config_with_options(config, dict(options))
            except (TypeError, ValueError) as exc:
                raise FacadeError(str(exc)) from exc
        facade_samples = coerce_samples(samples)
        meta: dict = {"mode": mode}
        try:
            if mode == "record":
                if len(facade_samples) != 1:
                    raise FacadeError(
                        "record mode induces from exactly one annotated page"
                    )
                (sample,) = facade_samples
                examples = sample.as_record_examples()
                inducer = RelativeWrapperInducer(k=config.k, config=config)
                result, field_queries = inducer.induce_ranked(sample.doc, examples)
                query_samples = [QuerySample(sample.doc, sample.targets)]
                meta["fields"] = {
                    name: str(query) for name, query in field_queries.items()
                }
            else:
                query_samples = [s.as_query_sample() for s in facade_samples]
                result = WrapperInducer(k=config.k, config=config).induce(
                    query_samples
                )
            stats = getattr(result, "stats", None)
            if stats is not None:
                # Deterministic counters only — identical on every
                # backend, so handle/artifact parity is unaffected.
                meta["induction"] = stats.as_payload()
                self._bump_counters(
                    candidates_considered=stats.candidates_considered,
                    pruned_candidates_skipped=stats.candidates_pruned,
                )
            artifact = WrapperArtifact.from_induction(
                result,
                query_samples,
                task_id=site_key,
                site_id=site_key_of(site_key),
                role=role,
                ensemble_size=ensemble_size,
                max_queries=max_queries,
                provenance={**(provenance or {}), FACADE_KEY: meta},
                config=config,
            )
        except FacadeError:
            raise
        except (ArtifactError, ValueError) as exc:
            raise FacadeError(f"{site_key}: {exc}") from exc
        self._put(artifact)
        self._bump_counters(inductions=1)
        return WrapperHandle.from_artifact(artifact)

    # -- serve / monitor ----------------------------------------------------

    def extract(self, site_key: str, page: Page) -> ExtractionResult:
        """Serve one page: values + paths + the drift signals it showed."""
        artifact = self.artifact(site_key)
        doc = _as_doc(page)
        records = extract_document(
            doc, extraction_wrappers(artifact), plans=artifact.extraction_plans()
        )
        rows: list[dict] = []
        if facade_mode(artifact) == "record":
            rows = record_rows(artifact, doc)
        return result_from_records(artifact, records, self.drift, rows)

    def extract_many(
        self,
        items: Sequence[tuple[str, Page]],
        *,
        concurrency: int = 1,
        return_errors: bool = False,
        wire: str = "pipeline",
    ) -> list:
        """Serve a batch of ``(site_key, page)`` pairs in item order.

        Each distinct HTML string is parsed once for the whole batch
        (co-served wrappers on one rendered page amortize the parse,
        as the serving layer does).  With ``return_errors`` a failed
        item yields its exception in place; otherwise the first failure
        raises after the batch drains.  The remote and router clients
        expose the same method with the same semantics, fanned out over
        connections and hosts; ``concurrency`` is accepted for drop-in
        interchangeability with them (local extraction is synchronous —
        in-process work is CPU-bound, so threads would add nothing);
        ``wire`` likewise names the networked backends' transport modes
        (``"pipeline"``/``"bulk"``/``"stream"``) and changes nothing
        in process beyond being validated.
        """
        if wire not in ("pipeline", "bulk", "stream"):
            raise FacadeError(
                f"wire must be 'pipeline', 'bulk', or 'stream' (got {wire!r})"
            )
        del concurrency  # tuning knob of the networked backends
        results: list = [None] * len(items)
        docs: dict[str, Document] = {}
        for index, (site_key, page) in enumerate(items):
            try:
                if isinstance(page, str):
                    doc = docs.get(page)
                    if doc is None:
                        doc = docs[page] = _as_doc(page)
                    page = doc
                results[index] = self.extract(site_key, page)
            except Exception as exc:  # noqa: BLE001 - reported per item
                if not return_errors:
                    raise
                results[index] = exc
        return results

    def check(self, site_key: str, page: Page) -> CheckResult:
        """Drift-check one page without materializing extraction values."""
        artifact = self.artifact(site_key)
        doc = _as_doc(page)
        records = extract_document(
            doc, extraction_wrappers(artifact), plans=artifact.extraction_plans()
        )
        return check_from_records(artifact, records, self.drift)

    # -- repair -------------------------------------------------------------

    def repair(
        self,
        site_key: str,
        page: Page,
        target_paths: Optional[Sequence[str]] = None,
    ) -> WrapperHandle:
        """Re-induce a drifted wrapper from its stored samples plus
        ``page`` and deploy the repaired generation.

        ``target_paths`` (canonical paths on ``page``) is an explicit
        re-annotation; when omitted, the surviving ensemble majority
        labels the page.  Record-mode repairs re-induce the anchor
        wrapper; the stored field queries are carried over.
        """
        artifact = self.artifact(site_key)
        doc = _as_doc(page)
        try:
            targets = (
                [resolve_path(doc, str(path)) for path in target_paths]
                if target_paths
                else None
            )
            repaired = reinduce(artifact, doc, targets=targets)
        except (ArtifactError, ValueError) as exc:
            raise FacadeError(f"{site_key}: {exc}") from exc
        self._put(repaired)
        stats = repaired.provenance.get("induction_stats")
        stats = stats if isinstance(stats, dict) else {}
        self._bump_counters(
            inductions=1,
            repairs=1,
            candidates_considered=int(stats.get("candidates_considered", 0)),
            pruned_candidates_skipped=int(stats.get("candidates_pruned", 0)),
        )
        return WrapperHandle.from_artifact(repaired)


__all__ = ["Page", "WrapperClient", "record_rows"]

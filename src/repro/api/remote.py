""":class:`RemoteWrapperClient` — the facade over a network server.

Speaks the HTTP/1.1 JSON protocol of :mod:`repro.runtime.net` and
exposes *exactly* the :class:`~repro.api.client.WrapperClient` surface,
returning the same typed results — local and remote backends are
interchangeable (the facade parity suite in
``tests/api/test_facade_parity.py`` runs the identical tests against
both).  Built on :mod:`http.client` only; one client owns one
keep-alive connection and transparently reconnects when the server (or
an idle timeout) dropped it.

A connection is not thread-safe — give each thread its own client
(they are cheap: lazy connect, no state beyond the socket).
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Sequence, Union
from urllib.parse import quote

from repro.dom.node import Document
from repro.dom.serialize import to_html
from repro.induction.samples import QuerySample
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    WrapperHandle,
)
from repro.api.sample import Sample, coerce_samples

Page = Union[str, Document]


def _as_html(page: Page) -> str:
    return to_html(page) if isinstance(page, Document) else page


class RemoteWrapperClient:
    """The facade, served by a ``serve --listen`` process elsewhere."""

    def __init__(self, host: str, port: Optional[int] = None, timeout: float = 60.0):
        if port is None:
            host, _, port_text = host.rpartition(":")
            if not host:
                raise FacadeError("pass RemoteWrapperClient('host', port) or 'host:port'")
            port = int(port_text)
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemoteWrapperClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=body, headers=headers)
                sent = True
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                # Reconnect-and-retry only when it cannot double-execute:
                # a send-phase failure (stale keep-alive detected while
                # writing — the server never saw a complete request), or
                # any failure of an idempotent method.  A POST that was
                # fully sent may already be running server-side (induce/
                # repair mutate the registry), so its failure surfaces.
                if attempt or (sent and method not in ("GET", "DELETE")):
                    raise
        try:
            answer = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FacadeError(
                f"server returned non-JSON response (status {response.status}): {exc}"
            ) from exc
        if response.status >= 400:
            message = str(answer.get("error", f"HTTP {response.status}"))
            if answer.get("code") == "unknown_wrapper":
                raise KeyError(message)
            raise FacadeError(message)
        return answer

    @staticmethod
    def _key_path(site_key: str) -> str:
        return "/wrappers/" + quote(site_key, safe="")

    # -- facade surface -----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness + the server's serving-layer counters."""
        return self._request("GET", "/healthz")

    def induce(
        self,
        site_key: str,
        samples: Sequence[Union[Sample, QuerySample]],
        mode: str = "node",
        *,
        k: int = 10,
        ensemble_size: int = 3,
        max_queries: int = 10,
        role: str = "",
    ) -> WrapperHandle:
        payloads = []
        for sample in coerce_samples(samples):
            try:
                payloads.append(sample.to_payload())
            except FacadeError:
                raise
            except ValueError as exc:
                # Same surface as the local client: a bad annotation is a
                # FacadeError, whichever backend sees it first.
                raise FacadeError(f"{site_key}: {exc}") from exc
        answer = self._request(
            "POST",
            "/induce",
            {
                "site_key": site_key,
                "mode": mode,
                "samples": payloads,
                "k": k,
                "ensemble_size": ensemble_size,
                "max_queries": max_queries,
                "role": role,
            },
        )
        return WrapperHandle.from_payload(answer)

    def extract(self, site_key: str, page: Page) -> ExtractionResult:
        answer = self._request(
            "POST", "/extract", {"site_key": site_key, "html": _as_html(page)}
        )
        return ExtractionResult.from_payload(answer)

    def check(self, site_key: str, page: Page) -> CheckResult:
        answer = self._request(
            "POST", "/check", {"site_key": site_key, "html": _as_html(page)}
        )
        return CheckResult.from_payload(answer)

    def repair(
        self,
        site_key: str,
        page: Page,
        target_paths: Optional[Sequence[str]] = None,
    ) -> WrapperHandle:
        payload: dict = {"site_key": site_key, "html": _as_html(page)}
        if target_paths:
            payload["target_paths"] = [str(path) for path in target_paths]
        return WrapperHandle.from_payload(self._request("POST", "/repair", payload))

    def get(self, site_key: str) -> WrapperHandle:
        return WrapperHandle.from_payload(
            self._request("GET", self._key_path(site_key))
        )

    def delete(self, site_key: str) -> None:
        self._request("DELETE", self._key_path(site_key))

    def keys(self) -> list[str]:
        return [handle.site_key for handle in self.handles()]

    def handles(self) -> list[WrapperHandle]:
        answer = self._request("GET", "/wrappers")
        return [
            WrapperHandle.from_payload(item) for item in answer.get("wrappers", ())
        ]

    def __contains__(self, site_key: str) -> bool:
        try:
            self.get(site_key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        return int(self.healthz().get("wrappers", 0))


__all__ = ["RemoteWrapperClient"]

""":class:`RemoteWrapperClient` — the facade over a network server.

Speaks the HTTP/1.1 JSON protocol of :mod:`repro.runtime.net` and
exposes *exactly* the :class:`~repro.api.client.WrapperClient` surface,
returning the same typed results — local and remote backends are
interchangeable (the facade parity suite in
``tests/api/test_facade_parity.py`` runs the identical tests against
both).  Built on :mod:`http.client` only; one client owns one
keep-alive connection and transparently reconnects when the server (or
an idle timeout) dropped it.

Transport failures surface as :class:`RemoteError` carrying the
``host:port`` they happened against — when a
:class:`~repro.cluster.router.RouterClient` fans a batch out over many
hosts, every failure stays attributable to the host that caused it.
The connect and read phases time out independently
(``connect_timeout`` / ``read_timeout``): a dead host is detected in
seconds while a long induction on a live host is still given minutes.

A connection is not thread-safe — give each thread its own client
(they are cheap: lazy connect, no state beyond the socket).
:meth:`extract_many` does exactly that internally, pipelining a batch
through a small pool of per-thread connections to this one host.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Union
from urllib.parse import quote

from repro.cluster.placement import (
    DEFAULT_TENANT,
    qualify_key,
    tenant_of,
    validate_tenant,
)
from repro.dom.node import Document
from repro.dom.serialize import to_html
from repro.induction.samples import QuerySample
from repro.api.results import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    WrapperHandle,
)
from repro.api.sample import Sample, coerce_samples

Page = Union[str, Document]

#: How many times ``extract_many`` requeues a 429'd item before its
#: :class:`RateLimitError` surfaces, and the cap on how long one
#: Retry-After hint may stall a worker thread.
_RATE_LIMIT_RETRIES = 3
_RATE_LIMIT_WAIT_CAP_S = 2.0


def _as_html(page: Page) -> str:
    return to_html(page) if isinstance(page, Document) else page


class RemoteError(FacadeError):
    """A request could not be transported to (or answered by) a host.

    Carries the ``host:port`` it failed against so a router fan-out can
    attribute every per-key failure to the host that caused it, and
    ``attempts`` — how many connect tries were burned before giving up
    (1 means the failure was not retryable: a read-phase error).
    """

    def __init__(self, message: str, host: str = "", port: int = 0, attempts: int = 1):
        super().__init__(message)
        self.host = host
        self.port = int(port)
        self.attempts = int(attempts)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class AuthError(FacadeError):
    """The server refused the request's credentials.

    ``status`` distinguishes a missing/unknown key (401) from a valid
    key addressing a tenant namespace it does not grant (403).
    """

    def __init__(self, message: str, status: int = 401):
        super().__init__(message)
        self.status = int(status)


class RateLimitError(FacadeError):
    """The server throttled this tenant (429).

    ``retry_after_s`` is the server's backoff hint (from the JSON body
    or the ``Retry-After`` header); :meth:`RemoteWrapperClient.extract_many`
    honors it by requeueing the item after the hinted delay.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = max(0.0, float(retry_after_s))


class OwnershipError(FacadeError):
    """The server does not own the shard a site key places into.

    Raised when a request reaches a ``serve --listen --own-shards``
    host for a key outside its shard group — a routing bug (stale
    cluster map, mis-derived ownership), never silently served.
    """

    def __init__(
        self,
        message: str,
        site_key: str = "",
        shard: int = -1,
        owned: Sequence[int] = (),
        n_shards: int = 0,
        epoch: int = -1,
    ):
        super().__init__(message)
        self.site_key = site_key
        self.shard = int(shard)
        self.owned = tuple(int(s) for s in owned)
        self.n_shards = int(n_shards)
        # Topology generation the rejecting server was serving (-1 when
        # the server predates epochs).  A router holding an older epoch
        # treats the 421 as "my map is stale" and refreshes; an equal
        # epoch means plain misrouting — fail over to the replica.
        self.epoch = int(epoch)


def _error_for(status: int, answer: dict, retry_after_header=None) -> Exception:
    """The typed exception for one error body.

    Shared by ``_request`` (whole-response errors) and the bulk wire
    modes (per-item slots carry the same ``error``/``code`` fields), so
    a failed bulk item raises exactly what the single-item verb would.
    """
    message = str(answer.get("error", f"HTTP {status}"))
    code = answer.get("code")
    if code == "unknown_wrapper":
        return KeyError(message)
    if code in ("unauthorized", "forbidden"):
        return AuthError(message, status=status)
    if code == "rate_limited":
        retry_after = answer.get("retry_after")
        if retry_after is None:
            retry_after = retry_after_header or 1.0
        try:
            retry_after = float(retry_after)
        except (TypeError, ValueError):
            retry_after = 1.0
        return RateLimitError(message, retry_after_s=retry_after)
    if code == "shard_not_owned":
        return OwnershipError(
            message,
            site_key=str(answer.get("site_key", "")),
            shard=int(answer.get("shard", -1)),
            owned=answer.get("owned", ()),
            n_shards=int(answer.get("n_shards", 0)),
            epoch=int(answer.get("epoch", -1)),
        )
    return FacadeError(message)


class RemoteWrapperClient:
    """The facade, served by a ``serve --listen`` process elsewhere.

    ``tenant`` scopes every verb into one namespace: site keys are
    qualified (``tenant::key``) before they go on the wire and
    ``keys()``/``handles()`` list only this tenant's wrappers.
    """

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        timeout: float = 60.0,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
        api_key: str = "",
        connect_attempts: int = 3,
        connect_backoff_s: float = 0.05,
    ):
        if port is None:
            host, _, port_text = host.rpartition(":")
            if not host:
                raise FacadeError("pass RemoteWrapperClient('host', port) or 'host:port'")
            port = int(port_text)
        self.host = host
        self.port = int(port)
        # Legacy single ``timeout`` still seeds both phases; the split
        # lets a router detect a dead host fast (connect) without
        # capping slow-but-alive work (read).
        self.connect_timeout = timeout if connect_timeout is None else connect_timeout
        self.read_timeout = timeout if read_timeout is None else read_timeout
        # Connect-phase failures (refused, unreachable, timeout before a
        # byte is exchanged) are retried with jittered exponential
        # backoff — they cannot double-execute anything.  Read-phase
        # failures stay no-retry (see _request).
        if connect_attempts < 1:
            raise FacadeError("connect_attempts must be >= 1")
        if connect_backoff_s < 0:
            raise FacadeError("connect_backoff_s must be >= 0")
        self.connect_attempts = int(connect_attempts)
        self.connect_backoff_s = float(connect_backoff_s)
        try:
            self.tenant = validate_tenant(tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc
        # Sent as ``Authorization: Bearer <key>`` on every request when
        # non-empty; a server launched without ``--auth-keys`` ignores it.
        self.api_key = str(api_key)
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemoteWrapperClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clone(self) -> "RemoteWrapperClient":
        """An independent client to the same host (own connection) —
        what per-thread pipelining hands each worker."""
        return RemoteWrapperClient(
            self.host,
            self.port,
            connect_timeout=self.connect_timeout,
            read_timeout=self.read_timeout,
            tenant=self.tenant,
            api_key=self.api_key,
            connect_attempts=self.connect_attempts,
            connect_backoff_s=self.connect_backoff_s,
        )

    _CONNECT_BACKOFF_CAP_S = 1.0

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is not None:
            return self._conn
        last_exc: Optional[Exception] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                # Full-jitter exponential backoff, capped: spreads the
                # reconnect herd when a host flaps under a fan-out.
                delay = min(
                    self.connect_backoff_s * (2 ** (attempt - 1)),
                    self._CONNECT_BACKOFF_CAP_S,
                )
                time.sleep(delay * random.uniform(0.5, 1.0))
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.connect_timeout
            )
            try:
                conn.connect()
            except (ConnectionError, OSError) as exc:
                conn.close()
                last_exc = exc
                continue
            if conn.sock is not None:
                conn.sock.settimeout(self.read_timeout)
            self._conn = conn
            return conn
        # RemoteError is a FacadeError, so it sails past _request's
        # transport-retry handler — connect retries happen only here.
        raise RemoteError(
            f"connect to {self.host}:{self.port} failed after "
            f"{self.connect_attempts} attempt(s): "
            f"{type(last_exc).__name__}: {last_exc}",
            host=self.host,
            port=self.port,
            attempts=self.connect_attempts,
        ) from last_exc

    def _transport_error(self, method: str, path: str, exc: Exception) -> RemoteError:
        return RemoteError(
            f"{method} {path} against {self.host}:{self.port} failed: "
            f"{type(exc).__name__}: {exc}",
            host=self.host,
            port=self.port,
        )

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        for attempt in (0, 1):
            sent = False
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                sent = True
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self.close()
                # Reconnect-and-retry only when it cannot double-execute:
                # a connect/send-phase failure (stale keep-alive detected
                # while writing — the server never saw a complete
                # request), or any failure of an idempotent method.  A
                # POST that was fully sent may already be running
                # server-side (induce/repair mutate the registry), so its
                # failure surfaces — typed, with the host attached.
                if attempt or (sent and method not in ("GET", "DELETE")):
                    raise self._transport_error(method, path, exc) from exc
        try:
            answer = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FacadeError(
                f"server returned non-JSON response (status {response.status}): {exc}"
            ) from exc
        if response.status >= 400:
            raise _error_for(
                response.status, answer, response.getheader("Retry-After")
            )
        return answer

    def _request_stream(self, path: str, payload: dict) -> list:
        """POST expecting length-prefixed NDJSON frames; the slot list.

        Sends ``Accept: application/x-ndjson`` and parses the streamed
        answer frame by frame (``<decimal length>\\n<slot JSON>\\n`` per
        slot, ``0\\n`` terminator).  A server that answers plain JSON
        anyway (one predating the streaming mode) degrades gracefully:
        its ``results`` list is returned unchanged.  The server closes
        the connection after a stream, so this client's keep-alive
        socket is dropped too.
        """
        body = json.dumps(payload).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Accept": "application/x-ndjson",
        }
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        try:
            conn = self._connection()
            try:
                conn.request("POST", path, body=body, headers=headers)
                response = conn.getresponse()
                if "x-ndjson" not in (response.getheader("Content-Type") or ""):
                    data = response.read()
                    try:
                        answer = json.loads(data.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise FacadeError(
                            "server returned non-JSON response "
                            f"(status {response.status}): {exc}"
                        ) from exc
                    if response.status >= 400:
                        raise _error_for(
                            response.status, answer,
                            response.getheader("Retry-After"),
                        )
                    return list(answer.get("results", ()))
                slots: list = []
                while True:
                    prefix = response.readline()
                    if not prefix:
                        raise FacadeError(
                            "bulk stream ended without its terminator frame"
                        )
                    try:
                        length = int(prefix.strip())
                    except ValueError:
                        raise FacadeError(
                            f"malformed bulk stream frame prefix {prefix!r}"
                        ) from None
                    if length == 0:
                        return slots
                    frame = response.read(length)
                    if len(frame) != length:
                        raise FacadeError("truncated bulk stream frame")
                    try:
                        slots.append(json.loads(frame.decode("utf-8")))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise FacadeError(
                            f"bulk stream frame is not valid JSON: {exc}"
                        ) from exc
            finally:
                self.close()
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            self.close()
            raise self._transport_error("POST", path, exc) from exc

    def _qualify(self, site_key: str) -> str:
        # Same surface as the local client: a cross-tenant or malformed
        # key is a FacadeError, whichever backend sees it first.
        try:
            return qualify_key(site_key, self.tenant)
        except ValueError as exc:
            raise FacadeError(str(exc)) from exc

    def _key_path(self, site_key: str) -> str:
        return "/wrappers/" + quote(self._qualify(site_key), safe="")

    # -- facade surface -----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness + the server's serving-layer counters + (for shard
        owners) the shard group it answers for."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The server's traffic counters (``GET /metrics``): admission
        queue depth, coalescing rate, per-status and per-tenant
        request/error/429 counters.  Unauthenticated, like healthz."""
        return self._request("GET", "/metrics")

    def induce(
        self,
        site_key: str,
        samples: Sequence[Union[Sample, QuerySample]],
        mode: str = "node",
        *,
        k: int = 10,
        ensemble_size: int = 3,
        max_queries: int = 10,
        role: str = "",
        options: Optional[dict] = None,
    ) -> WrapperHandle:
        payloads = []
        for sample in coerce_samples(samples):
            try:
                payloads.append(sample.to_payload())
            except FacadeError:
                raise
            except ValueError as exc:
                # Same surface as the local client: a bad annotation is a
                # FacadeError, whichever backend sees it first.
                raise FacadeError(f"{site_key}: {exc}") from exc
        body = {
            "site_key": self._qualify(site_key),
            "mode": mode,
            "samples": payloads,
            "k": k,
            "ensemble_size": ensemble_size,
            "max_queries": max_queries,
            "role": role,
        }
        if options:
            # Omitted when empty: old servers reject unknown fields on
            # exactly the requests that would need them.
            body["options"] = dict(options)
        answer = self._request("POST", "/induce", body)
        return WrapperHandle.from_payload(answer)

    def extract(self, site_key: str, page: Page) -> ExtractionResult:
        answer = self._request(
            "POST",
            "/extract",
            {"site_key": self._qualify(site_key), "html": _as_html(page)},
        )
        return ExtractionResult.from_payload(answer)

    def extract_many(
        self,
        items: Sequence[tuple[str, Page]],
        *,
        concurrency: int = 4,
        return_errors: bool = False,
        wire: str = "pipeline",
    ) -> list:
        """Batch extraction; results come back in item order.

        ``items`` is a sequence of ``(site_key, page)`` pairs.  With
        ``return_errors`` each failed item yields its exception in
        place (other items keep their results); without it the first
        failure raises after the batch drains.

        ``wire`` picks the transport:

        * ``"pipeline"`` (default) — one ``POST /extract`` per item
          through a small pool of per-thread connections.  Byte-for-byte
          the pre-bulk behavior; the only mode where a 429 is retried
          (the worker honors ``Retry-After``, capped, up to
          :data:`_RATE_LIMIT_RETRIES` times before the
          :class:`RateLimitError` surfaces).
        * ``"bulk"`` — the whole batch in one ``POST /extract_many``
          JSON request; per-item failures come back as slots carrying
          the same ``error``/``code`` fields, raised as the same typed
          exceptions.
        * ``"stream"`` — one ``POST /extract_many`` negotiated to the
          length-prefixed NDJSON answer (``Accept:
          application/x-ndjson``); slots arrive as the server finishes
          each item instead of after the whole batch serializes.
        """
        if concurrency < 1:
            raise FacadeError("extract_many concurrency must be >= 1")
        if wire not in ("pipeline", "bulk", "stream"):
            raise FacadeError(
                f"wire must be 'pipeline', 'bulk', or 'stream' (got {wire!r})"
            )
        if wire != "pipeline":
            return self._extract_many_bulk(
                list(items), return_errors, stream=(wire == "stream")
            )
        results: list = [None] * len(items)
        if not items:
            return results
        local = threading.local()
        clones: list[RemoteWrapperClient] = []
        clones_lock = threading.Lock()

        def one(index: int) -> None:
            client = getattr(local, "client", None)
            if client is None:
                client = self.clone()
                with clones_lock:
                    clones.append(client)
                local.client = client
            site_key, page = items[index]
            for retry in range(_RATE_LIMIT_RETRIES + 1):
                try:
                    results[index] = client.extract(site_key, page)
                    return
                except RateLimitError as exc:
                    if retry == _RATE_LIMIT_RETRIES:
                        results[index] = exc
                        return
                    time.sleep(
                        min(exc.retry_after_s, _RATE_LIMIT_WAIT_CAP_S)
                        or _RATE_LIMIT_WAIT_CAP_S / 10
                    )
                except Exception as exc:  # noqa: BLE001 - reported per item
                    results[index] = exc
                    return

        try:
            with ThreadPoolExecutor(
                max_workers=min(concurrency, len(items))
            ) as pool:
                list(pool.map(one, range(len(items))))
        finally:
            for clone in clones:
                clone.close()
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results

    def _extract_many_bulk(
        self, items: list, return_errors: bool, stream: bool
    ) -> list:
        """The single-request wire modes behind :meth:`extract_many`."""
        results: list = [None] * len(items)
        wire_items: list[dict] = []
        indexes: list[int] = []
        for index, (site_key, page) in enumerate(items):
            try:
                wire_items.append(
                    {"site_key": self._qualify(site_key), "html": _as_html(page)}
                )
                indexes.append(index)
            except FacadeError as exc:
                # Keys this client could never address fail client-side,
                # exactly as the pipelined mode's per-item extract does.
                results[index] = exc
        if wire_items:
            if stream:
                slots = self._request_stream("/extract_many", {"items": wire_items})
            else:
                answer = self._request(
                    "POST", "/extract_many", {"items": wire_items}
                )
                slots = list(answer.get("results", ()))
            if len(slots) != len(wire_items):
                raise FacadeError(
                    f"server answered {len(slots)} slot(s) for "
                    f"{len(wire_items)} item(s)"
                )
            for index, slot in zip(indexes, slots):
                results[index] = self._slot_result(slot)
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results

    @staticmethod
    def _slot_result(slot):
        """One bulk slot → the same value per-item ``extract`` yields."""
        if not isinstance(slot, dict):
            return FacadeError(f"malformed bulk result slot: {slot!r}")
        status = int(slot.get("status", 500))
        if status >= 400:
            return _error_for(status, slot)
        result = slot.get("result")
        if not isinstance(result, dict):
            return FacadeError("bulk result slot is missing its 'result'")
        try:
            return ExtractionResult.from_payload(result)
        except Exception as exc:  # noqa: BLE001 - reported per item
            return exc

    def check(self, site_key: str, page: Page) -> CheckResult:
        answer = self._request(
            "POST",
            "/check",
            {"site_key": self._qualify(site_key), "html": _as_html(page)},
        )
        return CheckResult.from_payload(answer)

    def repair(
        self,
        site_key: str,
        page: Page,
        target_paths: Optional[Sequence[str]] = None,
    ) -> WrapperHandle:
        payload: dict = {"site_key": self._qualify(site_key), "html": _as_html(page)}
        if target_paths:
            payload["target_paths"] = [str(path) for path in target_paths]
        return WrapperHandle.from_payload(self._request("POST", "/repair", payload))

    def deploy(self, artifact) -> WrapperHandle:
        """Deploy a prebuilt :class:`~repro.runtime.artifact.WrapperArtifact`
        to the server (same semantics as the local client's ``deploy``).

        The ``task_id`` is qualified into this client's tenant before it
        goes on the wire, so the wrapper lands in — and is only
        reachable through — this namespace.
        """
        qualified = self._qualify(artifact.task_id)
        if qualified != artifact.task_id:
            artifact = dataclasses.replace(artifact, task_id=qualified)
        answer = self._request("POST", "/deploy", {"artifact": artifact.to_payload()})
        return WrapperHandle.from_payload(answer)

    def get(self, site_key: str) -> WrapperHandle:
        return WrapperHandle.from_payload(
            self._request("GET", self._key_path(site_key))
        )

    def delete(self, site_key: str) -> None:
        self._request("DELETE", self._key_path(site_key))

    def keys(self) -> list[str]:
        return [handle.site_key for handle in self.handles()]

    def handles(self) -> list[WrapperHandle]:
        answer = self._request("GET", "/wrappers")
        handles = [
            WrapperHandle.from_payload(item) for item in answer.get("wrappers", ())
        ]
        if self.tenant:
            handles = [h for h in handles if tenant_of(h.site_key) == self.tenant]
        return handles

    def __contains__(self, site_key: str) -> bool:
        try:
            self._qualify(site_key)
        except FacadeError:
            # Parity with the local client: a key this client could
            # never address (cross-tenant) is simply not contained.
            return False
        try:
            self.get(site_key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        if self.tenant:
            return len(self.keys())
        return int(self.healthz().get("wrappers", 0))


__all__ = [
    "AuthError",
    "OwnershipError",
    "RateLimitError",
    "RemoteError",
    "RemoteWrapperClient",
]

"""Small shared utilities."""

from __future__ import annotations

import random


def seeded_rng(*parts) -> random.Random:
    """A deterministic RNG seeded from arbitrary hashable parts.

    ``random.Random`` only accepts scalar seeds; experiments need
    hierarchical seeds like (site, snapshot, purpose), so we join the
    parts into a string (stable across runs and processes, unlike
    ``hash``).
    """
    return random.Random("\x1f".join(str(part) for part in parts))

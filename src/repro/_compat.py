"""Shared deprecation machinery for the package-level shims.

The facade (PR 4) deprecated a handful of package-level entry points
(``repro.WrapperInducer``, ``repro.induce``,
``repro.runtime.BatchExtractor``).  Each package serves them through a
PEP 562 ``__getattr__`` built on this helper: the name keeps resolving,
but the first access per process emits one :class:`DeprecationWarning`
pointing at the facade replacement (a single warning by design — the
shims exist to be quiet in legacy code paths, not to spam them).

Deprecated names are deliberately *not* listed in ``__all__``: a star
import must stay warning-free (and must not explode under
``-W error::DeprecationWarning``); only actually touching a deprecated
name warns.
"""

from __future__ import annotations

import importlib
import warnings


def deprecated_getattr(
    package: str,
    table: dict[str, tuple[str, str]],
    warned: set[str],
    name: str,
):
    """Resolve ``package.name`` through a deprecation table.

    ``table`` maps a deprecated name to ``(home_module, replacement)``;
    ``warned`` is the package's once-per-process registry (exposed so
    tests can reset it).  Raises :class:`AttributeError` for unknown
    names, as a module ``__getattr__`` must.
    """
    try:
        module_name, replacement = table[name]
    except KeyError:
        raise AttributeError(
            f"module {package!r} has no attribute {name!r}"
        ) from None
    if name not in warned:
        warned.add(name)
        warnings.warn(
            f"{package}.{name} is deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=3,
        )
    return getattr(importlib.import_module(module_name), name)


__all__ = ["deprecated_getattr"]

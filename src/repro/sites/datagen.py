"""Seeded generators for volatile page data.

Every value a real page would fill from a database — names, titles,
prices, dates — comes from here.  Values churn between snapshots
(they are *data*, not template), which is why the induction protocol
marks them volatile and never uses them in predicates.
"""

from __future__ import annotations

import random

_FIRST_NAMES = [
    "Martin", "Sofia", "James", "Ava", "Liam", "Noah", "Emma", "Olivia",
    "Mason", "Lucas", "Mia", "Ethan", "Amelia", "Harper", "Elijah", "Isla",
    "Greta", "Henrik", "Yuki", "Ravi", "Chen", "Fatima", "Diego", "Nadia",
]

_LAST_NAMES = [
    "Scorsese", "Coppola", "Nolan", "Bigelow", "Kurosawa", "Varda",
    "Anderson", "Lee", "Khan", "Svensson", "Okafor", "Petrov", "Garcia",
    "Tanaka", "Moreau", "Rossi", "Jansen", "Novak", "Silva", "Haddad",
]

_NOUNS = [
    "market", "city", "river", "garden", "engine", "harbor", "signal",
    "bridge", "forest", "island", "summit", "canyon", "meadow", "tower",
    "archive", "compass", "lantern", "voyage", "horizon", "quarry",
]

_ADJECTIVES = [
    "silent", "golden", "hidden", "broken", "rapid", "ancient", "electric",
    "crimson", "northern", "savage", "gentle", "twisted", "frozen", "lucky",
]

_CITIES = [
    "San Francisco", "Edinburgh", "Oxford", "Kyoto", "Lisbon", "Nairobi",
    "Valparaiso", "Tallinn", "Montreal", "Auckland", "Sevilla", "Bergen",
]

_ORGS = [
    "Acme Group", "Northwind Labs", "Bluepeak Media", "Helios Partners",
    "Quarry & Sons", "Meridian Trust", "Copperfield Inc", "Atlas Guild",
]

_TEAMS = [
    "Rovers", "Falcons", "Mariners", "Comets", "Wolves", "Pioneers",
    "Harriers", "Titans", "Cyclones", "Rangers",
]

_MONTHS = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def movie_title(rng: random.Random) -> str:
    return f"The {rng.choice(_ADJECTIVES).capitalize()} {rng.choice(_NOUNS).capitalize()}"


def headline(rng: random.Random) -> str:
    return (
        f"{rng.choice(_ORGS)} announces {rng.choice(_ADJECTIVES)} "
        f"{rng.choice(_NOUNS)} in {rng.choice(_CITIES)}"
    )


def sentence(rng: random.Random) -> str:
    return (
        f"A {rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} met a "
        f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} near {rng.choice(_CITIES)}."
    )


def price(rng: random.Random) -> str:
    return f"${rng.randrange(5, 2500)}.{rng.randrange(0, 100):02d}"


def date(rng: random.Random) -> str:
    return f"{rng.choice(_MONTHS)} {rng.randrange(1, 29)}, {rng.randrange(2007, 2017)}"


def city(rng: random.Random) -> str:
    return rng.choice(_CITIES)


def organization(rng: random.Random) -> str:
    return rng.choice(_ORGS)


def team(rng: random.Random) -> str:
    return rng.choice(_TEAMS)


def score_line(rng: random.Random) -> str:
    return f"{rng.choice(_TEAMS)} {rng.randrange(0, 8)} - {rng.randrange(0, 8)} {rng.choice(_TEAMS)}"


def product_name(rng: random.Random) -> str:
    return f"{rng.choice(_ADJECTIVES).capitalize()} {rng.choice(_NOUNS).capitalize()} {rng.randrange(2, 12)}00"


def hotel_name(rng: random.Random) -> str:
    return f"Hotel {rng.choice(_NOUNS).capitalize()} {rng.choice(_CITIES)}"


def percentage(rng: random.Random) -> str:
    return f"{rng.randrange(-5, 6)}.{rng.randrange(0, 100):02d}%"


def word(rng: random.Random) -> str:
    return rng.choice(_NOUNS)


_GENERATORS = {
    "person": person_name,
    "movie": movie_title,
    "headline": headline,
    "sentence": sentence,
    "price": price,
    "date": date,
    "city": city,
    "organization": organization,
    "team": team,
    "score": score_line,
    "product": product_name,
    "hotel": hotel_name,
    "percentage": percentage,
    "word": word,
}


def generate(kind: str, rng: random.Random) -> str:
    """Generate a data value of the given kind."""
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        raise ValueError(f"unknown data kind {kind!r}") from None
    return generator(rng)


def kinds() -> list[str]:
    return sorted(_GENERATORS)

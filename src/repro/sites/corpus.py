"""The evaluation corpus: 50+ sites, 100+ extraction tasks.

Mirrors the paper's setup (Sec. 6.2): over 100 popular pages from more
than 50 sites across 20+ verticals, yielding a single-node task set
(Fig. 3; 53 expressions in the paper) and a multi-node task set
(Fig. 4; 50 expressions, 3–59 targets each).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sites.spec import SiteSpec, TaskSpec
from repro.sites.verticals import VERTICAL_FACTORIES

#: Sites per vertical (13 verticals x 4 = 52 sites).
DEFAULT_VARIANTS_PER_VERTICAL = 4


@dataclass(frozen=True)
class CorpusTask:
    """A task paired with its site (the unit of the robustness studies)."""

    spec: SiteSpec
    task: TaskSpec

    @property
    def task_id(self) -> str:
        return self.task.task_id


def build_corpus(
    variants_per_vertical: int = DEFAULT_VARIANTS_PER_VERTICAL, seed: int = 0
) -> list[SiteSpec]:
    """All site specs, deterministically ordered."""
    sites: list[SiteSpec] = []
    for vertical in sorted(VERTICAL_FACTORIES):
        factory = VERTICAL_FACTORIES[vertical]
        for variant in range(variants_per_vertical):
            sites.append(factory(variant, seed=seed))
    return sites


def single_node_tasks(
    limit: int | None = None,
    variants_per_vertical: int = DEFAULT_VARIANTS_PER_VERTICAL,
    seed: int = 0,
) -> list[CorpusTask]:
    """The single-node dataset (Fig. 3): one target per page."""
    tasks = [
        CorpusTask(spec, task)
        for spec in build_corpus(variants_per_vertical, seed)
        for task in spec.single_tasks()
    ]
    return tasks[:limit] if limit is not None else tasks


def multi_node_tasks(
    limit: int | None = None,
    variants_per_vertical: int = DEFAULT_VARIANTS_PER_VERTICAL,
    seed: int = 0,
) -> list[CorpusTask]:
    """The multi-node dataset (Fig. 4): 3–59 targets per page."""
    tasks = [
        CorpusTask(spec, task)
        for spec in build_corpus(variants_per_vertical, seed)
        for task in spec.multi_tasks()
    ]
    return tasks[:limit] if limit is not None else tasks

"""Synthetic site corpus: 50+ evolving sites across 12 verticals.

Each :class:`repro.sites.spec.SiteSpec` bundles a template builder, a
change profile, and extraction tasks (single- and multi-target) with an
expert-written ("human") wrapper — mirroring the paper's corpus of 100+
popular pages from 50+ sites over 20+ verticals.
"""

from repro.sites.spec import SiteSpec, TaskSpec
from repro.sites.corpus import (
    build_corpus,
    multi_node_tasks,
    single_node_tasks,
)

__all__ = [
    "SiteSpec",
    "TaskSpec",
    "build_corpus",
    "multi_node_tasks",
    "single_node_tasks",
]

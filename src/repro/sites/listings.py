"""Product-listing pages with entity-typed slots (Sec. 6.4's dataset).

The real-life-noise experiment samples 10 pages from product-listing
websites, each containing at least one list of entities the NER
supports (date, person, location, organization, money), with list sizes
between 8 and 77.  These builders generate such pages: a *main* entity
list (the intended extraction target), on some pages a *sidebar* list
of the same entity type (the structural-noise trap the paper hits on
waterstones.com), plus unrelated text the NER can misfire on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dom.builder import E, T, document
from repro.dom.node import Document, ElementNode
from repro.sites import datagen
from repro.util import seeded_rng

#: Entity types the simulated NER supports (mirrors the Stanford NER's).
ENTITY_TYPES = ("date", "person", "location", "organization", "money")

_ENTITY_DATA_KIND = {
    "date": "date",
    "person": "person",
    "location": "city",
    "organization": "organization",
    "money": "price",
}


@dataclass(frozen=True)
class ListingPageSpec:
    """Parameters of one listing page."""

    page_id: str
    entity_type: str
    list_size: int
    with_sidebar: bool
    seed: int


def _entity_span(
    kind: str, entity_type: str, region: str, rng: random.Random
) -> ElementNode:
    """A DOM node hosting one entity mention."""
    node = E("span", datagen.generate(kind, rng), class_=f"val-{entity_type}")
    node.meta["entity_type"] = entity_type
    node.meta["region"] = region
    for child in node.children:
        child.meta["volatile"] = True
    return node


def build_listing_page(spec: ListingPageSpec) -> Document:
    """Render one product-listing page."""
    rng = seeded_rng(spec.page_id, spec.seed)
    kind = _ENTITY_DATA_KIND[spec.entity_type]

    items = []
    for i in range(spec.list_size):
        entity = _entity_span(kind, spec.entity_type, "main", rng)
        entity.meta["role"] = "entities"
        items.append(
            E(
                "li",
                E("a", datagen.generate("product", rng), href=f"/item/{i}"),
                E("div", T(f"{spec.entity_type.capitalize()}: "), entity, class_="meta-line"),
                E("span", datagen.generate("price", rng), class_="price"),
                class_="result-item",
            )
        )

    sidebar = None
    if spec.with_sidebar:
        side_items = [
            E("li", _entity_span(kind, spec.entity_type, "sidebar", rng))
            for _ in range(max(3, spec.list_size // 4))
        ]
        sidebar = E(
            "div",
            E("h4", f"Refine by {spec.entity_type}"),
            E("ul", *side_items),
            class_="refinements",
        )

    chatter = [
        E("p", datagen.generate("sentence", rng), class_="blurb")
        for _ in range(rng.randrange(2, 6))
    ]

    body = E(
        "body",
        E("div", E("input", type="text", name="search"), class_="searchbar"),
        E(
            "div",
            E("div", E("h1", "Search results"), E("ul", *items, class_="results"), class_="main-col"),
            sidebar,
            class_="columns",
        ),
        *chatter,
        E("div", "footer", class_="footer"),
    )
    return document(E("html", E("head", E("title", "Listing")), body), url=f"http://{spec.page_id}.example.com/")


#: The paper's list-size range: "between 8 and 77 elements".
DEFAULT_LIST_SIZES = (8, 12, 15, 20, 24, 31, 40, 52, 64, 77)


def listing_pages(
    n_pages: int = 10,
    seed: int = 0,
    sizes: tuple[int, ...] = DEFAULT_LIST_SIZES,
) -> list[tuple[ListingPageSpec, Document]]:
    """The Sec. 6.4 dataset: ``n_pages`` listing pages, sizes 8–77,
    cycling through the five entity types, sidebar traps on some pages.
    ``sizes`` can be narrowed for fast test runs."""
    rng = seeded_rng("listings", seed)
    pages = []
    for i in range(n_pages):
        entity_type = ENTITY_TYPES[i % len(ENTITY_TYPES)]
        spec = ListingPageSpec(
            page_id=f"listing-{i}",
            entity_type=entity_type,
            list_size=rng.choice(list(sizes)),
            with_sidebar=(i % 3 == 1),
            seed=seed,
        )
        pages.append((spec, build_listing_page(spec)))
    return pages

"""Vertical template builders: the core 13 site families (of 21 total;
see :mod:`repro.sites.verticals_extra` for the rest).

Each ``make_<vertical>_site(variant, seed)`` factory returns a
:class:`SiteSpec` whose builder renders an evolving page, marks target
nodes with ``meta['role']`` (ground truth, invisible to queries), and
marks data text volatile.  Variants differ in attribute naming, layout
knobs, and change-rate scaling, so a corpus of many sites per vertical
shows realistic diversity.

The verticals deliberately cover the paper's task variety: data
attributes (director names, prices, scores), form elements (search
inputs), menu entries, next links, and dispersed lists needing sibling
anchors (Sec. 6.2: "form elements, menu entries, next links, and data
attributes").
"""

from __future__ import annotations

import random

from repro.dom.builder import E, T, document
from repro.dom.node import Document, ElementNode
from repro.evolution.changes import ChangeModel
from repro.evolution.state import Knob, RenderContext, SiteProfile
from repro.sites.spec import SiteSpec, TaskSpec
from repro.util import seeded_rng

# --------------------------------------------------------------------------
# shared pieces
# --------------------------------------------------------------------------


def _mark(node: ElementNode, role: str) -> ElementNode:
    node.meta["role"] = role
    return node


_NAV_EXTRAS = ["More", "Video", "Live", "Local", "Apps", "Shop"]


def _nav(ctx: RenderContext, items: list[str], cls: str) -> ElementNode:
    """Top navigation; menus gain/lose entries over time when the site
    registers a ``nav`` count knob (0 = no extras)."""
    labels = list(items)
    extras = ctx.state.counts.get("nav", 0)
    labels.extend(_NAV_EXTRAS[:extras])
    return E(
        "div",
        E("ul", *[E("li", E("a", label, href=f"/{label.lower()}")) for label in labels]),
        class_=cls,
    )


def _promos(ctx: RenderContext, knob: str, cls: str) -> list[ElementNode]:
    """Repeated promo/banner blocks before the content — the main source
    of canonical-path positional churn."""
    blocks = []
    for i in range(ctx.count(knob)):
        blocks.append(
            E(
                "div",
                E("p", ctx.gen("sentence")),
                class_=cls,
            )
        )
    return blocks


def _footer(ctx: RenderContext) -> ElementNode:
    return E(
        "div",
        E("p", "Terms of use"),
        E("p", "Privacy"),
        class_="footer",
    )


def _wrap_redesign(ctx: RenderContext, node: ElementNode, levels: int = 1) -> ElementNode:
    """Each redesign generation nests the content one level deeper
    (layout frameworks love wrapper divs)."""
    for generation in range(min(ctx.redesign, levels + 2)):
        node = E("div", node, class_=f"layout-g{generation + 1}")
    return node


def _variant_rng(vertical: str, variant: int, seed: int) -> random.Random:
    return seeded_rng(vertical, variant, seed)


def _site_change_model(rng: random.Random) -> ChangeModel:
    """Per-site volatility: most sites are calm, some are churny."""
    return ChangeModel().scaled(rng.uniform(0.5, 2.2))


# --------------------------------------------------------------------------
# movies (IMDB-like)
# --------------------------------------------------------------------------


def make_movies_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("movies", variant, seed)
    site_id = f"movies-{variant}"
    content_cls = rng.choice(["article", "pagecontent", "title-overview", "main-wrap"])
    block_cls = rng.choice(["txt-block", "credit-block", "info-row"])
    cast_cls = rng.choice(["cast_list", "castTable", "credits"])
    search_id = rng.choice(["suggestion-search", "nav-search", "q-input"])

    profile = SiteProfile(
        class_tokens={
            "content": content_cls,
            "block": block_cls,
            "cast": cast_cls,
            "castname": "name",
            "promo": "promo-banner",
            "name": "itemprop",
        },
        id_tokens={"main": "main", "search": search_id},
        counts={"top_promos": Knob(2, 0, 5), "nav": Knob(1, 0, 4)},
        lists={"cast": Knob(8, 4, 14), "writers": Knob(2, 1, 4)},
        flags={"sidebar": True, "quote": True},
        texts={"title": "movie", "director": "person", "quote": "sentence"},
        removable_roles=("quote",),
    )

    def build(ctx: RenderContext) -> Document:
        # A movie's own data is stable across snapshots (the director and
        # cast of one film do not churn like headlines do); only the page
        # around it evolves.  The values are still volatile for induction.
        director = _mark(
            E("span", ctx.stable("person", "director"), itemprop="name", class_=ctx.cls("name")),
            "director",
        )
        cast_rows = []
        for i in range(ctx.list_size("cast")):
            cast_rows.append(
                E(
                    "tr",
                    E("td", E("img", src=f"/photo/{i}.jpg")),
                    _mark(
                        E("td", E("a", ctx.stable("person", "cast", i)), class_=ctx.cls("castname")),
                        "cast",
                    ),
                    E("td", ctx.stable("movie", "role", i), class_="character"),
                    class_="odd" if i % 2 else "even",
                )
            )
        writers = [
            E("span", ctx.stable("person", "writer", j), itemprop="name", class_=ctx.cls("name"))
            for j in range(ctx.list_size("writers"))
        ]
        content = E(
            "div",
            E("h1", ctx.stable("movie", "title"), itemprop="name"),
            E(
                "div",
                E("h4", "Director:", class_="inline"),
                E("a", director, href="/name/nm0000217"),
                class_=ctx.cls("block"),
            ),
            E(
                "div",
                E("h4", "Writers:", class_="inline"),
                *writers,
                class_=ctx.cls("block"),
            ),
            (
                E("div", E("p", ctx.data("quote"), class_="quote-text"), class_="quote-bar")
                if ctx.flag("quote") and not ctx.removed("quote")
                else None
            ),
            E("table", *cast_rows, class_=ctx.cls("cast")),
            class_=ctx.cls("content"),
            id=ctx.ident("main"),
        )
        content = _wrap_redesign(ctx, content)
        body = E(
            "body",
            E(
                "div",
                _nav(ctx, ["Movies", "TV", "News"], "navbar"),
                _mark(
                    E("input", type="text", name="q", id=ctx.ident("search")),
                    "search",
                ),
                class_="header",
            ),
            *_promos(ctx, "top_promos", ctx.cls("promo")),
            content,
            (E("div", E("p", ctx.gen("sentence")), class_="sidebar") if ctx.flag("sidebar") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", ctx.text("title"))), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="movies",
        url=f"http://www.{site_id}.example.com/title/tt{variant:07d}/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/director",
            site_id=site_id,
            role="director",
            multi=False,
            human_wrapper=(
                'descendant::div[starts-with(.,"Director:")]'
                '/descendant::span[@itemprop="name"]'
            ),
            description="director name on a movie page",
        ),
        TaskSpec(
            task_id=f"{site_id}/cast",
            site_id=site_id,
            role="cast",
            multi=True,
            human_wrapper=(
                f'descendant::table[@class="{cast_cls}"]'
                '/descendant::td[@class="name"]'
            ),
            description="cast member names",
        ),
        TaskSpec(
            task_id=f"{site_id}/search",
            site_id=site_id,
            role="search",
            multi=False,
            human_wrapper='descendant::input[@name="q"]',
            description="the site search field",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# news (foxnews/cnn-like)
# --------------------------------------------------------------------------


def make_news_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("news", variant, seed)
    site_id = f"news-{variant}"
    console_id = rng.choice(["console", "big-top", "t1-zone"])
    headline_cls = rng.choice(["hp-content-block", "headline20", "cnnT1Txt"])
    latest_cls = rng.choice(["latest-news", "river", "newsfeed"])

    profile = SiteProfile(
        class_tokens={
            "headline": headline_cls,
            "latest": latest_cls,
            "promo": "ad-slot",
            "story": "story-block",
        },
        id_tokens={"console": console_id, "nav": "top-nav"},
        counts={"top_promos": Knob(1, 0, 4), "mid_promos": Knob(1, 0, 3), "nav": Knob(2, 0, 5)},
        lists={"latest": Knob(7, 3, 12), "secondary": Knob(4, 2, 8)},
        flags={"breaking": False, "video_box": True},
        texts={"headline": "headline", "dek": "sentence"},
        removable_roles=("video_box",),
    )

    def build(ctx: RenderContext) -> Document:
        latest_items = [
            _mark(E("li", E("a", ctx.gen("headline"), href=f"/story/{i}")), "latest")
            for i in range(ctx.list_size("latest"))
        ]
        headline = _mark(E("h1", ctx.data("headline")), "headline")
        console = E(
            "div",
            (E("div", "BREAKING", class_="breaking") if ctx.flag("breaking") else None),
            E("div", headline, E("p", ctx.data("dek")), class_=ctx.cls("headline")),
            *_promos(ctx, "mid_promos", ctx.cls("promo")),
            (
                _mark(E("div", E("p", "Top videos"), class_="video-box"), "video_box")
                if ctx.flag("video_box") and not ctx.removed("video_box")
                else None
            ),
            id=ctx.ident("console"),
        )
        secondary = [
            E("div", E("h3", ctx.gen("headline")), E("p", ctx.gen("sentence")), class_=ctx.cls("story"))
            for _ in range(ctx.list_size("secondary"))
        ]
        latest = E(
            "div",
            E("h3", "Latest News"),
            E("ul", *latest_items),
            class_=ctx.cls("latest"),
        )
        content = _wrap_redesign(ctx, E("div", console, *secondary, latest, class_="page"))
        body = E(
            "body",
            _nav(ctx, ["US", "World", "Politics", "Tech"], "navbar"),
            *_promos(ctx, "top_promos", ctx.cls("promo")),
            content,
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "News")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="news",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/headline",
            site_id=site_id,
            role="headline",
            multi=False,
            human_wrapper=f'descendant::div[@id="{console_id}"]/descendant::h1',
            description="main headline",
        ),
        TaskSpec(
            task_id=f"{site_id}/latest",
            site_id=site_id,
            role="latest",
            multi=True,
            human_wrapper='descendant::div[starts-with(.,"Latest News")]/descendant::li',
            description="latest-news items",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# sports (espn-like)
# --------------------------------------------------------------------------


def make_sports_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("sports", variant, seed)
    site_id = f"sports-{variant}"
    quote_cls = rng.choice(["f-quote", "pull-quote", "hero-quote"])
    channel_id = rng.choice(["channel0", "scoreboard", "main-col"])

    profile = SiteProfile(
        class_tokens={"quote": quote_cls, "scores": "score-table", "score_hdr": "head", "promo": "sponsor"},
        id_tokens={"channel": channel_id},
        counts={"top_promos": Knob(1, 0, 3), "nav": Knob(1, 0, 4)},
        lists={"scores": Knob(6, 3, 10), "headlines": Knob(5, 3, 9)},
        flags={"ticker": True},
        texts={"quote": "sentence"},
        removable_roles=("quote",),
    )

    def build(ctx: RenderContext) -> Document:
        score_rows = [E("tr", E("td", "Scores"), class_=ctx.cls("score_hdr"))]
        for i in range(ctx.list_size("scores")):
            score_rows.append(_mark(E("tr", E("td", ctx.gen("score"))), "scores"))
        quote = (
            _mark(E("h3", ctx.data("quote"), class_=ctx.cls("quote")), "quote")
            if not ctx.removed("quote")
            else None
        )
        channel = E(
            "div",
            quote,
            E("ul", *[E("li", E("a", ctx.gen("headline"))) for _ in range(ctx.list_size("headlines"))]),
            E("table", *score_rows, class_=ctx.cls("scores")),
            id=ctx.ident("channel"),
        )
        body = E(
            "body",
            _nav(ctx, ["NFL", "NBA", "Soccer"], "navbar"),
            (E("div", ctx.gen("score"), class_="ticker") if ctx.flag("ticker") else None),
            *_promos(ctx, "top_promos", ctx.cls("promo")),
            _wrap_redesign(ctx, channel),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Sports")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="sports",
        url=f"http://{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/quote",
            site_id=site_id,
            role="quote",
            multi=False,
            human_wrapper=f'descendant::div[@id="{channel_id}"]/child::h3',
            description="the top quote (paper Table 1, S2)",
        ),
        TaskSpec(
            task_id=f"{site_id}/scores",
            site_id=site_id,
            role="scores",
            multi=True,
            human_wrapper='descendant::tr[contains(.,"Scores")]/following-sibling::tr',
            description="score rows after the header row",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# finance (wellsfargo-like)
# --------------------------------------------------------------------------


def make_finance_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("finance", variant, seed)
    site_id = f"finance-{variant}"
    left_cls = rng.choice(["contentSmLeft", "col-left", "rail-a"])
    adv_cls = rng.choice(["adv", "promo-img", "feature-img"])

    profile = SiteProfile(
        class_tokens={"left": left_cls, "adv": adv_cls, "rates": "rate-grid", "rate_hdr": "hdr"},
        id_tokens={"login": "signon", "main": "page-main"},
        counts={"notices": Knob(1, 0, 4)},
        lists={"rates": Knob(5, 3, 9), "products": Knob(4, 2, 7)},
        flags={"alert": False},
        texts={"rate_headline": "headline"},
        removable_roles=("adv",),
    )

    def build(ctx: RenderContext) -> Document:
        adv = (
            _mark(
                E("img", src="/img/offer.png", class_=ctx.cls("adv"), alt="offer"),
                "adv",
            )
            if not ctx.removed("adv")
            else None
        )
        rate_rows = [E("tr", E("th", "Product"), E("th", "Rate"), class_=ctx.cls("rate_hdr"))]
        for i in range(ctx.list_size("rates")):
            rate_rows.append(
                _mark(
                    E("tr", E("td", ctx.gen("product")), E("td", ctx.gen("percentage"))),
                    "rates",
                )
            )
        left = E(
            "div",
            E("h2", "Today's offers"),
            adv,
            E("p", ctx.gen("sentence")),
            class_=ctx.cls("left"),
        )
        main = E(
            "div",
            left,
            E(
                "div",
                E("h2", ctx.data("rate_headline")),
                E("table", *rate_rows, class_=ctx.cls("rates")),
                class_="contentMain",
            ),
            id=ctx.ident("main"),
        )
        body = E(
            "body",
            _nav(ctx, ["Banking", "Loans", "Investing"], "navbar"),
            E("div", E("input", type="text", name="userid", id=ctx.ident("login")), class_="signon-box"),
            (E("div", "Service alert", class_="alert") if ctx.flag("alert") else None),
            *_promos(ctx, "notices", "notice"),
            _wrap_redesign(ctx, main),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Bank")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="finance",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/adv",
            site_id=site_id,
            role="adv",
            multi=False,
            human_wrapper=f'descendant::img[ancestor::div[1][@class="{left_cls}"]]',
            description="advert image (paper Table 1, S3 — hard case)",
        ),
        TaskSpec(
            task_id=f"{site_id}/rates",
            site_id=site_id,
            role="rates",
            multi=True,
            human_wrapper='descendant::tr[contains(.,"Product")]/following-sibling::tr',
            description="rate table rows",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# travel (tripadvisor-like)
# --------------------------------------------------------------------------


def make_travel_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("travel", variant, seed)
    site_id = f"travel-{variant}"
    hotel_cls = rng.choice(["heading_name", "hotel-title", "prop-name"])
    review_cls = rng.choice(["review-container", "review-card"])

    profile = SiteProfile(
        class_tokens={"hotel": hotel_cls, "review": review_cls, "amenity": "amenity-list"},
        id_tokens={"overview": "overview", "rating": "rating-box"},
        counts={"banners": Knob(1, 0, 3)},
        lists={"reviews": Knob(5, 2, 9), "amenities": Knob(6, 3, 10)},
        flags={"map": True},
        texts={"hotel": "hotel", "location": "city", "price": "price"},
        removable_roles=("price",),
    )

    def build(ctx: RenderContext) -> Document:
        reviews = [
            _mark(
                E(
                    "div",
                    E("span", ctx.gen("person"), class_="reviewer"),
                    E("p", ctx.gen("sentence")),
                    class_=ctx.cls("review"),
                ),
                "reviews",
            )
            for _ in range(ctx.list_size("reviews"))
        ]
        price = (
            _mark(E("span", ctx.data("price"), class_="price"), "price")
            if not ctx.removed("price")
            else None
        )
        overview = E(
            "div",
            _mark(E("h1", ctx.data("hotel"), class_=ctx.cls("hotel"), itemprop="name"), "hotel"),
            E("span", "Country: ", ctx.data("location"), class_="locality"),
            E("div", T("Price from: "), price, class_="price-box"),
            E(
                "ul",
                *[
                    E("li", ctx.gen("word"), class_="amenity")
                    for _ in range(ctx.list_size("amenities"))
                ],
                class_=ctx.cls("amenity"),
            ),
            id=ctx.ident("overview"),
        )
        body = E(
            "body",
            _nav(ctx, ["Hotels", "Flights", "Restaurants"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            _wrap_redesign(ctx, E("div", overview, *reviews, class_="page")),
            (E("div", "Map", class_="map-box") if ctx.flag("map") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", ctx.text("hotel"))), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="travel",
        url=f"http://www.{site_id}.example.com/hotel/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/hotel",
            site_id=site_id,
            role="hotel",
            multi=False,
            human_wrapper=f'descendant::h1[@class="{hotel_cls}"]',
            description="hotel name",
        ),
        TaskSpec(
            task_id=f"{site_id}/reviews",
            site_id=site_id,
            role="reviews",
            multi=True,
            human_wrapper=f'descendant::div[@class="{review_cls}"]',
            description="review cards",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# shopping (amazon-like)
# --------------------------------------------------------------------------


def make_shopping_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("shopping", variant, seed)
    site_id = f"shopping-{variant}"
    result_cls = rng.choice(["s-result-item", "product-tile", "item-cell"])
    price_cls = rng.choice(["price", "a-price", "sale-price"])

    profile = SiteProfile(
        class_tokens={"result": result_cls, "price": price_cls, "grid": "result-grid"},
        id_tokens={"results": "search-results", "cart": "nav-cart"},
        counts={"sponsored": Knob(1, 0, 4)},
        lists={"results": Knob(8, 4, 16)},
        flags={"filters": True},
        texts={"featured": "product", "featured_price": "price"},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        items = []
        for i in range(ctx.list_size("results")):
            items.append(
                E(
                    "div",
                    _mark(E("h2", E("a", ctx.gen("product"), href=f"/dp/{i}")), "titles"),
                    E("span", ctx.gen("price"), class_=ctx.cls("price")),
                    class_=ctx.cls("result"),
                )
            )
        featured = E(
            "div",
            E("h2", ctx.data("featured")),
            _mark(E("span", ctx.data("featured_price"), class_=ctx.cls("price"), itemprop="price"), "price"),
            class_="featured-deal",
        )
        body = E(
            "body",
            E(
                "div",
                E("input", type="text", name="field-keywords"),
                E("a", "Cart", id=ctx.ident("cart")),
                class_="nav-belt",
            ),
            *_promos(ctx, "sponsored", "sponsored"),
            featured,
            (E("div", "Filters", class_="refinements") if ctx.flag("filters") else None),
            _wrap_redesign(ctx, E("div", *items, id=ctx.ident("results"), class_=ctx.cls("grid"))),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Shop")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="shopping",
        url=f"http://www.{site_id}.example.com/s?k=widgets",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/price",
            site_id=site_id,
            role="price",
            multi=False,
            human_wrapper='descendant::span[@itemprop="price"]',
            description="featured-deal price",
        ),
        TaskSpec(
            task_id=f"{site_id}/titles",
            site_id=site_id,
            role="titles",
            multi=True,
            human_wrapper=f'descendant::div[@id="search-results"]/descendant::h2',
            description="result titles",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# tech reviews (mobiletechreview-like)
# --------------------------------------------------------------------------


def make_techreview_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("techreview", variant, seed)
    site_id = f"techreview-{variant}"
    table_cls = rng.choice(["news-table", "frontgrid", "layout-tbl"])

    profile = SiteProfile(
        class_tokens={"table": table_cls, "review": "review-body"},
        id_tokens={"lead": "lead-review"},
        counts={"banners": Knob(1, 0, 3)},
        lists={"news": Knob(7, 3, 12)},
        flags={"poll": False},
        texts={"lead_title": "product"},
        removable_roles=("news",),
    )

    def build(ctx: RenderContext) -> Document:
        rows = [E("tr", E("td", E("b", "News and Latest Reviews")), class_="head")]
        if not ctx.removed("news"):
            for i in range(ctx.list_size("news")):
                rows.append(
                    _mark(E("tr", E("td", E("a", ctx.gen("product"), href=f"/r/{i}"))), "news")
                )
        lead = E(
            "div",
            _mark(E("h2", ctx.data("lead_title")), "lead"),
            E("p", ctx.gen("sentence")),
            id=ctx.ident("lead"),
            class_=ctx.cls("review"),
        )
        body = E(
            "body",
            _nav(ctx, ["Phones", "Tablets", "Laptops"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            _wrap_redesign(ctx, E("div", lead, E("table", *rows, class_=ctx.cls("table")), class_="page")),
            (E("div", "Poll", class_="poll") if ctx.flag("poll") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Reviews")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="techreview",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/lead",
            site_id=site_id,
            role="lead",
            multi=False,
            human_wrapper='descendant::div[@id="lead-review"]/descendant::h2',
            description="lead review title",
        ),
        TaskSpec(
            task_id=f"{site_id}/news",
            site_id=site_id,
            role="news",
            multi=True,
            human_wrapper=(
                'descendant::tr[contains(.,"News and Latest Reviews")]'
                "/following-sibling::tr"
            ),
            description="news rows (paper Table 2, S2 verbatim)",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# reference portal (about.com-like)
# --------------------------------------------------------------------------


def make_reference_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("reference", variant, seed)
    site_id = f"reference-{variant}"
    channel_cls = rng.choice(["hpCH", "topic-link", "cat-link"])

    profile = SiteProfile(
        class_tokens={"channel": channel_cls, "panel": "widePanel"},
        id_tokens={"channels": "channels-box"},
        counts={"banners": Knob(1, 0, 3)},
        lists={"channels": Knob(9, 4, 16), "articles": Knob(4, 2, 8)},
        flags={"newsletter": True},
        texts={"lead_article": "headline"},
        removable_roles=("channels",),
    )

    def build(ctx: RenderContext) -> Document:
        channels = [
            _mark(
                E("a", ctx.gen("word"), class_=ctx.cls("channel"), href=f"/topic/{i}"),
                "channels",
            )
            for i in range(ctx.list_size("channels"))
        ]
        channel_box = (
            E(
                "div",
                E("h3", "Channels"),
                *channels,
                id=ctx.ident("channels"),
                class_=ctx.cls("panel"),
            )
            if not ctx.removed("channels")
            else None
        )
        articles = [
            E("div", E("h3", E("a", ctx.gen("headline"))), class_="article-teaser")
            for _ in range(ctx.list_size("articles"))
        ]
        lead = _mark(E("h1", ctx.data("lead_article")), "lead")
        body = E(
            "body",
            _nav(ctx, ["Topics", "Experts"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            _wrap_redesign(ctx, E("div", lead, channel_box, *articles, class_="page")),
            (E("div", "Newsletter", class_="newsletter") if ctx.flag("newsletter") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Reference")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="reference",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/lead",
            site_id=site_id,
            role="lead",
            multi=False,
            human_wrapper="descendant::h1",
            description="lead article heading",
        ),
        TaskSpec(
            task_id=f"{site_id}/channels",
            site_id=site_id,
            role="channels",
            multi=True,
            human_wrapper=(
                'descendant::div[contains(.,"Channels")]'
                f'/descendant::a[@class="{channel_cls}"]'
            ),
            description="channel links (paper Table 2, S1)",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# jobs (nih-like)
# --------------------------------------------------------------------------


def make_jobs_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("jobs", variant, seed)
    site_id = f"jobs-{variant}"
    listing_cls = rng.choice(["job-row", "vacancy", "posting"])

    profile = SiteProfile(
        class_tokens={"listing": listing_cls, "badge": "jobs-badge"},
        id_tokens={"jobs_link": "jobs"},
        counts={"notices": Knob(1, 0, 3), "nav": Knob(1, 0, 3)},
        lists={"jobs": Knob(6, 3, 11)},
        flags={"alert": False},
        texts={"agency": "organization"},
        removable_roles=("jobs_link",),
    )

    def build(ctx: RenderContext) -> Document:
        jobs_link = (
            _mark(
                E(
                    "a",
                    E("img", id=ctx.ident("jobs_link"), src="/img/jobs.gif", alt="Jobs"),
                    href="http://www.jobs.example.gov/",
                ),
                "jobs_link",
            )
            if not ctx.removed("jobs_link")
            else None
        )
        listings = [
            _mark(
                E(
                    "div",
                    E("h3", E("a", ctx.gen("product"), href=f"/vacancy/{i}")),
                    E("span", ctx.gen("city"), class_="location"),
                    class_=ctx.cls("listing"),
                ),
                "listings",
            )
            for i in range(ctx.list_size("jobs"))
        ]
        body = E(
            "body",
            _nav(ctx, ["About", "Careers"], "navbar"),
            *_promos(ctx, "notices", "notice"),
            E("div", E("h1", ctx.data("agency")), jobs_link, class_="masthead"),
            _wrap_redesign(ctx, E("div", E("h2", "Open positions"), *listings, class_="page")),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Jobs")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="jobs",
        url=f"http://www.{site_id}.example.gov/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/jobs_link",
            site_id=site_id,
            role="jobs_link",
            multi=False,
            human_wrapper='descendant::img[@id="jobs"]/ancestor::a[1]',
            description="jobs link via badge image (paper break case d)",
        ),
        TaskSpec(
            task_id=f"{site_id}/listings",
            site_id=site_id,
            role="listings",
            multi=True,
            human_wrapper=(
                'descendant::h2[contains(.,"Open positions")]'
                "/following-sibling::div"
            ),
            description="job listing blocks",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# video (youtube-like)
# --------------------------------------------------------------------------


def make_video_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("video", variant, seed)
    site_id = f"video-{variant}"
    related_cls = rng.choice(["related-item", "up-next", "rec-tile"])

    profile = SiteProfile(
        class_tokens={"related": related_cls, "player": "player-shell"},
        id_tokens={"watch_title": "watch-title"},
        counts={"overlays": Knob(0, 0, 3)},
        lists={"related": Knob(8, 4, 14), "comments": Knob(4, 2, 9)},
        flags={"comments": True},
        texts={"title": "headline", "channel": "organization"},
        removable_roles=("comments_list",),
    )

    def build(ctx: RenderContext) -> Document:
        related = [
            _mark(
                E("li", E("a", ctx.gen("headline"), href=f"/watch?v={i}"), class_=ctx.cls("related")),
                "related",
            )
            for i in range(ctx.list_size("related"))
        ]
        comments = (
            E(
                "div",
                E("h3", "Comments"),
                *[
                    _mark(E("p", ctx.gen("sentence"), class_="comment"), "comments_list")
                    for _ in range(ctx.list_size("comments"))
                ],
                class_="comments",
            )
            if ctx.flag("comments") and not ctx.removed("comments_list")
            else None
        )
        body = E(
            "body",
            _nav(ctx, ["Home", "Trending", "Subscriptions"], "navbar"),
            *_promos(ctx, "overlays", "overlay"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    E("div", "[player]", class_=ctx.cls("player")),
                    _mark(E("h1", ctx.data("title"), id=ctx.ident("watch_title")), "title"),
                    E("span", ctx.data("channel"), class_="channel-name"),
                    comments,
                    class_="watch-page",
                ),
            ),
            E("ul", *related, class_="related-list"),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Video")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="video",
        url=f"http://www.{site_id}.example.com/watch?v={variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/title",
            site_id=site_id,
            role="title",
            multi=False,
            human_wrapper='descendant::h1[@id="watch-title"]',
            description="video title",
        ),
        TaskSpec(
            task_id=f"{site_id}/related",
            site_id=site_id,
            role="related",
            multi=True,
            human_wrapper=f'descendant::li[@class="{related_cls}"]',
            description="related videos",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# SaaS portal (salesforce-like)
# --------------------------------------------------------------------------


def make_portal_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("portal", variant, seed)
    site_id = f"portal-{variant}"
    search_id = rng.choice(["search_box_hm", "global-search", "hero-search"])

    profile = SiteProfile(
        class_tokens={"hero": "hero-banner", "menu": "prod-menu"},
        id_tokens={"search": search_id},
        counts={"banners": Knob(1, 0, 4), "nav": Knob(1, 0, 4)},
        lists={"menu": Knob(6, 3, 10), "logos": Knob(5, 3, 8)},
        flags={"chat": True},
        texts={"tagline": "headline"},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        # The paper's case (c): the *last* text input on the page is the
        # search box; a newsletter input precedes it.
        newsletter = E("input", type="email", name="newsletter")
        search = _mark(
            E("input", type="text", name="q"),
            "search",
        )
        menu_items = [
            _mark(E("li", E("a", ctx.gen("product"), href=f"/products/{i}")), "menu")
            for i in range(ctx.list_size("menu"))
        ]
        body = E(
            "body",
            _nav(ctx, ["Products", "Industries", "Customers"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    E("h1", ctx.data("tagline")),
                    E("div", newsletter, class_="newsletter-box"),
                    E("div", search, id=ctx.ident("search")),
                    class_=ctx.cls("hero"),
                ),
            ),
            E("ul", *menu_items, class_=ctx.cls("menu")),
            (E("div", "Chat", class_="chat-bubble") if ctx.flag("chat") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Portal")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="portal",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/search",
            site_id=site_id,
            role="search",
            multi=False,
            human_wrapper=f'descendant::*[@id="{search_id}"]/descendant::input[@type="text"][last()]',
            description="search box (paper break case c)",
        ),
        TaskSpec(
            task_id=f"{site_id}/menu",
            site_id=site_id,
            role="menu",
            multi=True,
            human_wrapper='descendant::ul[@class="prod-menu"]/descendant::li',
            description="product menu entries",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# forum/social
# --------------------------------------------------------------------------


def make_forum_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("forum", variant, seed)
    site_id = f"forum-{variant}"
    thread_cls = rng.choice(["thread-row", "topic-line", "post-item"])

    profile = SiteProfile(
        class_tokens={"thread": thread_cls, "trending": "trend-box"},
        id_tokens={"compose": "new-post"},
        counts={"pinned": Knob(1, 0, 4), "nav": Knob(1, 0, 3)},
        lists={"threads": Knob(9, 4, 15), "trending": Knob(5, 3, 8)},
        flags={"online_box": True},
        texts={"motd": "sentence"},
        removable_roles=("trending",),
    )

    def build(ctx: RenderContext) -> Document:
        pinned = [
            E("div", E("a", "Pinned: ", ctx.gen("headline")), class_="pinned")
            for _ in range(ctx.count("pinned"))
        ]
        threads = [
            _mark(
                E(
                    "div",
                    E("a", ctx.gen("headline"), href=f"/t/{i}"),
                    E("span", ctx.gen("person"), class_="author"),
                    class_=ctx.cls("thread"),
                ),
                "threads",
            )
            for i in range(ctx.list_size("threads"))
        ]
        trending = (
            E(
                "div",
                E("h4", "Trending:"),
                E(
                    "ul",
                    *[
                        _mark(E("li", ctx.gen("word")), "trending")
                        for _ in range(ctx.list_size("trending"))
                    ],
                ),
                class_=ctx.cls("trending"),
            )
            if not ctx.removed("trending")
            else None
        )
        body = E(
            "body",
            _nav(ctx, ["Forums", "Members"], "navbar"),
            E("div", ctx.data("motd"), class_="motd"),
            *pinned,
            _mark(E("a", "New post", id=ctx.ident("compose")), "compose"),
            _wrap_redesign(ctx, E("div", *threads, class_="thread-list")),
            trending,
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Forum")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="forum",
        url=f"http://{site_id}.example.org/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/compose",
            site_id=site_id,
            role="compose",
            multi=False,
            human_wrapper='descendant::a[@id="new-post"]',
            description="new-post link",
        ),
        TaskSpec(
            task_id=f"{site_id}/trending",
            site_id=site_id,
            role="trending",
            multi=True,
            human_wrapper='descendant::h4[starts-with(.,"Trending")]/following-sibling::ul/descendant::li',
            description="trending topics after their label",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# weather
# --------------------------------------------------------------------------


def make_weather_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("weather", variant, seed)
    site_id = f"weather-{variant}"
    temp_cls = rng.choice(["temp-now", "current-temp", "obs-temp"])

    profile = SiteProfile(
        class_tokens={"temp": temp_cls, "forecast": "forecast-strip"},
        id_tokens={"current": "current-conditions"},
        counts={"alerts": Knob(0, 0, 3)},
        lists={"days": Knob(7, 5, 10)},
        flags={"radar": True},
        texts={"city": "city"},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        days = [
            _mark(
                E(
                    "li",
                    E("span", f"Day {i + 1}", class_="day-name"),
                    ctx.volatile(f"{ctx.rng.randrange(-5, 35)}°"),
                    class_="day-cell",
                ),
                "days",
            )
            for i in range(ctx.list_size("days"))
        ]
        current = E(
            "div",
            E("h1", ctx.data("city")),
            _mark(
                E("span", ctx.volatile(f"{ctx.rng.randrange(-10, 40)}°"), class_=ctx.cls("temp")),
                "temp",
            ),
            id=ctx.ident("current"),
        )
        body = E(
            "body",
            _nav(ctx, ["Today", "Radar", "Maps"], "navbar"),
            *_promos(ctx, "alerts", "wx-alert"),
            _wrap_redesign(ctx, current),
            E("ul", *days, class_=ctx.cls("forecast")),
            (E("div", "Radar", class_="radar") if ctx.flag("radar") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Weather")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="weather",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/temp",
            site_id=site_id,
            role="temp",
            multi=False,
            human_wrapper=f'descendant::div[@id="current-conditions"]/descendant::span[@class="{temp_cls}"]',
            description="current temperature",
        ),
        TaskSpec(
            task_id=f"{site_id}/days",
            site_id=site_id,
            role="days",
            multi=True,
            human_wrapper='descendant::ul[@class="forecast-strip"]/child::li',
            description="forecast day cells",
        ),
    ]
    return spec


#: All vertical factories, in a stable order (extended at the bottom of
#: this module by the families in :mod:`repro.sites.verticals_extra`).
VERTICAL_FACTORIES = {
    "movies": make_movies_site,
    "news": make_news_site,
    "sports": make_sports_site,
    "finance": make_finance_site,
    "travel": make_travel_site,
    "shopping": make_shopping_site,
    "techreview": make_techreview_site,
    "reference": make_reference_site,
    "jobs": make_jobs_site,
    "video": make_video_site,
    "portal": make_portal_site,
    "forum": make_forum_site,
    "weather": make_weather_site,
}


def _register_extra_verticals() -> None:
    """Merge the additional families (import deferred: the extra module
    reuses this module's layout helpers)."""
    from repro.sites.verticals_extra import EXTRA_VERTICAL_FACTORIES

    VERTICAL_FACTORIES.update(EXTRA_VERTICAL_FACTORIES)


_register_extra_verticals()

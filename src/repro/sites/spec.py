"""Site and task specifications."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.dom.node import Document
from repro.util import seeded_rng
from repro.evolution.changes import ChangeModel
from repro.evolution.state import RenderContext, SiteProfile, SiteState

#: A template builder renders a document from a state.
Builder = Callable[[RenderContext], Document]


@dataclass(frozen=True)
class TaskSpec:
    """One extraction task on a site.

    ``role`` is the meta marker the builder puts on target nodes;
    ``human_wrapper`` is the expert-written XPath (written against the
    site's *initial* state, as a human would); ``multi`` distinguishes
    the single-node (Fig. 3) and multi-node (Fig. 4) datasets.
    """

    task_id: str
    site_id: str
    role: str
    multi: bool
    human_wrapper: str
    description: str = ""


@dataclass
class SiteSpec:
    """A synthetic site: template + change profile + tasks."""

    site_id: str
    vertical: str
    url: str
    profile: SiteProfile
    build: Builder
    change_model: ChangeModel
    tasks: list[TaskSpec] = field(default_factory=list)
    seed: int = 0
    #: Optional post-evolution hook (see repro.evolution.changes.StateHook)
    #: applied by every SyntheticArchive built from this spec; generated
    #: site families (repro.sitegen) use it to fire scripted break
    #: points at known snapshot indices.
    state_hook: Callable[[SiteState, random.Random], SiteState] | None = None

    def initial_rng(self) -> random.Random:
        return seeded_rng(self.seed, self.site_id)

    def single_tasks(self) -> list[TaskSpec]:
        return [t for t in self.tasks if not t.multi]

    def multi_tasks(self) -> list[TaskSpec]:
        return [t for t in self.tasks if t.multi]

"""Additional vertical template builders.

The paper's corpus spans more than 20 verticals; together with
:mod:`repro.sites.verticals` this module brings the simulator to 21
site families.  Same conventions: targets carry ``meta['role']``,
data text is volatile, human wrappers are written against the initial
template state.
"""

from __future__ import annotations

from repro.dom.builder import E, T, document
from repro.dom.node import Document
from repro.evolution.state import Knob, RenderContext, SiteProfile
from repro.sites.spec import SiteSpec, TaskSpec
from repro.sites.verticals import (
    _footer,
    _mark,
    _nav,
    _promos,
    _site_change_model,
    _variant_rng,
    _wrap_redesign,
)

# --------------------------------------------------------------------------
# recipes
# --------------------------------------------------------------------------


def make_recipes_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("recipes", variant, seed)
    site_id = f"recipes-{variant}"
    ingredient_cls = rng.choice(["ingredient", "recipe-ingred", "ing-item"])

    profile = SiteProfile(
        class_tokens={"ingredient": ingredient_cls, "card": "recipe-card"},
        id_tokens={"recipe": "recipe-main"},
        counts={"banners": Knob(1, 0, 3)},
        lists={"ingredients": Knob(7, 4, 12), "steps": Knob(5, 3, 9)},
        flags={"nutrition": True},
        texts={"dish": "product"},
        removable_roles=("nutrition",),
    )

    def build(ctx: RenderContext) -> Document:
        ingredients = [
            _mark(
                E("li", ctx.gen("word"), T(" — "), ctx.volatile(f"{ctx.rng.randrange(1, 500)}g"),
                  class_=ctx.cls("ingredient")),
                "ingredients",
            )
            for _ in range(ctx.list_size("ingredients"))
        ]
        steps = [
            E("li", ctx.gen("sentence")) for _ in range(ctx.list_size("steps"))
        ]
        nutrition = (
            _mark(E("div", E("span", "Calories: ", ctx.volatile(str(ctx.rng.randrange(80, 900)))),
                    class_="nutrition"), "nutrition")
            if ctx.flag("nutrition") and not ctx.removed("nutrition")
            else None
        )
        main = E(
            "div",
            _mark(E("h1", ctx.data("dish"), itemprop="name"), "dish"),
            E("h3", "Ingredients"),
            E("ul", *ingredients, class_="ingredient-list"),
            E("h3", "Method"),
            E("ol", *steps),
            nutrition,
            id=ctx.ident("recipe"),
            class_=ctx.cls("card"),
        )
        body = E(
            "body",
            _nav(ctx, ["Recipes", "Chefs", "Seasonal"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            _wrap_redesign(ctx, main),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", ctx.text("dish"))), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="recipes",
        url=f"http://www.{site_id}.example.com/recipe/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/dish",
            site_id=site_id,
            role="dish",
            multi=False,
            human_wrapper='descendant::h1[@itemprop="name"]',
            description="dish name",
        ),
        TaskSpec(
            task_id=f"{site_id}/ingredients",
            site_id=site_id,
            role="ingredients",
            multi=True,
            human_wrapper=(
                'descendant::h3[.="Ingredients"]/following-sibling::ul/descendant::li'
            ),
            description="ingredient list after its header",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# real estate
# --------------------------------------------------------------------------


def make_realestate_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("realestate", variant, seed)
    site_id = f"realestate-{variant}"
    listing_cls = rng.choice(["listing-card", "property-tile", "home-card"])

    profile = SiteProfile(
        class_tokens={"listing": listing_cls, "price": "asking-price"},
        id_tokens={"results": "search-results"},
        counts={"featured": Knob(1, 0, 3)},
        lists={"listings": Knob(8, 4, 14)},
        flags={"map": True},
        texts={"headline_price": "price"},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        listings = [
            E(
                "div",
                E("h3", E("a", ctx.gen("city"), T(" — "), ctx.gen("word"))),
                _mark(E("span", ctx.gen("price"), class_=ctx.cls("price")), "prices"),
                E("span", ctx.volatile(f"{ctx.rng.randrange(1, 7)} bd"), class_="beds"),
                class_=ctx.cls("listing"),
            )
            for _ in range(ctx.list_size("listings"))
        ]
        hero = E(
            "div",
            _mark(E("span", ctx.data("headline_price"), class_=ctx.cls("price"), itemprop="price"), "hero_price"),
            E("p", ctx.gen("sentence")),
            class_="hero-listing",
        )
        body = E(
            "body",
            _nav(ctx, ["Buy", "Rent", "Agents"], "navbar"),
            *_promos(ctx, "featured", "featured"),
            hero,
            _wrap_redesign(ctx, E("div", *listings, id=ctx.ident("results"))),
            (E("div", "Map", class_="map") if ctx.flag("map") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Homes")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="realestate",
        url=f"http://www.{site_id}.example.com/search",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/hero_price",
            site_id=site_id,
            role="hero_price",
            multi=False,
            human_wrapper='descendant::span[@itemprop="price"]',
            description="hero asking price",
        ),
        TaskSpec(
            task_id=f"{site_id}/prices",
            site_id=site_id,
            role="prices",
            multi=True,
            human_wrapper=(
                f'descendant::div[@id="search-results"]'
                f'/descendant::span[@class="asking-price"]'
            ),
            description="listing prices",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# events
# --------------------------------------------------------------------------


def make_events_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("events", variant, seed)
    site_id = f"events-{variant}"
    event_cls = rng.choice(["event-row", "gig-item", "happening"])

    profile = SiteProfile(
        class_tokens={"event": event_cls, "venue": "venue-name"},
        id_tokens={"calendar": "calendar"},
        counts={"promos": Knob(1, 0, 4)},
        lists={"events": Knob(9, 4, 16)},
        flags={"filters": True},
        texts={"city": "city"},
        removable_roles=("events",),
    )

    def build(ctx: RenderContext) -> Document:
        events = []
        if not ctx.removed("events"):
            for i in range(ctx.list_size("events")):
                events.append(
                    _mark(
                        E(
                            "div",
                            E("span", ctx.gen("date"), class_="event-date"),
                            E("a", ctx.gen("headline"), href=f"/event/{i}"),
                            E("span", ctx.gen("organization"), class_=ctx.cls("venue")),
                            class_=ctx.cls("event"),
                        ),
                        "events",
                    )
                )
        body = E(
            "body",
            _nav(ctx, ["Tonight", "Weekend", "Venues"], "navbar"),
            *_promos(ctx, "promos", "promo"),
            _mark(E("h1", T("Events in "), ctx.data("city")), "heading"),
            _wrap_redesign(
                ctx,
                E("div", E("h3", "Upcoming events"), *events, id=ctx.ident("calendar")),
            ),
            (E("div", "Filters", class_="filters") if ctx.flag("filters") else None),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Events")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="events",
        url=f"http://www.{site_id}.example.com/",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/heading",
            site_id=site_id,
            role="heading",
            multi=False,
            human_wrapper='descendant::h1[starts-with(.,"Events in")]',
            description="city heading",
        ),
        TaskSpec(
            task_id=f"{site_id}/events",
            site_id=site_id,
            role="events",
            multi=True,
            human_wrapper=(
                'descendant::h3[.="Upcoming events"]/following-sibling::div'
            ),
            description="event rows after their header",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# music (artist page)
# --------------------------------------------------------------------------


def make_music_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("music", variant, seed)
    site_id = f"music-{variant}"
    track_cls = rng.choice(["tracklist-row", "song-row", "track-item"])

    profile = SiteProfile(
        class_tokens={"track": track_cls, "artist": "artist-header"},
        id_tokens={"discography": "discography"},
        counts={"banners": Knob(0, 0, 3)},
        lists={"tracks": Knob(10, 5, 16), "similar": Knob(4, 2, 8)},
        flags={"tour": True},
        texts={},
        removable_roles=("tour_dates",),
    )

    def build(ctx: RenderContext) -> Document:
        tracks = [
            _mark(
                E(
                    "li",
                    E("span", str(i + 1), class_="track-no"),
                    E("a", ctx.stable("movie", "track", i), href=f"/track/{i}"),
                    class_=ctx.cls("track"),
                ),
                "tracks",
            )
            for i in range(ctx.list_size("tracks"))
        ]
        tour = (
            _mark(
                E("div", E("h4", "Tour dates"), E("p", ctx.gen("date")), class_="tour-box"),
                "tour_dates",
            )
            if ctx.flag("tour") and not ctx.removed("tour_dates")
            else None
        )
        body = E(
            "body",
            _nav(ctx, ["Artists", "Charts", "Radio"], "navbar"),
            *_promos(ctx, "banners", "banner"),
            E(
                "div",
                _mark(E("h1", ctx.stable("person", "artist"), itemprop="name"), "artist"),
                class_=ctx.cls("artist"),
            ),
            _wrap_redesign(
                ctx,
                E("div", E("h3", "Top tracks"), E("ol", *tracks), id=ctx.ident("discography")),
            ),
            tour,
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Artist")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="music",
        url=f"http://www.{site_id}.example.com/artist/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/artist",
            site_id=site_id,
            role="artist",
            multi=False,
            human_wrapper='descendant::h1[@itemprop="name"]',
            description="artist name",
        ),
        TaskSpec(
            task_id=f"{site_id}/tracks",
            site_id=site_id,
            role="tracks",
            multi=True,
            human_wrapper='descendant::div[@id="discography"]/descendant::li',
            description="top tracks",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# Q&A
# --------------------------------------------------------------------------


def make_qa_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("qa", variant, seed)
    site_id = f"qa-{variant}"
    answer_cls = rng.choice(["answer", "reply-post", "answer-cell"])

    profile = SiteProfile(
        class_tokens={"answer": answer_cls, "question": "question-body"},
        id_tokens={"question": "question"},
        counts={"ads": Knob(1, 0, 3)},
        lists={"answers": Knob(5, 2, 10), "related": Knob(5, 3, 9)},
        flags={"accepted": True},
        texts={"question": "sentence"},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        answers = [
            _mark(
                E(
                    "div",
                    E("div", ctx.gen("sentence"), class_="answer-text"),
                    E("span", ctx.gen("person"), class_="answer-author"),
                    class_=ctx.cls("answer"),
                ),
                "answers",
            )
            for _ in range(ctx.list_size("answers"))
        ]
        related = [
            E("li", E("a", ctx.gen("headline"))) for _ in range(ctx.list_size("related"))
        ]
        body = E(
            "body",
            _nav(ctx, ["Questions", "Tags", "Users"], "navbar"),
            *_promos(ctx, "ads", "ad"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    _mark(E("h1", ctx.data("question")), "question"),
                    E("div", ctx.gen("sentence"), class_=ctx.cls("question")),
                    E("h3", f"Answers"),
                    *answers,
                    id=ctx.ident("question"),
                ),
            ),
            E("div", E("h4", "Related"), E("ul", *related), class_="related"),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Q&A")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="qa",
        url=f"http://{site_id}.example.com/q/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/question",
            site_id=site_id,
            role="question",
            multi=False,
            human_wrapper='descendant::div[@id="question"]/descendant::h1',
            description="question title",
        ),
        TaskSpec(
            task_id=f"{site_id}/answers",
            site_id=site_id,
            role="answers",
            multi=True,
            human_wrapper=(
                'descendant::h3[.="Answers"]/following-sibling::div'
            ),
            description="answer blocks after their header",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# wiki / encyclopedia
# --------------------------------------------------------------------------


def make_wiki_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("wiki", variant, seed)
    site_id = f"wiki-{variant}"
    infobox_cls = rng.choice(["infobox", "fact-box", "side-summary"])

    profile = SiteProfile(
        class_tokens={"infobox": infobox_cls, "toc": "table-of-contents"},
        id_tokens={"content": "mw-content"},
        counts={"notices": Knob(0, 0, 3)},
        lists={"toc": Knob(6, 3, 10), "references": Knob(8, 4, 14)},
        flags={"toc_shown": True},
        texts={},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        toc = (
            E(
                "ul",
                *[
                    _mark(E("li", E("a", ctx.gen("word"))), "toc_items")
                    for _ in range(ctx.list_size("toc"))
                ],
                class_=ctx.cls("toc"),
            )
            if ctx.flag("toc_shown")
            else None
        )
        infobox = E(
            "table",
            E("tr", E("th", "Born"), _mark(E("td", ctx.stable("date", "born")), "born")),
            E("tr", E("th", "Occupation"), E("td", ctx.gen("word"))),
            class_=ctx.cls("infobox"),
        )
        references = [
            E("li", ctx.gen("sentence")) for _ in range(ctx.list_size("references"))
        ]
        body = E(
            "body",
            _nav(ctx, ["Article", "Talk", "History"], "navbar"),
            *_promos(ctx, "notices", "site-notice"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    _mark(E("h1", ctx.stable("person", "subject")), "title"),
                    infobox,
                    toc,
                    E("p", ctx.gen("sentence")),
                    E("h2", "References"),
                    E("ol", *references),
                    id=ctx.ident("content"),
                ),
            ),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Wiki")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="wiki",
        url=f"http://{site_id}.example.org/wiki/Subject_{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/born",
            site_id=site_id,
            role="born",
            multi=False,
            human_wrapper='descendant::th[.="Born"]/following-sibling::td',
            description="birth date cell next to its label",
        ),
        TaskSpec(
            task_id=f"{site_id}/toc_items",
            site_id=site_id,
            role="toc_items",
            multi=True,
            human_wrapper='descendant::ul[@class="table-of-contents"]/descendant::li',
            description="table-of-contents entries",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# auctions
# --------------------------------------------------------------------------


def make_auctions_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("auctions", variant, seed)
    site_id = f"auctions-{variant}"
    bid_cls = rng.choice(["current-bid", "bid-now", "price-bid"])

    profile = SiteProfile(
        class_tokens={"bid": bid_cls, "lot": "lot-card"},
        id_tokens={"lot_main": "lot"},
        counts={"promos": Knob(1, 0, 3)},
        lists={"bids": Knob(6, 3, 10), "lots": Knob(7, 4, 12)},
        flags={"countdown": True},
        texts={"lot_title": "product"},
        removable_roles=("bid_history",),
    )

    def build(ctx: RenderContext) -> Document:
        bid_rows = []
        if not ctx.removed("bid_history"):
            bid_rows = [
                _mark(
                    E("tr", E("td", ctx.gen("person")), E("td", ctx.gen("price"))),
                    "bid_history",
                )
                for _ in range(ctx.list_size("bids"))
            ]
        lots = [
            E(
                "div",
                E("a", ctx.gen("product"), href=f"/lot/{i}"),
                E("span", ctx.gen("price"), class_=ctx.cls("bid")),
                class_=ctx.cls("lot"),
            )
            for i in range(ctx.list_size("lots"))
        ]
        body = E(
            "body",
            _nav(ctx, ["Auctions", "Sell", "Watchlist"], "navbar"),
            *_promos(ctx, "promos", "promo"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    E("h1", ctx.data("lot_title")),
                    _mark(E("span", ctx.gen("price"), class_=ctx.cls("bid"), itemprop="price"), "current_bid"),
                    (E("span", "2h 14m left", class_="countdown") if ctx.flag("countdown") else None),
                    E("table", E("tr", E("th", "Bidder"), E("th", "Amount"), class_="hdr"), *bid_rows),
                    id=ctx.ident("lot_main"),
                ),
            ),
            E("div", E("h3", "More lots"), *lots, class_="more-lots"),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Auction")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="auctions",
        url=f"http://www.{site_id}.example.com/lot/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/current_bid",
            site_id=site_id,
            role="current_bid",
            multi=False,
            human_wrapper='descendant::span[@itemprop="price"]',
            description="current bid amount",
        ),
        TaskSpec(
            task_id=f"{site_id}/bid_history",
            site_id=site_id,
            role="bid_history",
            multi=True,
            human_wrapper='descendant::tr[contains(.,"Bidder")]/following-sibling::tr',
            description="bid-history rows",
        ),
    ]
    return spec


# --------------------------------------------------------------------------
# academic (publication listing)
# --------------------------------------------------------------------------


def make_academic_site(variant: int, seed: int = 0) -> SiteSpec:
    rng = _variant_rng("academic", variant, seed)
    site_id = f"academic-{variant}"
    paper_cls = rng.choice(["pub-entry", "paper-row", "citation"])

    profile = SiteProfile(
        class_tokens={"paper": paper_cls, "profile": "scholar-profile"},
        id_tokens={"publications": "publications"},
        counts={"notices": Knob(0, 0, 2)},
        lists={"papers": Knob(8, 4, 15)},
        flags={"metrics": True},
        texts={},
        removable_roles=(),
    )

    def build(ctx: RenderContext) -> Document:
        papers = [
            _mark(
                E(
                    "div",
                    E("a", ctx.stable("headline", "paper", i), href=f"/paper/{i}"),
                    E("span", ctx.stable("date", "year", i), class_="pub-year"),
                    class_=ctx.cls("paper"),
                ),
                "papers",
            )
            for i in range(ctx.list_size("papers"))
        ]
        metrics = (
            E("div", E("span", "h-index: ", ctx.volatile(str(ctx.rng.randrange(3, 80)))), class_="metrics")
            if ctx.flag("metrics")
            else None
        )
        body = E(
            "body",
            _nav(ctx, ["Profiles", "Venues", "Search"], "navbar"),
            *_promos(ctx, "notices", "notice"),
            _wrap_redesign(
                ctx,
                E(
                    "div",
                    _mark(E("h1", ctx.stable("person", "scholar"), itemprop="name"), "scholar"),
                    metrics,
                    E("h3", "Publications"),
                    E("div", *papers, id=ctx.ident("publications")),
                    class_=ctx.cls("profile"),
                ),
            ),
            _footer(ctx),
        )
        return document(E("html", E("head", E("title", "Scholar")), body))

    spec = SiteSpec(
        site_id=site_id,
        vertical="academic",
        url=f"http://{site_id}.example.edu/profile/{variant}",
        profile=profile,
        build=build,
        change_model=_site_change_model(rng),
        seed=seed,
    )
    spec.tasks = [
        TaskSpec(
            task_id=f"{site_id}/scholar",
            site_id=site_id,
            role="scholar",
            multi=False,
            human_wrapper='descendant::h1[@itemprop="name"]',
            description="scholar name",
        ),
        TaskSpec(
            task_id=f"{site_id}/papers",
            site_id=site_id,
            role="papers",
            multi=True,
            human_wrapper='descendant::div[@id="publications"]/child::div',
            description="publication entries",
        ),
    ]
    return spec


#: Factories contributed by this module.
EXTRA_VERTICAL_FACTORIES = {
    "recipes": make_recipes_site,
    "realestate": make_realestate_site,
    "events": make_events_site,
    "music": make_music_site,
    "qa": make_qa_site,
    "wiki": make_wiki_site,
    "auctions": make_auctions_site,
    "academic": make_academic_site,
}

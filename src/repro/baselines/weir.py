"""A reconstruction of WEIR's wrapper generation [2] (Sec. 6.1).

Bronzi, Crescenzi, Merialdo, Papotti (VLDB 2013) induce wrappers from
*multiple pages of the same template* by exploiting redundancy.  The
paper describes the expressions WEIR produces as two types, which this
module reconstructs:

* **absolute** expressions: canonical-path-like, but rooted at the
  closest ancestor of the target with a unique ``id``;
* **relative** expressions: anchored at a close-by *template node* — a
  node whose text content is identical across the input pages (a static
  label such as "Country:") — followed by a short canonical hop.

WEIR returns an unranked set (≈30 expressions on average in the
paper's runs) and each expression matches at most one node per page.
Multiple pages are required (the paper uses 10) to tell template text
from data text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dom.node import Document, ElementNode, Node, TextNode
from repro.util import seeded_rng
from repro.xpath.ast import (
    Axis,
    PositionalPredicate,
    Query,
    Step,
    StringPredicate,
    AttrSubject,
    TextSubject,
    name_test,
)
from repro.xpath.evaluator import evaluate


def _template_texts(docs: Sequence[Document]) -> set[str]:
    """Normalized texts appearing identically in every input page."""
    per_doc: list[set[str]] = []
    for doc in docs:
        texts = {
            doc.normalized_text(node)
            for node in doc.root.descendants()
            if isinstance(node, TextNode) and doc.normalized_text(node)
        }
        per_doc.append(texts)
    common = set.intersection(*per_doc) if per_doc else set()
    return {text for text in common if len(text) <= 60}


def _canonical_hop(ancestor: ElementNode, target: Node) -> Optional[Query]:
    """Child steps with positions from ``ancestor`` down to ``target``."""
    path: list[Node] = [target]
    for node in target.ancestors():
        if node is ancestor:
            break
        path.append(node)
    else:
        return None
    path.reverse()
    steps = []
    for node in path:
        parent = node.parent
        assert parent is not None
        if isinstance(node, ElementNode):
            same = [
                c for c in parent.children
                if isinstance(c, ElementNode) and c.tag == node.tag
            ]
            test = name_test(node.tag)
        else:
            from repro.xpath.ast import TEXT

            same = [c for c in parent.children if isinstance(c, TextNode)]
            test = TEXT
        position = next(i for i, c in enumerate(same) if c is node) + 1
        steps.append(Step(Axis.CHILD, test, (PositionalPredicate(index=position),)))
    return Query(tuple(steps))


class WeirInducer:
    """Generate WEIR-style expressions from same-template pages."""

    def __init__(self, max_expressions: int = 30, seed: int = 0) -> None:
        self.max_expressions = max_expressions
        self.seed = seed

    def induce(
        self, docs: Sequence[Document], targets: Sequence[Node]
    ) -> list[Query]:
        """Unranked expressions for the target of the *first* page.

        ``targets[i]`` is the target node on ``docs[i]``; redundancy
        across pages defines which text is template.  Every returned
        expression selects exactly one node on the first page.
        """
        if len(docs) < 2:
            raise ValueError("WEIR needs multiple pages of the same template")
        doc, target = docs[0], targets[0]
        template = _template_texts(docs)
        expressions: list[Query] = []
        expressions.extend(self._absolute_expressions(doc, target))
        expressions.extend(self._relative_expressions(doc, target, template))

        unique: list[Query] = []
        seen: set[Query] = set()
        for query in expressions:
            if query in seen:
                continue
            result = evaluate(query, doc.root, doc)
            if len(result) == 1 and result[0] is target:
                seen.add(query)
                unique.append(query)
        # WEIR's output is unranked; shuffle deterministically to avoid
        # accidentally favoring generation order in downstream averages.
        rng = seeded_rng("weir", self.seed, len(unique))
        rng.shuffle(unique)
        return unique[: self.max_expressions]

    def _absolute_expressions(self, doc: Document, target: Node) -> list[Query]:
        """Expressions from ancestors with a unique id (nearest first)."""
        expressions: list[Query] = []
        for ancestor in target.ancestors():
            if not isinstance(ancestor, ElementNode):
                continue
            identifier = ancestor.attrs.get("id")
            if not identifier:
                continue
            matches = [
                n for n in doc.root.descendant_elements()
                if n.attrs.get("id") == identifier
            ]
            if len(matches) != 1:
                continue
            hop = _canonical_hop(ancestor, target)
            if hop is None:
                continue
            anchor = Step(
                Axis.DESCENDANT,
                name_test(ancestor.tag),
                (StringPredicate("equals", AttrSubject("id"), identifier),),
            )
            expressions.append(Query((anchor,)).concat(hop))
            # Variant without tag specialisation (WEIR emits several
            # syntactic variants per anchor).
            from repro.xpath.ast import ANY

            anchor_any = Step(
                Axis.DESCENDANT,
                ANY,
                (StringPredicate("equals", AttrSubject("id"), identifier),),
            )
            expressions.append(Query((anchor_any,)).concat(hop))
        return expressions

    def _relative_expressions(
        self, doc: Document, target: Node, template: set[str]
    ) -> list[Query]:
        """Expressions anchored at nearby static-text template nodes."""
        expressions: list[Query] = []
        container = target.parent
        regions: list[ElementNode] = []
        node = container
        for _ in range(3):
            if node is None or not isinstance(node, ElementNode):
                break
            regions.append(node)
            node = node.parent
        for region in regions:
            for candidate in region.descendant_elements():
                text = doc.normalized_text(candidate)
                if not text or text not in template:
                    continue
                hops = self._label_to_target(doc, candidate, target)
                for hop in hops:
                    anchor = Step(
                        Axis.DESCENDANT,
                        name_test(candidate.tag),
                        (StringPredicate("equals", TextSubject(), text),),
                    )
                    expressions.append(Query((anchor,)).concat(hop))
        return expressions

    def _label_to_target(
        self, doc: Document, label: ElementNode, target: Node
    ) -> list[Query]:
        """Short relative hops from a label node to the target."""
        hops: list[Query] = []
        # Following-sibling hop within the same parent.
        if label.parent is not None and target.parent is label.parent:
            if isinstance(target, ElementNode):
                siblings = [
                    c for c in label.following_siblings()
                    if isinstance(c, ElementNode) and c.tag == target.tag
                ]
                if target in siblings:
                    position = next(i for i, c in enumerate(siblings) if c is target) + 1
                    hops.append(
                        Query(
                            (
                                Step(
                                    Axis.FOLLOWING_SIBLING,
                                    name_test(target.tag),
                                    (PositionalPredicate(index=position),),
                                ),
                            )
                        )
                    )
        # Up to the common ancestor, then canonical hop down.
        ancestors_of_label = [label] + list(label.ancestors())
        for up_count, ancestor in enumerate(ancestors_of_label[:3]):
            if not isinstance(ancestor, ElementNode):
                continue
            hop = _canonical_hop(ancestor, target)
            if hop is None:
                continue
            up_steps = tuple(
                Step(Axis.PARENT, name_test(node.tag))
                for node in ancestors_of_label[1 : up_count + 1]
                if isinstance(node, ElementNode)
            )
            if len(up_steps) != up_count:
                continue
            hops.append(Query(up_steps).concat(hop))
        return hops

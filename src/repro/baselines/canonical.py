"""Canonical (absolute-path) wrappers: the paper's simple baseline.

A canonical wrapper for a target set is the union of the targets'
canonical paths — exactly what browser developer tools emit, and the
paper's stand-in for naive induction.  It breaks on any c-change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dom.node import Document, Node
from repro.xpath.ast import Query
from repro.xpath.canonical import canonical_path
from repro.xpath.compile import evaluate_compiled as evaluate


@dataclass(frozen=True)
class UnionWrapper:
    """A wrapper made of one or more queries; selects their union.

    Our induced wrappers are single queries; canonical baselines for
    multi-target tasks need one absolute path per target, hence a union.
    """

    queries: tuple[Query, ...]

    def select(self, doc: Document) -> list[Node]:
        results: list[Node] = []
        for query in self.queries:
            results.extend(evaluate(query, doc.root, doc))
        return doc.sort_nodes(results)

    def __str__(self) -> str:
        return " | ".join(str(q) for q in self.queries)


class CanonicalInducer:
    """Induce the canonical wrapper for a target set."""

    def induce(self, doc: Document, targets: Sequence[Node]) -> UnionWrapper:
        if not targets:
            raise ValueError("canonical induction needs at least one target")
        return UnionWrapper(tuple(canonical_path(node) for node in targets))

"""A reconstruction of the probabilistic tree-edit baseline [6].

Dalvi, Bohannon, Sha (SIGMOD 2009) rank XPath candidates by survival
probability under a probabilistic tree-edit model of page change,
optionally trained on a site's history.  The paper characterizes their
fragment as strictly weaker than dsXPath: only the child and descendant
axes, at most one predicate per step, equality predicates only.

This module rebuilds that design:

* :class:`TreeEditModel` — per-feature survival probabilities; priors
  can be refined by fitting on consecutive snapshot pairs (how often
  attribute values and positions persisted);
* :class:`TreeEditInducer` — enumerates anchor subsets of the root→
  target spine via a beam search, scores each candidate query by the
  product of its steps' survival probabilities, and returns candidates
  ranked most-probable-first (only candidates selecting exactly the
  target on the training page are kept).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.dom.node import Document, ElementNode, Node
from repro.xpath.ast import (
    AttrSubject,
    Axis,
    PositionalPredicate,
    Query,
    Step,
    StringPredicate,
    name_test,
)
from repro.xpath.evaluator import evaluate


@dataclass(frozen=True)
class TreeEditModel:
    """Survival probabilities of query features over one page change."""

    tag_survival: float = 0.97
    id_survival: float = 0.995
    class_survival: float = 0.96
    other_attr_survival: float = 0.93
    position_survival: float = 0.85
    #: Penalty per step: longer paths touch more volatile structure.
    step_survival: float = 0.985

    def fit(self, pairs: Sequence[tuple[Document, Document]]) -> "TreeEditModel":
        """Refine the positional/attribute priors from snapshot pairs.

        For each consecutive pair we measure how often an element's
        (tag, attr) value and its canonical position persist — a crude
        but honest estimate of the tree-edit probabilities of [6].
        """
        if not pairs:
            return self
        id_hits = id_total = class_hits = class_total = 0
        pos_hits = pos_total = 0
        for before, after in pairs:
            index_after: dict[tuple[str, str, str], int] = {}
            for node in after.root.descendant_elements():
                for name, value in node.attrs.items():
                    index_after[(node.tag, name, value)] = (
                        index_after.get((node.tag, name, value), 0) + 1
                    )
            for node in before.root.descendant_elements():
                for name, value in node.attrs.items():
                    survived = index_after.get((node.tag, name, value), 0) > 0
                    if name == "id":
                        id_total += 1
                        id_hits += survived
                    elif name == "class":
                        class_total += 1
                        class_hits += survived
            pos_before = _positional_census(before)
            pos_after = _positional_census(after)
            for key, count in pos_before.items():
                pos_total += count
                pos_hits += min(count, pos_after.get(key, 0))
        model = self
        if id_total:
            model = replace(model, id_survival=max(0.5, id_hits / id_total))
        if class_total:
            model = replace(model, class_survival=max(0.4, class_hits / class_total))
        if pos_total:
            model = replace(model, position_survival=max(0.3, pos_hits / pos_total))
        return model

    def step_probability(self, step: Step) -> float:
        probability = self.step_survival * self.tag_survival
        for predicate in step.predicates:
            if isinstance(predicate, PositionalPredicate):
                probability *= self.position_survival
            elif isinstance(predicate, StringPredicate):
                assert isinstance(predicate.subject, AttrSubject)
                if predicate.subject.name == "id":
                    probability *= self.id_survival
                elif predicate.subject.name == "class":
                    probability *= self.class_survival
                else:
                    probability *= self.other_attr_survival
        return probability

    def query_probability(self, query: Query) -> float:
        probability = 1.0
        for step in query.steps:
            probability *= self.step_probability(step)
        return probability


def _positional_census(doc: Document) -> dict[tuple[str, int], int]:
    census: dict[tuple[str, int], int] = {}
    for node in doc.root.descendant_elements():
        if node.parent is None:
            continue
        same_tag = [
            c for c in node.parent.children
            if isinstance(c, ElementNode) and c.tag == node.tag
        ]
        position = next(i for i, c in enumerate(same_tag) if c is node)
        key = (node.tag, position)
        census[key] = census.get(key, 0) + 1
    return census


@dataclass
class TreeEditInducer:
    """Beam-search induction over the [6]-style fragment."""

    model: TreeEditModel = field(default_factory=TreeEditModel)
    beam_width: int = 20
    k: int = 10

    def induce(self, doc: Document, target: Node) -> list[Query]:
        """Ranked queries (most survival-probable first) selecting ``target``."""
        spine = self._spine(doc, target)
        if spine is None:
            return []
        # Beam over suffixes: partial queries matching `target` from each
        # spine node, extended upward by choosing each node as an anchor
        # or skipping it (skips are absorbed into a descendant step).
        beam: list[tuple[float, Query]] = []
        for step in self._step_options(spine[-1], first=True):
            query = Query((step,))
            beam.append((self.model.query_probability(query), query))
        for node in reversed(spine[:-1]):
            extended: list[tuple[float, Query]] = list(beam)  # skip this node
            for step in self._step_options(node, first=False):
                for probability, query in beam:
                    candidate = query.prepend(step)
                    extended.append(
                        (self.model.query_probability(candidate), candidate)
                    )
            extended.sort(key=lambda item: (-item[0], str(item[1])))
            beam = extended[: self.beam_width]

        accurate = []
        for probability, query in sorted(beam, key=lambda i: (-i[0], str(i[1]))):
            result = evaluate(query, doc.root, doc)
            if len(result) == 1 and result[0] is target:
                accurate.append(query)
            if len(accurate) >= self.k:
                break
        return accurate

    def _spine(self, doc: Document, target: Node) -> Optional[list[Node]]:
        path = [target] + list(target.ancestors())
        path.reverse()
        if path[0] is not doc.root:
            return None
        return [n for n in path if isinstance(n, ElementNode) and not n.tag.startswith("#")] or None

    def _step_options(self, node: Node, first: bool) -> list[Step]:
        """[6]-fragment steps matching ``node``: descendant::tag with at
        most one equality or positional predicate."""
        if not isinstance(node, ElementNode):
            return []
        test = name_test(node.tag)
        options = [Step(Axis.DESCENDANT, test)]
        for name in ("id", "class"):
            value = node.attrs.get(name)
            if value:
                options.append(
                    Step(
                        Axis.DESCENDANT,
                        test,
                        (StringPredicate("equals", AttrSubject(name), value),),
                    )
                )
        if node.parent is not None:
            same_tag = [
                c
                for c in node.parent.children
                if isinstance(c, ElementNode) and c.tag == node.tag
            ]
            if len(same_tag) > 1:
                position = next(i for i, c in enumerate(same_tag) if c is node) + 1
                options.append(
                    Step(Axis.DESCENDANT, test, (PositionalPredicate(index=position),))
                )
        return options

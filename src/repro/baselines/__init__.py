"""Baseline and comparison wrapper inducers.

* :mod:`repro.baselines.canonical` — the paper's simple baseline:
  absolute canonical-path wrappers.
* :mod:`repro.baselines.treeedit` — a reconstruction of Dalvi et al.'s
  probabilistic tree-edit-model ranking [6] (Sec. 6.1 comparison).
* :mod:`repro.baselines.weir` — a reconstruction of WEIR [2], the
  multi-page redundancy-based inducer (Sec. 6.1 comparison).
"""

from repro.baselines.canonical import CanonicalInducer, UnionWrapper
from repro.baselines.treeedit import TreeEditInducer, TreeEditModel
from repro.baselines.weir import WeirInducer

__all__ = [
    "CanonicalInducer",
    "TreeEditInducer",
    "TreeEditModel",
    "UnionWrapper",
    "WeirInducer",
]

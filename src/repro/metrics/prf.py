"""Precision, recall, and F-score between node sets (Sec. 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dom.node import Node
from repro.scoring.ranking import fbeta, precision, recall


@dataclass(frozen=True)
class PRF:
    tp: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        return precision(self.tp, self.fp)

    @property
    def recall(self) -> float:
        return recall(self.tp, self.fn)

    def f_beta(self, beta: float = 0.5) -> float:
        return fbeta(self.tp, self.fp, self.fn, beta)

    @property
    def exact(self) -> bool:
        return self.fp == 0 and self.fn == 0


def prf_counts(predicted: Iterable[Node], expected: Iterable[Node]) -> PRF:
    """Counts of ``predicted`` approximating ``expected`` (node identity)."""
    predicted_ids = {id(node) for node in predicted}
    expected_ids = {id(node) for node in expected}
    tp = len(predicted_ids & expected_ids)
    return PRF(tp=tp, fp=len(predicted_ids) - tp, fn=len(expected_ids) - tp)

"""Evaluation metrics: precision/recall/F-score, robustness, noise resistance."""

from repro.metrics.prf import prf_counts, PRF
from repro.metrics.robustness import (
    query_robust_between,
    same_result_set,
    wrapper_matches_targets,
)

__all__ = [
    "PRF",
    "prf_counts",
    "query_robust_between",
    "same_result_set",
    "wrapper_matches_targets",
]

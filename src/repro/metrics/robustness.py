"""Robustness checks (Sec. 2).

Two notions are used by the evaluation:

* the *definition* of robustness for a query across two documents — a
  subtree-preserving bijection between the result sets
  (:func:`query_robust_between`);
* the *operational* check used in the archive studies — the wrapper
  still selects exactly the logically-same target set in a later
  snapshot (:func:`wrapper_matches_targets`), which is how the paper
  decides when a wrapper "breaks".
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dom.node import Document, Node
from repro.dom.signatures import subtree_bijection_exists
from repro.xpath.ast import Query
from repro.xpath.compile import evaluate_compiled as evaluate


def query_robust_between(query: Query, doc_a: Document, doc_b: Document) -> bool:
    """Paper's robustness: a subtree-preserving bijection exists between
    q(D) and q(D')."""
    result_a = evaluate(query, doc_a.root, doc_a)
    result_b = evaluate(query, doc_b.root, doc_b)
    if len(result_a) != len(result_b):
        return False
    return subtree_bijection_exists(result_a, result_b)


def same_result_set(result: Iterable[Node], expected: Iterable[Node]) -> bool:
    """Identity-based node-set equality."""
    return {id(n) for n in result} == {id(n) for n in expected}


def wrapper_matches_targets(
    query: Query, doc: Document, targets: Sequence[Node]
) -> bool:
    """Does the wrapper select exactly the expected target set in ``doc``?"""
    result = evaluate(query, doc.root, doc)
    return same_result_set(result, targets)

"""Async serving layer over the batch extraction engine.

:class:`~repro.runtime.extractor.BatchExtractor` is a *batch* API: the
caller already holds every (wrapper, page) pair and wants them all.  A
serving deployment sees the opposite shape — many independent callers
each asking "run this wrapper on this page, now" — and calling the batch
engine once per request throws away exactly the amortization it exists
for (one parse per request instead of one parse per page).

:class:`AsyncExtractionServer` restores the batch shape *behind* a
request/response front-end:

* **admission** — ``await extract(job)`` enqueues onto a bounded queue;
  a full queue suspends the caller (backpressure, not buffering bloat),
  and a per-site semaphore caps how many requests a single site may
  hold in flight, so one hot site cannot starve the fleet;
* **micro-batching** — a dispatcher drains whatever is queued (up to
  ``max_batch_pages`` pages) into one batch, so concurrency the clients
  already exhibit becomes per-page amortization with no added latency
  when the queue is empty (a lone request dispatches immediately);
* **coalescing** — requests in a batch that target the same page (same
  ``page_id`` + identical HTML) share one parse + one document index:
  their wrapper lists are merged (deduplicated by wrapper id + query
  text) and the records are demultiplexed back to each caller;
* **parse caching** — coalescing only dedups *within* one batch
  window; a :class:`ParseCache` (content-hash-keyed, byte-budget
  LRU) carries parsed documents *across* requests and batches, so the
  production-common case — a repeated page hitting a warm server —
  skips parsing entirely.  Thread mode only; see the class docstring
  for the invalidation contract and :func:`_serve_chunk` for why
  process pools run uncached;
* **execution** — merged page groups run through :func:`_serve_chunk`
  (the batch engine's per-page loop with per-wrapper failure isolation:
  a malformed query fails only the requests that sent it, as a
  :class:`RequestError`), on a *persistent* pool (``workers=1``: an
  in-process thread, zero pickling; ``workers>1``: a
  ``ProcessPoolExecutor`` that outlives requests, unlike
  ``BatchExtractor.extract``'s per-call pool).

``benchmarks/bench_serving.py`` measures the result on the full corpus
and writes ``BENCH_serving.json``: at client concurrency 8 the server
must clear ≥ 1.5× the throughput of serial per-request
``BatchExtractor`` calls.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.dom.node import Document
from repro.dom.parser import parse_html
from repro.runtime.extractor import ExtractionRecord, PageJob, extract_document


class RequestError(RuntimeError):
    """One serving request failed (bad query, unparseable page, ...).

    Scoped to the request: other requests in the same dispatch batch —
    including ones coalesced onto the same page — are unaffected.
    """


@dataclass(frozen=True)
class ParseCacheInfo:
    """Counters for a :class:`ParseCache` (surfaced via ``/metrics``)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    capacity_bytes: int


class ParseCache:
    """Content-hash-keyed LRU of parsed documents, byte-budget bounded.

    Keys are SHA-1 of the page's HTML bytes — *content identity*, not
    page id — so a mutated page (a re-render, a drifted template) can
    never be served a stale document: different bytes simply miss.
    The budget counts the HTML byte size of the cached pages (the
    portable proxy for the parsed tree's footprint); inserting past it
    evicts least-recently-used entries, and a single page larger than
    the whole budget is served uncached.

    Invalidation contract (extends the ``DocumentIndex`` memo contract
    in docs/PERFORMANCE.md): document-owned memos — the index itself,
    its ``filter_cache`` of per-(document, step) filtered lists — stay
    owned by the document and now live exactly as long as its cache
    entry, bounded by ``capacity_bytes``; nothing is pinned in
    module-global state keyed by document.  Artifact redeploys need no
    invalidation: the cache holds *pages*, never extraction results —
    every request evaluates its wrappers against the (possibly cached)
    document afresh.  Serving never mutates cached documents (the
    volatile ``meta`` re-marking happens only in induction-side sample
    restore, which parses its own copy), so ``Document.invalidate()``
    never needs to be called on a cache resident.

    Thread-safe: the serving worker thread and ``/metrics`` scrapes on
    the event loop may touch it concurrently.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[bytes, tuple[Document, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(html: str) -> tuple[bytes, int]:
        raw = html.encode("utf-8", "surrogatepass")
        return hashlib.sha1(raw).digest(), len(raw)

    def get(self, html: str) -> Optional[Document]:
        key, _ = self._key(html)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, html: str, doc: Document) -> int:
        """Insert a parsed page; returns how many entries were evicted."""
        key, size = self._key(html)
        if size > self.capacity_bytes:
            return 0
        evicted = 0
        with self._lock:
            if key in self._entries:
                return 0
            self._entries[key] = (doc, size)
            self._bytes += size
            while self._bytes > self.capacity_bytes:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self.evictions += 1
                evicted += 1
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def info(self) -> ParseCacheInfo:
        with self._lock:
            return ParseCacheInfo(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
                bytes=self._bytes,
                capacity_bytes=self.capacity_bytes,
            )


def _serve_chunk(payload: list, cache: Optional[ParseCache] = None) -> tuple[list, dict]:
    """Worker: like ``extractor._extract_chunk`` but with per-wrapper
    failure isolation — a malformed query must fail only the requests
    that sent it, so each result slot is ``("ok", row)`` or
    ``("err", message)`` (strings, so process pools pickle cleanly).

    ``cache`` is the server-owned :class:`ParseCache` in thread mode;
    process-pool workers run uncached (``cache=None``): documents
    cannot ride the pickle boundary, and a per-worker cache measurably
    *slows* the pool — a retained 16 MiB of cyclic document graphs
    makes every gen-2 GC pass in the worker expensive, the same
    degradation the stamp-keyed engine memos hit before they were
    moved onto ``DocumentIndex``.  The second return value reports
    parse accounting for this chunk — ``parsed`` (parses performed),
    ``cache_hits`` (parses the cache absorbed), ``cache_evictions``.
    """
    out: list[list] = []
    stats = {"parsed": 0, "cache_hits": 0, "cache_evictions": 0}
    for page_id, html, wrappers in payload:
        doc = cache.get(html) if cache is not None else None
        if doc is None:
            try:
                doc = parse_html(html)
            except Exception as exc:
                out.append(
                    [("err", f"page {page_id!r} failed to parse: {exc}")] * len(wrappers)
                )
                continue
            stats["parsed"] += 1
            if cache is not None:
                stats["cache_evictions"] += cache.put(html, doc)
        else:
            stats["cache_hits"] += 1
        rows: list = []
        for wrapper_id, text in wrappers:
            try:
                (record,) = extract_document(doc, [(wrapper_id, text)], page_id)
                rows.append(
                    ("ok", (record.page_id, record.wrapper_id, record.paths, record.values))
                )
            except Exception as exc:
                rows.append(("err", f"wrapper {wrapper_id!r}: {exc}"))
        out.append(rows)
    return out, stats


def _chunk_payload(payload: list, n: int) -> list[list]:
    """Contiguous near-even payload split (preserves page order, so the
    concatenated results demultiplex positionally)."""
    size, extra = divmod(len(payload), n)
    parts, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            parts.append(payload[start:end])
        start = end
    return parts


def default_site_key(job: PageJob) -> str:
    """Site key of a request for per-site limits.

    The runtime's page ids are ``<site_id>`` or ``<site_id>@<snapshot>``
    (see ``jobs_for_artifacts``); everything before the first ``@`` is
    the site.
    """
    return job.page_id.split("@", 1)[0]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for the serving layer.

    ``workers`` sizes the execution pool (1 = in-process thread, no
    pickling; >1 = persistent process pool).  ``max_pending`` bounds the
    admission queue — when full, ``extract()`` awaits instead of
    buffering without limit.  ``per_site_limit`` caps in-flight requests
    per site key.  ``max_batch_pages`` caps how many queued requests one
    dispatch drains into a single batch.  ``parse_cache_bytes`` is the
    byte budget of the cross-request :class:`ParseCache` (0 disables
    it); the cache is a thread-mode (``workers=1``, the default)
    feature — process pools run uncached, because a per-worker cache
    of cyclic document graphs degrades worker GC more than the saved
    parses are worth (see :func:`_serve_chunk`).
    """

    workers: int = 1
    max_pending: int = 64
    per_site_limit: int = 8
    max_batch_pages: int = 16
    parse_cache_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.per_site_limit < 1:
            raise ValueError("per_site_limit must be >= 1")
        if self.max_batch_pages < 1:
            raise ValueError("max_batch_pages must be >= 1")
        if self.parse_cache_bytes < 0:
            raise ValueError("parse_cache_bytes must be >= 0")


@dataclass
class ServerStats:
    """Observability counters, updated as the dispatcher runs.

    ``pages_parsed`` counts parses actually *performed* (historically it
    counted distinct pages per payload, silently including pages the
    worker never parsed once the cache landed).  ``parses_avoided``
    counts the parses the amortization machinery absorbed: requests
    coalesced onto another request's parse within a batch, plus
    :class:`ParseCache` hits across batches — so the cache's effect is
    directly observable as ``parses_avoided`` vs ``pages_parsed``.
    """

    requests: int = 0
    pages_parsed: int = 0
    parses_avoided: int = 0
    coalesced_requests: int = 0
    parse_cache_hits: int = 0
    parse_cache_evictions: int = 0
    batches: int = 0
    peak_pending: int = 0
    peak_site_inflight: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class _Pending:
    """One admitted request waiting for its records.

    ``coalesced`` is set by the dispatcher when this request shared a
    page parse with another request in its batch — surfaced per
    request (access logs) next to the aggregate counter in stats.
    """

    job: PageJob
    future: "asyncio.Future[list[ExtractionRecord]]" = field(repr=False, default=None)
    coalesced: bool = False


class AsyncExtractionServer:
    """Request/response extraction over a shared, bounded worker pool.

    Use as an async context manager::

        async with AsyncExtractionServer(ServingConfig(workers=4)) as server:
            records = await server.extract(job)           # one request
            all_records = await server.extract_many(jobs) # a stream

    The server must be started from within a running event loop; the
    dispatcher task and the execution pool live until ``aclose()``.
    """

    def __init__(
        self,
        config: Optional[ServingConfig] = None,
        site_key: Callable[[PageJob], str] = default_site_key,
    ) -> None:
        self.config = config or ServingConfig()
        self.site_key = site_key
        self.stats = ServerStats()
        #: The cross-request page cache (thread mode; ``None`` when
        #: disabled or in process mode, where workers keep their own).
        self.parse_cache: Optional[ParseCache] = None
        self._queue: Optional[asyncio.Queue[_Pending]] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[Executor] = None
        self._site_sems: dict[str, asyncio.Semaphore] = {}
        self._site_inflight: dict[str, int] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "AsyncExtractionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server already closed")
        self._queue = asyncio.Queue(maxsize=self.config.max_pending)
        if self.config.workers == 1:
            # One thread keeps the event loop responsive without paying
            # pickling/IPC for the HTML payloads.
            if self.config.parse_cache_bytes > 0:
                self.parse_cache = ParseCache(self.config.parse_cache_bytes)
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        else:
            # No parse cache in process mode: documents cannot cross
            # the pickle boundary, and a per-worker cache is a net
            # loss — retained cyclic document graphs turn every gen-2
            # GC pass in the worker into a full scan of the cache
            # (~1.6x slower on the serving benchmark).  Process pools
            # rely on batch coalescing alone.
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
            )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def aclose(self) -> None:
        """Drain nothing, stop everything: pending requests are failed."""
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            # Drain-and-yield until quiescent: freeing queue slots wakes
            # callers suspended in put(); they re-enqueue on the next
            # loop tick and must be failed too, not left awaiting a
            # future no dispatcher will ever resolve.
            while True:
                while not self._queue.empty():
                    pending = self._queue.get_nowait()
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError("server closed before request was served")
                        )
                await asyncio.sleep(0)
                if self._queue.empty():
                    break
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- request API --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the admission queue (0 when
        the server is not running) — scraped by ``GET /metrics``."""
        return self._queue.qsize() if self._queue is not None else 0

    def parse_cache_info(self) -> ParseCacheInfo:
        """Parse-cache counters — scraped by ``GET /metrics``.

        Thread mode reports the shared cache directly.  Process mode
        and the disabled cache (both run uncached) report the
        dispatcher's aggregate counters with zero entries/bytes and
        ``capacity_bytes`` 0.
        """
        if self.parse_cache is not None:
            return self.parse_cache.info()
        return ParseCacheInfo(
            hits=self.stats.parse_cache_hits,
            misses=self.stats.pages_parsed,
            evictions=self.stats.parse_cache_evictions,
            entries=0,
            bytes=0,
            capacity_bytes=0,
        )

    async def extract(self, job: PageJob) -> list[ExtractionRecord]:
        """Serve one request; resolves to the records for *this* job's
        wrappers (in job order), however the page was batched."""
        records, _ = await self.extract_info(job)
        return records

    async def extract_info(self, job: PageJob) -> tuple[list[ExtractionRecord], bool]:
        """Like :meth:`extract`, also reporting whether this request
        coalesced onto another request's page parse."""
        if self._queue is None or self._closed:
            raise RuntimeError("server is not running (use 'async with')")
        site = self.site_key(job)
        sem = self._site_sems.setdefault(
            site, asyncio.Semaphore(self.config.per_site_limit)
        )
        async with sem:
            self._site_inflight[site] = self._site_inflight.get(site, 0) + 1
            self.stats.peak_site_inflight = max(
                self.stats.peak_site_inflight, self._site_inflight[site]
            )
            try:
                pending = _Pending(
                    job, asyncio.get_running_loop().create_future()
                )
                await self._queue.put(pending)
                # put() may have suspended across aclose(); nothing will
                # dispatch this request anymore, so fail it now.
                if self._closed and not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError("server closed before request was served")
                    )
                self.stats.peak_pending = max(
                    self.stats.peak_pending, self._queue.qsize()
                )
                return await pending.future, pending.coalesced
            finally:
                self._site_inflight[site] -= 1

    async def extract_many(
        self, jobs: Sequence[PageJob], concurrency: int = 8
    ) -> list[list[ExtractionRecord]]:
        """Serve a request stream at bounded client concurrency; results
        align with ``jobs``.  Per-request failures propagate."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        gate = asyncio.Semaphore(concurrency)

        async def one(job: PageJob) -> list[ExtractionRecord]:
            async with gate:
                return await self.extract(job)

        return list(await asyncio.gather(*(one(job) for job in jobs)))

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.max_batch_pages:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        # Coalesce: requests for the same rendered page share one parse.
        # Key on page id *and* HTML — a page id reused with different
        # content (e.g. a re-render race) must not share records.
        groups: dict[tuple[str, str], dict[tuple[str, str], int]] = {}
        placements: list[list[tuple[tuple[str, str], tuple[str, str]]]] = []
        for pending in batch:
            key = (pending.job.page_id, pending.job.html)
            merged = groups.setdefault(key, {})
            if merged:
                self.stats.coalesced_requests += 1
                pending.coalesced = True
            placement = []
            for wrapper in pending.job.wrappers:
                if wrapper not in merged:
                    merged[wrapper] = len(merged)
                placement.append((key, wrapper))
            placements.append(placement)

        payload = [
            (page_id, html, tuple(merged.keys()))
            for (page_id, html), merged in groups.items()
        ]
        self.stats.batches += 1
        self.stats.requests += len(batch)
        # Requests that shared another request's parse in this batch —
        # the worker reports the cache's share after it runs.
        self.stats.parses_avoided += len(batch) - len(payload)

        loop = asyncio.get_running_loop()
        try:
            if self.config.workers > 1 and len(payload) > 1:
                # Spread the merged pages over the pool — a single
                # submit would serialize the whole batch through one
                # worker and leave the rest idle.
                parts = _chunk_payload(
                    payload, min(self.config.workers, len(payload))
                )
                answers = await asyncio.gather(
                    *(
                        loop.run_in_executor(self._executor, _serve_chunk, part)
                        for part in parts
                    )
                )
                raw = [rows for part, _ in answers for rows in part]
                chunk_stats = [stats for _, stats in answers]
            else:
                raw, stats = await loop.run_in_executor(
                    self._executor, _serve_chunk, payload, self.parse_cache
                )
                chunk_stats = [stats]
            for stats in chunk_stats:
                self.stats.pages_parsed += stats["parsed"]
                self.stats.parse_cache_hits += stats["cache_hits"]
                self.stats.parses_avoided += stats["cache_hits"]
                self.stats.parse_cache_evictions += stats["cache_evictions"]
        except BaseException as exc:
            # Only infrastructure failures (broken pool, cancellation)
            # reach here — per-request errors come back as "err" slots.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        exc if isinstance(exc, Exception) else RuntimeError(str(exc))
                    )
            if isinstance(exc, asyncio.CancelledError):
                raise
            return

        # Demultiplex: slots come back grouped per payload page in
        # merged wrapper order; index them by (page key, merged
        # position).  A slot is ("ok", row) or ("err", message).
        slots: dict[tuple[tuple[str, str], int], tuple[str, object]] = {}
        for ((page_id, html), merged), page_rows in zip(groups.items(), raw):
            for position, slot in enumerate(page_rows):
                slots[((page_id, html), position)] = slot
        for pending, placement in zip(batch, placements):
            result: list[ExtractionRecord] = []
            error: Optional[str] = None
            for key, wrapper in placement:
                status, value = slots[(key, groups[key][wrapper])]
                if status != "ok":
                    error = str(value)
                    break
                p, w, paths, values = value
                result.append(
                    ExtractionRecord(page_id=p, wrapper_id=w, paths=paths, values=values)
                )
            if pending.future.done():
                continue
            if error is not None:
                pending.future.set_exception(RequestError(error))
            else:
                pending.future.set_result(result)


async def serve_jobs(
    jobs: Sequence[PageJob],
    config: Optional[ServingConfig] = None,
    concurrency: int = 8,
) -> tuple[list[list[ExtractionRecord]], ServerStats]:
    """Run a request stream through a fresh server (the CLI/bench entry
    point): returns per-request records plus the server's counters."""
    async with AsyncExtractionServer(config) as server:
        results = await server.extract_many(jobs, concurrency=concurrency)
        return results, server.stats


def serve_jobs_sync(
    jobs: Sequence[PageJob],
    config: Optional[ServingConfig] = None,
    concurrency: int = 8,
) -> tuple[list[list[ExtractionRecord]], ServerStats]:
    """Blocking wrapper for callers without an event loop."""
    return asyncio.run(serve_jobs(jobs, config=config, concurrency=concurrency))


__all__ = [
    "AsyncExtractionServer",
    "ParseCache",
    "ParseCacheInfo",
    "RequestError",
    "ServerStats",
    "ServingConfig",
    "default_site_key",
    "serve_jobs",
    "serve_jobs_sync",
]

"""Async serving layer over the batch extraction engine.

:class:`~repro.runtime.extractor.BatchExtractor` is a *batch* API: the
caller already holds every (wrapper, page) pair and wants them all.  A
serving deployment sees the opposite shape — many independent callers
each asking "run this wrapper on this page, now" — and calling the batch
engine once per request throws away exactly the amortization it exists
for (one parse per request instead of one parse per page).

:class:`AsyncExtractionServer` restores the batch shape *behind* a
request/response front-end:

* **admission** — ``await extract(job)`` enqueues onto a bounded queue;
  a full queue suspends the caller (backpressure, not buffering bloat),
  and a per-site semaphore caps how many requests a single site may
  hold in flight, so one hot site cannot starve the fleet;
* **micro-batching** — a dispatcher drains whatever is queued (up to
  ``max_batch_pages`` pages) into one batch, so concurrency the clients
  already exhibit becomes per-page amortization with no added latency
  when the queue is empty (a lone request dispatches immediately);
* **coalescing** — requests in a batch that target the same page (same
  ``page_id`` + identical HTML) share one parse + one document index:
  their wrapper lists are merged (deduplicated by wrapper id + query
  text) and the records are demultiplexed back to each caller;
* **execution** — merged page groups run through :func:`_serve_chunk`
  (the batch engine's per-page loop with per-wrapper failure isolation:
  a malformed query fails only the requests that sent it, as a
  :class:`RequestError`), on a *persistent* pool (``workers=1``: an
  in-process thread, zero pickling; ``workers>1``: a
  ``ProcessPoolExecutor`` that outlives requests, unlike
  ``BatchExtractor.extract``'s per-call pool).

``benchmarks/bench_serving.py`` measures the result on the full corpus
and writes ``BENCH_serving.json``: at client concurrency 8 the server
must clear ≥ 1.5× the throughput of serial per-request
``BatchExtractor`` calls.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.runtime.extractor import ExtractionRecord, PageJob, extract_document
from repro.dom.parser import parse_html


class RequestError(RuntimeError):
    """One serving request failed (bad query, unparseable page, ...).

    Scoped to the request: other requests in the same dispatch batch —
    including ones coalesced onto the same page — are unaffected.
    """


def _serve_chunk(payload: list) -> list:
    """Worker: like ``extractor._extract_chunk`` but with per-wrapper
    failure isolation — a malformed query must fail only the requests
    that sent it, so each result slot is ``("ok", row)`` or
    ``("err", message)`` (strings, so process pools pickle cleanly)."""
    out: list[list] = []
    for page_id, html, wrappers in payload:
        rows: list = []
        try:
            doc = parse_html(html)
        except Exception as exc:
            out.append([("err", f"page {page_id!r} failed to parse: {exc}")] * len(wrappers))
            continue
        for wrapper_id, text in wrappers:
            try:
                (record,) = extract_document(doc, [(wrapper_id, text)], page_id)
                rows.append(
                    ("ok", (record.page_id, record.wrapper_id, record.paths, record.values))
                )
            except Exception as exc:
                rows.append(("err", f"wrapper {wrapper_id!r}: {exc}"))
        out.append(rows)
    return out


def _chunk_payload(payload: list, n: int) -> list[list]:
    """Contiguous near-even payload split (preserves page order, so the
    concatenated results demultiplex positionally)."""
    size, extra = divmod(len(payload), n)
    parts, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            parts.append(payload[start:end])
        start = end
    return parts


def default_site_key(job: PageJob) -> str:
    """Site key of a request for per-site limits.

    The runtime's page ids are ``<site_id>`` or ``<site_id>@<snapshot>``
    (see ``jobs_for_artifacts``); everything before the first ``@`` is
    the site.
    """
    return job.page_id.split("@", 1)[0]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for the serving layer.

    ``workers`` sizes the execution pool (1 = in-process thread, no
    pickling; >1 = persistent process pool).  ``max_pending`` bounds the
    admission queue — when full, ``extract()`` awaits instead of
    buffering without limit.  ``per_site_limit`` caps in-flight requests
    per site key.  ``max_batch_pages`` caps how many queued requests one
    dispatch drains into a single batch.
    """

    workers: int = 1
    max_pending: int = 64
    per_site_limit: int = 8
    max_batch_pages: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.per_site_limit < 1:
            raise ValueError("per_site_limit must be >= 1")
        if self.max_batch_pages < 1:
            raise ValueError("max_batch_pages must be >= 1")


@dataclass
class ServerStats:
    """Observability counters, updated as the dispatcher runs."""

    requests: int = 0
    pages_parsed: int = 0
    coalesced_requests: int = 0
    batches: int = 0
    peak_pending: int = 0
    peak_site_inflight: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class _Pending:
    """One admitted request waiting for its records.

    ``coalesced`` is set by the dispatcher when this request shared a
    page parse with another request in its batch — surfaced per
    request (access logs) next to the aggregate counter in stats.
    """

    job: PageJob
    future: "asyncio.Future[list[ExtractionRecord]]" = field(repr=False, default=None)
    coalesced: bool = False


class AsyncExtractionServer:
    """Request/response extraction over a shared, bounded worker pool.

    Use as an async context manager::

        async with AsyncExtractionServer(ServingConfig(workers=4)) as server:
            records = await server.extract(job)           # one request
            all_records = await server.extract_many(jobs) # a stream

    The server must be started from within a running event loop; the
    dispatcher task and the execution pool live until ``aclose()``.
    """

    def __init__(
        self,
        config: Optional[ServingConfig] = None,
        site_key: Callable[[PageJob], str] = default_site_key,
    ) -> None:
        self.config = config or ServingConfig()
        self.site_key = site_key
        self.stats = ServerStats()
        self._queue: Optional[asyncio.Queue[_Pending]] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[Executor] = None
        self._site_sems: dict[str, asyncio.Semaphore] = {}
        self._site_inflight: dict[str, int] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "AsyncExtractionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server already closed")
        self._queue = asyncio.Queue(maxsize=self.config.max_pending)
        if self.config.workers == 1:
            # One thread keeps the event loop responsive without paying
            # pickling/IPC for the HTML payloads.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=self.config.workers)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def aclose(self) -> None:
        """Drain nothing, stop everything: pending requests are failed."""
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            # Drain-and-yield until quiescent: freeing queue slots wakes
            # callers suspended in put(); they re-enqueue on the next
            # loop tick and must be failed too, not left awaiting a
            # future no dispatcher will ever resolve.
            while True:
                while not self._queue.empty():
                    pending = self._queue.get_nowait()
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError("server closed before request was served")
                        )
                await asyncio.sleep(0)
                if self._queue.empty():
                    break
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- request API --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the admission queue (0 when
        the server is not running) — scraped by ``GET /metrics``."""
        return self._queue.qsize() if self._queue is not None else 0

    async def extract(self, job: PageJob) -> list[ExtractionRecord]:
        """Serve one request; resolves to the records for *this* job's
        wrappers (in job order), however the page was batched."""
        records, _ = await self.extract_info(job)
        return records

    async def extract_info(self, job: PageJob) -> tuple[list[ExtractionRecord], bool]:
        """Like :meth:`extract`, also reporting whether this request
        coalesced onto another request's page parse."""
        if self._queue is None or self._closed:
            raise RuntimeError("server is not running (use 'async with')")
        site = self.site_key(job)
        sem = self._site_sems.setdefault(
            site, asyncio.Semaphore(self.config.per_site_limit)
        )
        async with sem:
            self._site_inflight[site] = self._site_inflight.get(site, 0) + 1
            self.stats.peak_site_inflight = max(
                self.stats.peak_site_inflight, self._site_inflight[site]
            )
            try:
                pending = _Pending(
                    job, asyncio.get_running_loop().create_future()
                )
                await self._queue.put(pending)
                # put() may have suspended across aclose(); nothing will
                # dispatch this request anymore, so fail it now.
                if self._closed and not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError("server closed before request was served")
                    )
                self.stats.peak_pending = max(
                    self.stats.peak_pending, self._queue.qsize()
                )
                return await pending.future, pending.coalesced
            finally:
                self._site_inflight[site] -= 1

    async def extract_many(
        self, jobs: Sequence[PageJob], concurrency: int = 8
    ) -> list[list[ExtractionRecord]]:
        """Serve a request stream at bounded client concurrency; results
        align with ``jobs``.  Per-request failures propagate."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        gate = asyncio.Semaphore(concurrency)

        async def one(job: PageJob) -> list[ExtractionRecord]:
            async with gate:
                return await self.extract(job)

        return list(await asyncio.gather(*(one(job) for job in jobs)))

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.max_batch_pages:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        # Coalesce: requests for the same rendered page share one parse.
        # Key on page id *and* HTML — a page id reused with different
        # content (e.g. a re-render race) must not share records.
        groups: dict[tuple[str, str], dict[tuple[str, str], int]] = {}
        placements: list[list[tuple[tuple[str, str], tuple[str, str]]]] = []
        for pending in batch:
            key = (pending.job.page_id, pending.job.html)
            merged = groups.setdefault(key, {})
            if merged:
                self.stats.coalesced_requests += 1
                pending.coalesced = True
            placement = []
            for wrapper in pending.job.wrappers:
                if wrapper not in merged:
                    merged[wrapper] = len(merged)
                placement.append((key, wrapper))
            placements.append(placement)

        payload = [
            (page_id, html, tuple(merged.keys()))
            for (page_id, html), merged in groups.items()
        ]
        self.stats.batches += 1
        self.stats.requests += len(batch)
        self.stats.pages_parsed += len(payload)

        loop = asyncio.get_running_loop()
        try:
            if self.config.workers > 1 and len(payload) > 1:
                # Spread the merged pages over the pool — a single
                # submit would serialize the whole batch through one
                # worker and leave the rest idle.
                parts = _chunk_payload(
                    payload, min(self.config.workers, len(payload))
                )
                raws = await asyncio.gather(
                    *(
                        loop.run_in_executor(self._executor, _serve_chunk, part)
                        for part in parts
                    )
                )
                raw = [rows for part in raws for rows in part]
            else:
                raw = await loop.run_in_executor(
                    self._executor, _serve_chunk, payload
                )
        except BaseException as exc:
            # Only infrastructure failures (broken pool, cancellation)
            # reach here — per-request errors come back as "err" slots.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        exc if isinstance(exc, Exception) else RuntimeError(str(exc))
                    )
            if isinstance(exc, asyncio.CancelledError):
                raise
            return

        # Demultiplex: slots come back grouped per payload page in
        # merged wrapper order; index them by (page key, merged
        # position).  A slot is ("ok", row) or ("err", message).
        slots: dict[tuple[tuple[str, str], int], tuple[str, object]] = {}
        for ((page_id, html), merged), page_rows in zip(groups.items(), raw):
            for position, slot in enumerate(page_rows):
                slots[((page_id, html), position)] = slot
        for pending, placement in zip(batch, placements):
            result: list[ExtractionRecord] = []
            error: Optional[str] = None
            for key, wrapper in placement:
                status, value = slots[(key, groups[key][wrapper])]
                if status != "ok":
                    error = str(value)
                    break
                p, w, paths, values = value
                result.append(
                    ExtractionRecord(page_id=p, wrapper_id=w, paths=paths, values=values)
                )
            if pending.future.done():
                continue
            if error is not None:
                pending.future.set_exception(RequestError(error))
            else:
                pending.future.set_result(result)


async def serve_jobs(
    jobs: Sequence[PageJob],
    config: Optional[ServingConfig] = None,
    concurrency: int = 8,
) -> tuple[list[list[ExtractionRecord]], ServerStats]:
    """Run a request stream through a fresh server (the CLI/bench entry
    point): returns per-request records plus the server's counters."""
    async with AsyncExtractionServer(config) as server:
        results = await server.extract_many(jobs, concurrency=concurrency)
        return results, server.stats


def serve_jobs_sync(
    jobs: Sequence[PageJob],
    config: Optional[ServingConfig] = None,
    concurrency: int = 8,
) -> tuple[list[list[ExtractionRecord]], ServerStats]:
    """Blocking wrapper for callers without an event loop."""
    return asyncio.run(serve_jobs(jobs, config=config, concurrency=concurrency))


__all__ = [
    "AsyncExtractionServer",
    "RequestError",
    "ServerStats",
    "ServingConfig",
    "default_site_key",
    "serve_jobs",
    "serve_jobs_sync",
]

"""The one canonical way to seed corpus wrappers at snapshot 0.

The CLI, the golden regression corpus, the runtime benchmark fleet, and
tests all induce corpus-task wrappers the same way; this module is the
single copy of that recipe so they cannot drift apart (same inducer
defaults, same no-targets handling, same sample construction).
"""

from __future__ import annotations

from typing import Optional

from repro.dom.node import Document, Node
from repro.evolution.archive import SyntheticArchive
from repro.induction.induce import InductionResult, WrapperInducer
from repro.induction.samples import QuerySample
from repro.sites.corpus import CorpusTask


def snapshot0_annotation(
    corpus_task: CorpusTask,
) -> Optional[tuple[Document, list[Node]]]:
    """The task's snapshot-0 page and ground-truth targets, or ``None``
    when the role has no targets there."""
    archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
    doc = archive.snapshot(0)
    targets = archive.targets(doc, corpus_task.task.role)
    if not targets:
        return None
    return doc, targets


def induce_corpus_task(
    corpus_task: CorpusTask, inducer: Optional[WrapperInducer] = None
) -> Optional[tuple[InductionResult, QuerySample]]:
    """Induce a wrapper for one corpus task at snapshot 0.

    Returns ``(result, sample)``, or ``None`` when the task has no
    targets on the snapshot-0 page.  The default inducer is the
    evaluation protocol's ``WrapperInducer(k=10)``.
    """
    annotation = snapshot0_annotation(corpus_task)
    if annotation is None:
        return None
    doc, targets = annotation
    inducer = inducer or WrapperInducer(k=10)
    return inducer.induce_one(doc, targets), QuerySample(doc, targets)

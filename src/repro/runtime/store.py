"""Sharded, crash-safe wrapper artifact store.

A deployment serving every corpus site holds one :class:`WrapperArtifact`
per task; a flat directory of JSON files stops scaling the moment more
than one worker owns the fleet.  :class:`ShardedArtifactStore` partitions
artifacts across ``N`` shard directories by a *stable* hash of the site
key, so:

* co-located tasks (same site, different roles) land in the same shard —
  one sweep worker parses a site's archive once for all its wrappers;
* shard ownership is a pure function of the key: any process (today's
  CLI, tomorrow's fleet worker on another host) computes the same
  placement with no coordination and no directory listing;
* a sweep fleet assigns *whole shards* to workers — disjoint file sets,
  so workers never contend on the same artifact or report stream.

Placement uses SHA-1 of the site key (:func:`shard_index`), **not**
Python's builtin ``hash`` — the builtin is salted per process
(``PYTHONHASHSEED``) and would scatter the same key across different
shards in different processes.

Durability: :meth:`put` writes to a temp file in the destination shard
and publishes it with ``os.replace``, so a reader (or a crash) never
observes a partially written artifact — the temp name does not match the
``*.json`` pattern ``scan()``/``get()`` read.  Reads go through a small
in-process LRU keyed by file mtime, so repeated ``get()``s of a hot
wrapper skip JSON parsing + query validation while an out-of-band
``put`` from another process still invalidates naturally.

Drift telemetry lives next to the artifacts: per-wrapper
:class:`~repro.runtime.drift.DriftReport` streams append to
``<shard>/reports/<task>.jsonl`` (see :meth:`append_reports`), keeping
the store the single root a fleet needs to mount.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

# Placement is a first-class subsystem shared with the fleet, the
# serving front-end, and the router client (repro.cluster) — the store
# re-exports it so seed-era imports keep working.
from repro.cluster.placement import DEFAULT_SHARDS, shard_index, site_key_of
from repro.runtime.artifact import ArtifactError, WrapperArtifact

#: Name of the store metadata file at the store root.
STORE_META = "store.json"

#: Current store layout version; bump on incompatible layout changes.
STORE_VERSION = 1


class StoreError(RuntimeError):
    """The store root is missing, corrupt, or opened inconsistently."""


def _artifact_filename(task_id: str) -> str:
    return task_id.replace("/", "__") + ".json"


def _task_id_of(path: pathlib.Path) -> str:
    return path.stem.replace("__", "/")


@dataclass(frozen=True)
class CacheInfo:
    """Counters for the in-process artifact LRU."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int


class ShardedArtifactStore:
    """Artifacts partitioned over ``shard-NN/`` directories by site key.

    Layout::

        <root>/store.json            {"version": 1, "n_shards": N}
        <root>/shard-00/<task>.json  artifacts (atomic tmp+replace)
        <root>/shard-00/reports/<task>.jsonl   drift-report streams
        ...
        <root>/shard-NN/...

    Opening an existing root reads ``n_shards`` from the metadata;
    passing a conflicting ``n_shards`` raises (re-sharding is a
    migration, not an accident).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        n_shards: Optional[int] = None,
        cache_size: int = 128,
        epoch: Optional[int] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        meta_path = self.root / STORE_META
        if meta_path.exists():
            meta = self._read_meta(meta_path)
            if n_shards is not None and n_shards != meta["n_shards"]:
                raise StoreError(
                    f"store at {self.root} has {meta['n_shards']} shards; "
                    f"reopening with n_shards={n_shards} would misplace keys "
                    "(re-sharding requires an explicit migration)"
                )
            if epoch is not None and epoch != meta["epoch"]:
                raise StoreError(
                    f"store at {self.root} was written at epoch {meta['epoch']}; "
                    f"reopening with epoch={epoch} would mislabel its placement "
                    "(advancing the epoch requires an explicit migration)"
                )
            self.n_shards = int(meta["n_shards"])
            self.epoch = int(meta["epoch"])
        else:
            self.n_shards = DEFAULT_SHARDS if n_shards is None else int(n_shards)
            self.epoch = 0 if epoch is None else int(epoch)
            if self.n_shards < 1:
                raise StoreError("a store needs at least one shard")
            if self.epoch < 0:
                raise StoreError("a store epoch must be >= 0")
            self.root.mkdir(parents=True, exist_ok=True)
            for index in range(self.n_shards):
                self._shard_dir(index).mkdir(exist_ok=True)
            tmp = meta_path.with_name(STORE_META + f".tmp-{os.getpid()}")
            tmp.write_text(
                json.dumps(
                    {
                        "version": STORE_VERSION,
                        "n_shards": self.n_shards,
                        "epoch": self.epoch,
                    }
                )
                + "\n"
            )
            os.replace(tmp, meta_path)
        if cache_size < 0:
            raise StoreError("cache_size must be >= 0")
        self.cache_size = cache_size
        self._cache: OrderedDict[str, tuple[int, WrapperArtifact]] = OrderedDict()
        self._hits = self._misses = self._evictions = 0

    @staticmethod
    def _read_meta(meta_path: pathlib.Path) -> dict:
        try:
            meta = json.loads(meta_path.read_text())
            version = int(meta["version"])
            n_shards = int(meta["n_shards"])
            # Pre-epoch stores (written before migrate existed) are epoch 0.
            epoch = int(meta.get("epoch", 0))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"corrupt store metadata at {meta_path}: {exc}") from exc
        if version != STORE_VERSION:
            raise StoreError(
                f"unsupported store version {version} (supported: {STORE_VERSION})"
            )
        if n_shards < 1:
            raise StoreError(f"store metadata claims {n_shards} shards")
        if epoch < 0:
            raise StoreError(f"store metadata claims epoch {epoch}")
        return {"version": version, "n_shards": n_shards, "epoch": epoch}

    @classmethod
    def is_store(cls, root: str | os.PathLike) -> bool:
        """Whether ``root`` looks like a store (has the metadata file)."""
        return (pathlib.Path(root) / STORE_META).exists()

    # -- placement ----------------------------------------------------------

    def _shard_dir(self, index: int) -> pathlib.Path:
        return self.root / f"shard-{index:02d}"

    def shard_of(self, task_id: str) -> int:
        return shard_index(site_key_of(task_id), self.n_shards)

    def path_of(self, task_id: str) -> pathlib.Path:
        """Where the artifact for ``task_id`` lives (whether or not it
        exists yet) — placement is computable without touching disk."""
        return self._shard_dir(self.shard_of(task_id)) / _artifact_filename(task_id)

    # -- read/write ---------------------------------------------------------

    def put(self, artifact: WrapperArtifact) -> pathlib.Path:
        """Persist atomically: a crash mid-write leaves only an invisible
        temp file; readers see either the old generation or the new one."""
        final = self.path_of(artifact.task_id)
        tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(artifact.dumps() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():  # failed before replace: never publish
                tmp.unlink()
        self._remember(artifact.task_id, final, artifact)
        return final

    def get(self, task_id: str) -> WrapperArtifact:
        """Load one artifact, through the mtime-validated LRU.

        Raises :class:`KeyError` when absent and
        :class:`~repro.runtime.artifact.ArtifactError` when corrupt.
        """
        path = self.path_of(task_id)
        try:
            mtime = os.stat(path).st_mtime_ns
        except FileNotFoundError:
            self._cache.pop(task_id, None)
            raise KeyError(task_id) from None
        cached = self._cache.get(task_id)
        if cached is not None and cached[0] == mtime:
            self._hits += 1
            self._cache.move_to_end(task_id)
            return cached[1]
        self._misses += 1
        artifact = WrapperArtifact.load(path)
        self._remember(task_id, path, artifact, mtime=mtime)
        return artifact

    def remove(self, task_id: str) -> None:
        self._cache.pop(task_id, None)
        try:
            os.unlink(self.path_of(task_id))
        except FileNotFoundError:
            raise KeyError(task_id) from None

    def _remember(
        self,
        task_id: str,
        path: pathlib.Path,
        artifact: WrapperArtifact,
        mtime: Optional[int] = None,
    ) -> None:
        if self.cache_size == 0:
            return
        if mtime is None:
            try:
                mtime = os.stat(path).st_mtime_ns
            except FileNotFoundError:  # pragma: no cover - racing remover
                return
        self._cache[task_id] = (mtime, artifact)
        self._cache.move_to_end(task_id)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
            capacity=self.cache_size,
        )

    # -- enumeration --------------------------------------------------------

    def shard_task_ids(self, index: int) -> list[str]:
        """Task ids stored in one shard, sorted for determinism."""
        shard = self._shard_dir(index)
        if not shard.is_dir():
            raise StoreError(f"missing shard directory {shard}")
        return sorted(_task_id_of(path) for path in shard.glob("*.json"))

    def task_ids(self) -> list[str]:
        out: list[str] = []
        for index in range(self.n_shards):
            out.extend(self.shard_task_ids(index))
        return sorted(out)

    def scan(self) -> Iterator[WrapperArtifact]:
        """Iterate every stored artifact (shard by shard, sorted ids)."""
        for index in range(self.n_shards):
            for task_id in self.shard_task_ids(index):
                yield self.get(task_id)

    def __len__(self) -> int:
        return len(self.task_ids())

    def __contains__(self, task_id: str) -> bool:
        return self.path_of(task_id).exists()

    # -- drift-report streams ----------------------------------------------

    def reports_path(self, task_id: str) -> pathlib.Path:
        shard = self._shard_dir(self.shard_of(task_id))
        return shard / "reports" / (_artifact_filename(task_id) + "l")  # .jsonl

    def append_reports(self, task_id: str, reports: Iterable[dict]) -> pathlib.Path:
        """Append drift-report dicts to the wrapper's JSONL stream.

        Appends are the durability model here: report lines are an
        ever-growing telemetry stream (drift lead-time studies read the
        whole history), and each line is written in one ``write`` call of
        a line-buffered append handle, so concurrent sweeps of *other*
        wrappers never interleave into this stream (shard ownership
        keeps two sweeps off the same wrapper).
        """
        path = self.reports_path(task_id)
        path.parent.mkdir(exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            for report in reports:
                handle.write(json.dumps(report, sort_keys=True) + "\n")
        return path

    def read_reports(self, task_id: str) -> list[dict]:
        path = self.reports_path(task_id)
        if not path.exists():
            return []
        lines = path.read_text().splitlines()
        return [json.loads(line) for line in lines if line.strip()]

    def report_paths(self) -> list[pathlib.Path]:
        """Every report stream in the store (for artifact upload jobs)."""
        return sorted(self.root.glob("shard-*/reports/*.jsonl"))


def migrate_directory(
    directory: str | os.PathLike,
    root: str | os.PathLike,
    n_shards: int = DEFAULT_SHARDS,
) -> ShardedArtifactStore:
    """Import a flat artifact directory (the pre-store CLI layout) into a
    sharded store.  Corrupt files raise — a migration must not silently
    drop wrappers."""
    store = ShardedArtifactStore(root, n_shards=n_shards)
    for path in sorted(pathlib.Path(directory).glob("*.json")):
        try:
            store.put(WrapperArtifact.load(path))
        except ArtifactError as exc:
            raise StoreError(f"cannot migrate {path}: {exc}") from exc
    return store


@dataclass(frozen=True)
class MigrationMove:
    """One artifact's placement across a migration."""

    task_id: str
    src_shard: int
    dest_shard: int

    @property
    def moved(self) -> bool:
        return self.src_shard != self.dest_shard


@dataclass(frozen=True)
class MigrationPlan:
    """What ``migrate_store`` did (or, with ``dry_run``, would do)."""

    src_root: pathlib.Path
    dest_root: pathlib.Path
    src_shards: int
    dest_shards: int
    src_epoch: int
    dest_epoch: int
    moves: tuple[MigrationMove, ...]
    report_streams: int
    dry_run: bool

    @property
    def n_moved(self) -> int:
        return sum(1 for move in self.moves if move.moved)


def migrate_store(
    src: str | os.PathLike,
    dest: str | os.PathLike,
    n_shards: Optional[int] = None,
    epoch: Optional[int] = None,
    dry_run: bool = False,
) -> MigrationPlan:
    """Re-shard a store into a new root at the next epoch.

    Every artifact is re-placed under ``n_shards`` (default: the source
    count — a pure epoch bump) and published into ``dest`` with the
    store's usual tmp+fsync+``os.replace`` write, so the cut-over is
    **atomic per artifact**: a crash mid-migration leaves a prefix of
    fully-published artifacts and zero torn ones, and re-running the
    same migration resumes idempotently (an existing destination store
    is reopened when its recorded shape matches).  Drift-report streams
    ride along the same way (whole-file tmp+replace, so a resume never
    duplicates telemetry lines).  Corrupt source artifacts raise — a
    migration must not silently drop wrappers.

    ``epoch`` defaults to ``src.epoch + 1`` and must advance: the epoch
    is what lets serving hosts and routers tell the old placement from
    the new one during the cut-over.  ``dry_run`` computes and returns
    the full move plan without creating or writing anything.
    """
    if not ShardedArtifactStore.is_store(src):
        raise StoreError(f"{src} is not a sharded artifact store")
    source = ShardedArtifactStore(src)
    dest_root = pathlib.Path(dest)
    if dest_root.resolve() == source.root.resolve():
        raise StoreError(
            "cannot migrate a store onto itself — re-sharding cuts over "
            "into a fresh root, then traffic moves at the new epoch"
        )
    dest_shards = source.n_shards if n_shards is None else int(n_shards)
    if dest_shards < 1:
        raise StoreError("a store needs at least one shard")
    dest_epoch = source.epoch + 1 if epoch is None else int(epoch)
    if dest_epoch <= source.epoch:
        raise StoreError(
            f"migration epoch {dest_epoch} does not advance the source "
            f"epoch {source.epoch} — epochs order placements; stale clients "
            "must be able to tell old from new"
        )

    task_ids = source.task_ids()
    moves = tuple(
        MigrationMove(
            task_id=task_id,
            src_shard=source.shard_of(task_id),
            dest_shard=shard_index(site_key_of(task_id), dest_shards),
        )
        for task_id in task_ids
    )
    streams = sum(1 for task_id in task_ids if source.reports_path(task_id).exists())
    plan = MigrationPlan(
        src_root=source.root,
        dest_root=dest_root,
        src_shards=source.n_shards,
        dest_shards=dest_shards,
        src_epoch=source.epoch,
        dest_epoch=dest_epoch,
        moves=moves,
        report_streams=streams,
        dry_run=dry_run,
    )
    if dry_run:
        return plan

    dest_store = ShardedArtifactStore(dest_root, n_shards=dest_shards, epoch=dest_epoch)
    for task_id in task_ids:
        try:
            artifact = source.get(task_id)
        except ArtifactError as exc:
            raise StoreError(f"cannot migrate {task_id!r}: {exc}") from exc
        dest_store.put(artifact)
        src_reports = source.reports_path(task_id)
        if src_reports.exists():
            dest_reports = dest_store.reports_path(task_id)
            dest_reports.parent.mkdir(exist_ok=True)
            tmp = dest_reports.with_name(dest_reports.name + f".tmp-{os.getpid()}")
            tmp.write_text(src_reports.read_text())
            os.replace(tmp, dest_reports)
    missing = [task_id for task_id in task_ids if task_id not in dest_store]
    if missing:  # pragma: no cover - put() raising is the expected path
        raise StoreError(f"migration lost {len(missing)} artifact(s): {missing[:3]}")
    return plan


def artifacts_from_path(path: str | os.PathLike) -> list[WrapperArtifact]:
    """Load every artifact under ``path`` — a store root or a flat
    directory of ``*.json`` files (the CLI accepts both)."""
    if ShardedArtifactStore.is_store(path):
        return list(ShardedArtifactStore(path).scan())
    artifacts = []
    for file in sorted(pathlib.Path(path).glob("*.json")):
        try:
            artifacts.append(WrapperArtifact.load(file))
        except ArtifactError as exc:
            raise ArtifactError(f"{file}: {exc}") from exc
    return artifacts


def open_or_none(path: str | os.PathLike) -> Optional[ShardedArtifactStore]:
    """The store at ``path`` when it is one, else ``None``."""
    if ShardedArtifactStore.is_store(path):
        return ShardedArtifactStore(path)
    return None


__all__ = [
    "CacheInfo",
    "DEFAULT_SHARDS",
    "MigrationMove",
    "MigrationPlan",
    "STORE_META",
    "STORE_VERSION",
    "ShardedArtifactStore",
    "StoreError",
    "artifacts_from_path",
    "migrate_directory",
    "migrate_store",
    "open_or_none",
    "shard_index",
    "site_key_of",
]

"""Multi-process drift-check fleet over a sharded artifact store.

``python -m repro.runtime check`` replays one artifact directory in one
process and stops each wrapper at its *first* drift.  The fleet is the
continuous-operations version of that loop:

* **sharded work assignment** — each worker process owns whole store
  shards (``ShardedArtifactStore`` partitions by site key, so a site's
  wrappers — and their archive — never split across workers), reopens
  the store read-only by path, and never touches another worker's
  files;
* **full-stream telemetry** — every (wrapper, snapshot) check emits a
  :class:`~repro.runtime.drift.DriftReport`, *including* the soft
  c-change signals and the per-member ensemble vote the detector
  already computes; the stream is appended as JSONL under the store
  (``<shard>/reports/<task>.jsonl``) for the ROADMAP's drift lead-time
  study;
* **repair chains** — on hard drift the worker calls
  :func:`~repro.runtime.drift.reinduce` and *keeps sweeping with the
  repaired generation*, so one sweep over a long archive records
  multi-generation repair chains (gen 0 breaks at snapshot 7, gen 1 at
  19, ...), and writes each repaired generation back with
  ``store.put`` (atomic, so a concurrently serving process flips to
  the new generation cleanly).

Workers rebuild the synthetic corpus locally by site id — site specs
hold closures and do not pickle; only paths, ints, and result dicts
cross process boundaries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.evolution.archive import SyntheticArchive
from repro.runtime.artifact import ArtifactError, WrapperArtifact
from repro.runtime.drift import DriftConfig, DriftDetector, DriftReport, reinduce
from repro.runtime.store import ShardedArtifactStore, StoreError


@dataclass(frozen=True)
class SweepConfig:
    """One sweep's shape.

    ``n_snapshots`` replays snapshots ``1 .. n_snapshots - 1`` (snapshot
    0 is the induction page).  ``repair`` re-induces on hard drift and
    continues with the repaired wrapper; without it the wrapper's sweep
    stops at its first drift.  ``workers`` processes split the store's
    shards.  ``drift`` forwards detector thresholds.
    """

    n_snapshots: int = 20
    repair: bool = True
    workers: int = 1
    drift: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        if self.n_snapshots < 2:
            raise ValueError("a sweep needs at least snapshots 0 and 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass(frozen=True)
class WrapperSweep:
    """Outcome of sweeping one wrapper across the archive."""

    task_id: str
    site_id: str
    checked: int
    drift_snapshots: tuple[int, ...]
    signals: tuple[str, ...]
    final_generation: int
    repairs: int
    repair_error: str = ""

    @property
    def drifted(self) -> bool:
        return bool(self.drift_snapshots)

    @property
    def repair_failed(self) -> bool:
        return bool(self.repair_error)


@dataclass(frozen=True)
class SweepSummary:
    """Fleet-level rollup of one sweep."""

    wrappers: tuple[WrapperSweep, ...]
    n_snapshots: int
    workers: int

    @property
    def checked(self) -> int:
        return sum(w.checked for w in self.wrappers)

    @property
    def drifted(self) -> int:
        return sum(1 for w in self.wrappers if w.drifted)

    @property
    def repaired(self) -> int:
        return sum(w.repairs for w in self.wrappers)

    @property
    def repair_failures(self) -> int:
        return sum(1 for w in self.wrappers if w.repair_failed)


def report_line(report: DriftReport, generation: int) -> dict:
    """One JSONL telemetry line for a (wrapper, snapshot) check."""
    return {
        "task_id": report.task_id,
        "snapshot": report.snapshot,
        "generation": generation,
        "signals": list(report.signals),
        "drifted": report.drifted,
        "result_count": report.result_count,
        "disagreeing_members": report.disagreeing_members,
        "member_count": report.member_count,
    }


def sweep_wrapper(
    artifact: WrapperArtifact,
    archive: SyntheticArchive,
    config: SweepConfig,
    detector: Optional[DriftDetector] = None,
) -> tuple[WrapperSweep, list[dict], Optional[WrapperArtifact]]:
    """Sweep one wrapper over its archive, repairing as it goes.

    Returns the per-wrapper outcome, the full telemetry stream, and the
    final artifact generation when a repair happened (``None`` when the
    stored generation is still current).
    """
    detector = detector or DriftDetector(config.drift)
    current = artifact
    lines: list[dict] = []
    drift_snapshots: list[int] = []
    signals: list[str] = []
    repairs = 0
    repair_error = ""
    checked = 0
    for index in range(1, config.n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        report = detector.check(current, doc, snapshot=index)
        checked += 1
        lines.append(report_line(report, current.generation))
        if not report.drifted:
            continue
        drift_snapshots.append(index)
        signals.extend(s for s in report.signals if s not in signals)
        if not config.repair:
            break
        try:
            current = reinduce(current, doc, snapshot=index)
            repairs += 1
        except ArtifactError as exc:
            repair_error = str(exc)
            break
    outcome = WrapperSweep(
        task_id=artifact.task_id,
        site_id=artifact.site_id,
        checked=checked,
        drift_snapshots=tuple(drift_snapshots),
        signals=tuple(signals),
        final_generation=current.generation,
        repairs=repairs,
        repair_error=repair_error,
    )
    return outcome, lines, (current if repairs else None)


def _site_archives() -> dict:
    """site_id → spec for the synthetic corpus (built in each worker —
    specs hold closures and cannot cross process boundaries)."""
    from repro.sites.corpus import build_corpus

    return {spec.site_id: spec for spec in build_corpus()}


def _sweep_shards(
    store_root: str, shard_indexes: Sequence[int], config: SweepConfig
) -> list[dict]:
    """Worker: sweep every wrapper in the assigned shards.

    Owns its shards end to end — appends the telemetry streams and puts
    repaired generations back itself (both are shard-local files, and
    ``put`` publishes atomically), returning only plain-dict outcomes.
    """
    store = ShardedArtifactStore(store_root)
    specs = _site_archives()
    detector = DriftDetector(config.drift)
    archives: dict[str, SyntheticArchive] = {}
    out: list[dict] = []
    for shard in shard_indexes:
        for task_id in store.shard_task_ids(shard):
            artifact = store.get(task_id)
            spec = specs.get(artifact.site_id)
            if spec is None:
                out.append(
                    {
                        "task_id": task_id,
                        "error": f"unknown site id {artifact.site_id!r}",
                    }
                )
                continue
            archive = archives.get(artifact.site_id)
            if archive is None:
                archive = SyntheticArchive(spec, n_snapshots=config.n_snapshots)
                archives[artifact.site_id] = archive
            outcome, lines, repaired = sweep_wrapper(
                artifact, archive, config, detector
            )
            store.append_reports(task_id, lines)
            if repaired is not None:
                store.put(repaired)
            out.append(
                {
                    "task_id": outcome.task_id,
                    "site_id": outcome.site_id,
                    "checked": outcome.checked,
                    "drift_snapshots": list(outcome.drift_snapshots),
                    "signals": list(outcome.signals),
                    "final_generation": outcome.final_generation,
                    "repairs": outcome.repairs,
                    "repair_error": outcome.repair_error,
                }
            )
    return out


def _assign_shards(n_shards: int, workers: int) -> list[list[int]]:
    """Round-robin whole shards over workers (never split a shard)."""
    groups: list[list[int]] = [[] for _ in range(min(workers, n_shards))]
    for shard in range(n_shards):
        groups[shard % len(groups)].append(shard)
    return groups


def sweep_store(
    store: ShardedArtifactStore | str | os.PathLike,
    config: Optional[SweepConfig] = None,
) -> SweepSummary:
    """Sweep every wrapper in the store for drift; repair and persist.

    With ``config.workers > 1`` whole shards fan out over a process
    pool; each worker writes only its own shards' files, so the sweep
    needs no locks.  Raises :class:`StoreError` when any wrapper names a
    site the corpus does not know (a store/corpus mismatch is an
    operational bug, not a drift signal).
    """
    config = config or SweepConfig()
    if not isinstance(store, ShardedArtifactStore):
        store = ShardedArtifactStore(store)
    root = str(store.root)
    groups = _assign_shards(store.n_shards, config.workers)
    if len(groups) <= 1:
        rows = _sweep_shards(root, groups[0] if groups else [], config)
    else:
        with ProcessPoolExecutor(max_workers=len(groups)) as pool:
            parts = pool.map(
                _sweep_shards, [root] * len(groups), groups, [config] * len(groups)
            )
            rows = [row for part in parts for row in part]
    errors = [row for row in rows if "error" in row]
    if errors:
        detail = "; ".join(f"{row['task_id']}: {row['error']}" for row in errors)
        raise StoreError(f"sweep aborted: {detail}")
    wrappers = tuple(
        sorted(
            (
                WrapperSweep(
                    task_id=row["task_id"],
                    site_id=row["site_id"],
                    checked=row["checked"],
                    drift_snapshots=tuple(row["drift_snapshots"]),
                    signals=tuple(row["signals"]),
                    final_generation=row["final_generation"],
                    repairs=row["repairs"],
                    repair_error=row["repair_error"],
                )
                for row in rows
            ),
            key=lambda w: w.task_id,
        )
    )
    return SweepSummary(
        wrappers=wrappers, n_snapshots=config.n_snapshots, workers=len(groups)
    )


__all__ = [
    "SweepConfig",
    "SweepSummary",
    "WrapperSweep",
    "report_line",
    "sweep_store",
    "sweep_wrapper",
]

"""HTTP/1.1 JSON front-end: the facade over the wire.

ROADMAP's "real socket front-end over :class:`AsyncExtractionServer`":
an asyncio TCP server speaking minimal HTTP/1.1 with JSON bodies, built
directly on stream reader/writers (no third-party dependencies).  Every
endpoint maps one facade verb, and every payload is the corresponding
facade type's ``to_payload()`` form — the protocol *is* the facade
serialization, which is what lets
:class:`~repro.api.remote.RemoteWrapperClient` be a drop-in replacement
for :class:`~repro.api.client.WrapperClient`.

=============  ======  ==========================================  =========
endpoint       method  body                                        returns
=============  ======  ==========================================  =========
/healthz       GET     —                                           liveness + serving stats
/metrics       GET     —                                           traffic counters (see below)
/wrappers      GET     —                                           deployed handle list
/wrappers/K    GET     —                                           one handle (404 unknown)
/wrappers/K    DELETE  —                                           ``{"deleted": K}``
/induce        POST    site_key, mode, samples[], options          handle
/extract       POST    site_key, html                              extraction result
/check         POST    site_key, html                              check result
/extract_many  POST    items[] of {site_key, html}                 per-item result slots
/repair        POST    site_key, html, target_paths?               handle
/deploy        POST    artifact (WrapperArtifact payload)          handle
=============  ======  ==========================================  =========

``/extract_many`` answers in one of two wire modes, negotiated via the
request's ``Accept`` header.  The default (any ``Accept``) is a single
JSON object ``{"results": [slot, ...]}`` in item order, where each slot
is ``{"status": 200, "result": <extraction payload>}`` on success or
``{"status": S, "error": ..., "code": ...}`` on a per-item failure —
the inner payloads are byte-identical to ``/extract`` responses, which
keeps every remote/router backend parity-exact.  With ``Accept:
application/x-ndjson`` the response streams length-prefixed NDJSON
frames instead (``Content-Type: application/x-ndjson``, ``Connection:
close``, no ``Content-Length``): each slot is one frame of the form
``<decimal byte length>\\n<slot JSON><newline>`` where the declared
length covers the JSON line *including* its trailing newline, and the
stream ends with a lone ``0\\n`` terminator.  Slots stream in item order
as they complete, so a bulk caller starts consuming results before the
last page is extracted.  Per-item gates (403/404/421/422/429) fail the
*slot*, never the batch; only authentication (401) rejects the whole
request.

Traffic hardening (ROADMAP's "safe to point the internet at", all
**off by default** — a no-auth launch behaves exactly as before):

* **per-tenant API keys** (``NetConfig.auth`` / ``serve --listen
  --auth-keys FILE``) are enforced *before any routing*: a missing or
  unknown ``Authorization: Bearer <key>`` (or ``X-API-Key``) header is
  a typed ``401 unauthorized``; a valid key addressing a site key in a
  tenant namespace the key does not grant is ``403 forbidden`` — the
  enforcement point the ``tenant::`` isolation has been missing since
  the cluster PR.  ``/healthz`` and ``/metrics`` stay open so routers
  and probes keep working without credentials (they expose counters,
  never wrapper data);
* **per-tenant quotas** (``NetConfig.quota``): a token-bucket request
  rate and an in-flight cap, both per tenant, answered with ``429
  rate_limited`` + a ``Retry-After`` header.  Limiter state is
  LRU-bounded (:class:`~repro.runtime.auth.TenantRateLimiter`) so
  distinct dead tenants never grow server memory;
* **structured access logs** (``NetConfig.access_log``): one JSONL
  object per answered request — tenant, verb, status, latency,
  coalesced flag;
* **GET /metrics**: admission-queue depth, coalescing rate, parse-cache
  hit/miss/eviction/byte counters, per-status and per-tenant
  request/error/429 counters, 421 rejection count — the scrape surface
  for ``RouterClient.metrics()`` and nightly CI.

Request routing by cost:

* ``extract``/``check`` for node/ensemble wrappers become
  :class:`~repro.runtime.extractor.PageJob`\\ s admitted into the shared
  :class:`~repro.runtime.serve.AsyncExtractionServer` — concurrent
  clients hitting the same rendered page *coalesce onto one parse* and
  are demultiplexed per caller, exactly as in-process serving does;
* ``induce``/``repair`` (and record-mode extraction, whose relative
  field queries need a live DOM) run on the default thread executor so
  long inductions never stall the event loop or other connections.

Failure containment: malformed JSON → 400, unknown wrapper → 404,
oversized body → 413 (bounded by ``NetConfig.max_body_bytes`` *before*
the body is read), a key placing into a shard this host does not own →
421 with code ``shard_not_owned`` (cluster members launched with
``--own-shards``; the body names the wanted shard and the owned
group), a client disconnecting mid-request just ends its connection —
the server and every other connection keep serving.  Error bodies are
``{"error": message, "code": code, ...}``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Awaitable, Callable, Optional
from urllib.parse import unquote

from repro.api.client import WrapperClient
from repro.api.results import (
    FacadeError,
    check_from_records,
    extraction_wrappers,
    facade_mode,
    result_from_records,
)
from repro.cluster.placement import (
    PlacementError,
    ShardOwnership,
    qualify_key,
    tenant_of,
)
from repro.runtime.artifact import ArtifactError
from repro.runtime.auth import (
    AccessLog,
    ApiKeyTable,
    DEFAULT_MAX_TENANTS,
    InflightGauge,
    NetMetrics,
    QuotaConfig,
    TenantRateLimiter,
    WILDCARD_TENANT,
)
from repro.runtime.extractor import PageJob
from repro.runtime.serve import AsyncExtractionServer, RequestError, ServingConfig
from repro.runtime.store import StoreError

#: HTTP status → reason phrases the server emits.  ``_reason`` falls
#: back to the stdlib table, then to "Unknown" — an unlisted status
#: must never crash (or blank) the response writer.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    421: "Misdirected Request",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


def _reason(status: int) -> str:
    """The reason phrase for any status — listed, stdlib-known, or not."""
    return _REASONS.get(status) or http.client.responses.get(status) or "Unknown"


@dataclass(frozen=True)
class NetConfig:
    """Network front-end limits.

    ``max_body_bytes`` bounds request bodies (checked against
    ``Content-Length`` before reading — an oversized upload is refused
    without buffering it).  ``max_header_bytes`` bounds the request
    head.  ``serving`` configures the shared extraction server behind
    ``extract``/``check``.

    The hardening knobs all default to off (a no-auth launch is fully
    backward compatible): ``auth`` is the per-tenant API key table
    (``None`` = unauthenticated), ``quota`` the per-tenant rate/
    in-flight limits (``None`` or a disabled config = unlimited), and
    ``access_log`` a :class:`~repro.runtime.auth.AccessLog` receiving
    one JSONL record per answered request.
    """

    max_body_bytes: int = 8 * 1024 * 1024
    max_header_bytes: int = 32768
    serving: ServingConfig = field(default_factory=ServingConfig)
    auth: Optional[ApiKeyTable] = None
    quota: Optional[QuotaConfig] = None
    access_log: Optional[AccessLog] = None
    #: Dedicated bounded executor for ``/induce``/``/repair``: heavy
    #: induction traffic queues here instead of starving the default
    #: thread pool that extract/deploy/store loads run on.
    induce_workers: int = 2

    def __post_init__(self) -> None:
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.max_header_bytes < 256:
            raise ValueError("max_header_bytes must be >= 256")
        if self.induce_workers < 1:
            raise ValueError("induce_workers must be >= 1")


class _HTTPError(Exception):
    """Internal: aborts a request with a specific status.

    ``extra`` fields ride in the JSON error body next to ``error`` and
    ``code`` — the typed ownership rejection uses them to tell the
    caller which shard the key wanted and which shards this host owns.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "",
        close: bool = False,
        extra: Optional[dict] = None,
        headers: Optional[dict] = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code or {
            400: "bad_request",
            401: "unauthorized",
            403: "forbidden",
            404: "not_found",
            405: "method_not_allowed",
            411: "length_required",
            413: "payload_too_large",
            421: "shard_not_owned",
            422: "unprocessable",
            429: "rate_limited",
            431: "headers_too_large",
        }.get(status, "error")
        self.close = close
        self.extra = extra or {}
        #: Extra response headers (``Retry-After``, ``WWW-Authenticate``).
        self.headers = headers or {}

    def payload(self) -> dict:
        return {"error": self.message, "code": self.code, **self.extra}


class _NDJSONStream:
    """Internal: a streamed ``/extract_many`` answer.

    Wraps the ordered per-item tasks; the connection handler writes one
    length-prefixed frame per completed slot instead of a JSON body.
    """

    def __init__(self, tasks: list) -> None:
        self.tasks = tasks


class WrapperHTTPServer:
    """The facade served over TCP.

    Usage::

        server = WrapperHTTPServer(WrapperClient(store="store/"))
        host, port = await server.start("127.0.0.1", 8080)
        ...
        await server.aclose()

    One server owns one :class:`~repro.api.client.WrapperClient` (its
    registry is the single source of truth for every connection) and
    one :class:`AsyncExtractionServer` all extraction traffic funnels
    through.

    ``ownership`` makes this host a cluster member: every keyed request
    is placed with the shared placement function and answered with a
    typed ``421 shard_not_owned`` JSON error when the key belongs to a
    shard outside the owned group (``serve --listen --own-shards``) —
    a misrouted request is a deployment bug the caller must see, never
    data quietly served from a host that does not own it.  ``/healthz``
    reports the owned shard group so routers and probes can audit the
    cluster map against reality.
    """

    def __init__(
        self,
        client: WrapperClient,
        config: Optional[NetConfig] = None,
        *,
        ownership: Optional[ShardOwnership] = None,
        epoch: int = 0,
    ) -> None:
        self.client = client
        self.config = config or NetConfig()
        self.ownership = ownership
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.epoch = int(epoch)
        self._serving: Optional[AsyncExtractionServer] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[tuple[str, int]] = None
        # Hardening state (None everywhere = the seed-era open server).
        self._auth = self.config.auth
        quota = self.config.quota
        self.metrics = NetMetrics(
            max_tenants=quota.max_tenants if quota is not None else DEFAULT_MAX_TENANTS
        )
        self._limiter: Optional[TenantRateLimiter] = None
        self._inflight: Optional[InflightGauge] = None
        if quota is not None and quota.rate > 0:
            self._limiter = TenantRateLimiter(
                quota.rate, quota.effective_burst, quota.max_tenants
            )
        if quota is not None and quota.max_inflight > 0:
            self._inflight = InflightGauge(quota.max_inflight)
        self._access_log = self.config.access_log
        # Induce-side observability (satellite of the induction fast
        # path): pool depth/peak and per-request latency for the
        # dedicated induce executor, surfaced in /metrics.
        self._induce_pool: Optional[ThreadPoolExecutor] = None
        self._induce_depth = 0
        self._induce_depth_peak = 0
        self._induce_requests = 0
        self._induce_latency_total_ms = 0.0
        self._induce_latency_max_ms = 0.0

    def _check_owned(self, site_key: str) -> None:
        """421 for keys outside this host's shard group (placement is
        computed on the tenant-qualified key, exactly as routers do)."""
        if self.ownership is None:
            return
        try:
            qualified = qualify_key(site_key, self.client.tenant)
        except PlacementError as exc:
            raise _HTTPError(422, str(exc)) from exc
        shard = self.ownership.shard_of(qualified)
        if shard not in self.ownership.owned:
            # The epoch rides in the rejection so a client holding a
            # stale ClusterMap can tell "misrouted" (same epoch: fail
            # over to the replica) from "my map is old" (newer epoch:
            # refresh ownership from /healthz, then retry once).
            raise _HTTPError(
                421,
                f"site key {site_key!r} places into shard {shard}, "
                f"which this host does not own",
                code="shard_not_owned",
                extra={
                    "site_key": site_key,
                    "shard": shard,
                    "owned": self.ownership.sorted_owned(),
                    "n_shards": self.ownership.n_shards,
                    "epoch": self.epoch,
                },
            )

    # -- auth + quotas -------------------------------------------------------

    def _authenticate(self, headers: dict) -> Optional[str]:
        """The tenant this request's API key grants (``"*"`` = every
        tenant), or ``None`` when auth is not configured.

        401 before any routing: an unauthenticated request must learn
        nothing — not even whether an endpoint or wrapper exists.
        """
        if self._auth is None:
            return None
        key = ""
        authorization = headers.get("authorization", "")
        if authorization.lower().startswith("bearer "):
            key = authorization[len("bearer ") :].strip()
        if not key:
            key = headers.get("x-api-key", "").strip()
        if not key:
            raise _HTTPError(
                401,
                "missing API key (send 'Authorization: Bearer <key>' "
                "or 'X-API-Key: <key>')",
                headers={"WWW-Authenticate": "Bearer"},
            )
        tenant = self._auth.tenant_for(key)
        if tenant is None:
            raise _HTTPError(
                401, "unknown API key", headers={"WWW-Authenticate": "Bearer"}
            )
        return tenant

    def _qualified(self, site_key: str) -> str:
        """Tenant-qualify a key exactly as routing does (422 malformed)."""
        try:
            return qualify_key(site_key, self.client.tenant)
        except PlacementError as exc:
            raise _HTTPError(422, str(exc)) from exc

    def _authorize(self, principal: Optional[str], site_key: str) -> None:
        """403 when the key's tenant does not own the request's
        ``tenant::`` namespace — the enforcement point for the
        isolation the cluster PR introduced."""
        if principal is None or principal == WILDCARD_TENANT:
            return
        if tenant_of(self._qualified(site_key)) != principal:
            raise _HTTPError(
                403,
                f"API key for tenant {principal!r} cannot address "
                f"site key {site_key!r}",
            )

    def _admit(self, tenant: str, ctx: dict) -> None:
        """Per-tenant quota gate: 429 + Retry-After when the tenant's
        token bucket is dry or its in-flight cap is reached.  Runs
        before any store or extraction work — a throttled request must
        be cheap to refuse."""
        ctx["tenant"] = tenant
        if self._limiter is not None:
            allowed, retry_after = self._limiter.acquire(tenant)
            if not allowed:
                raise _HTTPError(
                    429,
                    f"tenant {tenant!r} exceeded its request rate",
                    extra={"retry_after": round(retry_after, 3)},
                    headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
        if self._inflight is not None:
            if not self._inflight.try_enter(tenant):
                raise _HTTPError(
                    429,
                    f"tenant {tenant!r} has too many requests in flight",
                    extra={"retry_after": 1.0},
                    headers={"Retry-After": "1"},
                )
            ctx["inflight"] = tenant

    def _check_key(
        self, site_key: str, principal: Optional[str], ctx: dict
    ) -> None:
        """Every keyed verb's gate, in order: 403 (authorization),
        429 (quota), 421 (shard ownership)."""
        self._authorize(principal, site_key)
        self._admit(tenant_of(self._qualified(site_key)), ctx)
        self._check_owned(site_key)

    def _owned_keys(self) -> list[str]:
        """Keys restricted to owned shards — a shared store holds every
        host's artifacts, but each host must only report the shard
        group it answers for (router scatter-gather merges host
        listings assuming disjointness).  Filtering keys *before*
        loading keeps unowned artifacts out of this host's store reads
        and cache."""
        keys = self.client.keys()
        if self.ownership is not None and not self.ownership.is_total:
            keys = [key for key in keys if self.ownership.owns_task(key)]
        return keys

    def _owned_handles(self) -> list:
        return [self.client.get(key) for key in self._owned_keys()]

    def _owned_count(self) -> int:
        if self.ownership is None or self.ownership.is_total:
            return len(self.client)
        return len(self._owned_keys())

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    @property
    def serving_stats(self):
        """Counters of the shared extraction server (also in /healthz)."""
        if self._serving is None:
            raise RuntimeError("server is not started")
        return self._serving.stats

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._serving = AsyncExtractionServer(self.config.serving)
        await self._serving.start()
        self._induce_pool = ThreadPoolExecutor(
            max_workers=self.config.induce_workers,
            thread_name_prefix="repro-induce",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host,
            port,
            limit=self.config.max_header_bytes + 1024,
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._serving is not None:
            await self._serving.aclose()
            self._serving = None
        if self._induce_pool is not None:
            self._induce_pool.shutdown(wait=False, cancel_futures=True)
            self._induce_pool = None
        if self._access_log is not None:
            self._access_log.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def __aenter__(self) -> "WrapperHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- connection handling ------------------------------------------------

    def _observe(self, ctx: dict, status: int, started: float) -> None:
        """Metrics + access log for one answered request (including
        protocol violations, which carry an empty tenant/verb)."""
        self.metrics.observe(ctx.get("tenant", ""), status)
        if self._access_log is not None:
            self._access_log.emit(
                tenant=ctx.get("tenant", ""),
                verb=ctx.get("verb", ""),
                status=status,
                latency_ms=(time.perf_counter() - started) * 1000.0,
                coalesced=bool(ctx.get("coalesced", False)),
                induce_ms=ctx.get("induce_ms"),
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                started = time.perf_counter()
                ctx: dict = {}
                try:
                    request = await self._read_request(reader)
                except _HTTPError as exc:
                    # Protocol violations (bad request line, oversized
                    # head/body) are answered, then the connection dies —
                    # the stream position is no longer trustworthy.
                    self._observe(ctx, exc.status, started)
                    await self._write_response(
                        writer, exc.status, exc.payload(), close=True,
                        headers=exc.headers,
                    )
                    break
                if request is None:  # client closed (possibly mid-request)
                    break
                method, path, headers, body = request
                ctx["verb"] = f"{method} {path.split('?', 1)[0]}"
                close = headers.get("connection", "").lower() == "close"
                extra_headers: dict = {}
                try:
                    try:
                        status, payload = await self._dispatch(
                            method, path, headers, body, ctx
                        )
                    except _HTTPError as exc:
                        status = exc.status
                        payload = exc.payload()
                        close = close or exc.close
                        extra_headers = exc.headers
                    except (
                        FacadeError, ArtifactError, RequestError, StoreError
                    ) as exc:
                        status, payload = 422, {
                            "error": str(exc), "code": "unprocessable"
                        }
                    except KeyError as exc:
                        key = exc.args[0] if exc.args else ""
                        status, payload = 404, {
                            "error": f"unknown site_key {key!r}",
                            "code": "unknown_wrapper",
                        }
                    except Exception as exc:  # noqa: BLE001 - last-resort isolation
                        status, payload = 500, {"error": str(exc), "code": "internal"}
                finally:
                    if self._inflight is not None and "inflight" in ctx:
                        self._inflight.leave(ctx["inflight"])
                self._observe(ctx, status, started)
                if isinstance(payload, _NDJSONStream):
                    # Streamed bulk answer: frames instead of a body, and
                    # the connection closes (there is no Content-Length
                    # for the peer to resynchronize on).
                    await self._write_stream(writer, status, payload)
                    break
                await self._write_response(
                    writer, status, payload, close, headers=extra_headers
                )
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request off the wire, or ``None`` when the client is gone.

        Raises :class:`_HTTPError` for protocol violations that deserve
        an answer (bad request line, oversized head/body).
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # closed between requests or mid-head
        except asyncio.LimitOverrunError:
            raise _HTTPError(431, "request head too large", close=True) from None
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HTTPError(400, "malformed request line", close=True) from None
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        # Body framing: the server only speaks Content-Length.  Chunked
        # (or any other) Transfer-Encoding is a typed 411, as is a POST
        # that promises a body without declaring its length — treating
        # either as "empty body" would fail deeper with a misleading
        # 400/422 about invalid JSON.
        if "transfer-encoding" in headers:
            raise _HTTPError(
                411,
                "Transfer-Encoding is not supported; send Content-Length",
                close=True,
            )
        raw_length = headers.get("content-length")
        if raw_length is None:
            if method.upper() in ("POST", "PUT", "PATCH"):
                raise _HTTPError(
                    411, f"{method.upper()} requires Content-Length", close=True
                )
            length = 0
        else:
            try:
                length = int(raw_length)
            except ValueError:
                raise _HTTPError(400, "invalid Content-Length", close=True) from None
            if length < 0:
                raise _HTTPError(400, "negative Content-Length", close=True)
        if length > self.config.max_body_bytes:
            # Refuse before reading: the body never enters memory.
            raise _HTTPError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
                close=True,
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None  # disconnect mid-body
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool,
        headers: Optional[dict] = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_reason(status)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, status: int, stream: _NDJSONStream
    ) -> None:
        """Write a streamed bulk answer: length-prefixed NDJSON frames.

        Each frame is ``<decimal byte length>\\n<slot JSON>\\n`` (the
        length covers the JSON line including its newline); a lone
        ``0\\n`` terminates the stream.  Slots are awaited in item order,
        so frames hit the wire as soon as their item completes without
        reordering.  A peer that vanishes mid-stream cancels the
        remaining items.
        """
        head = (
            f"HTTP/1.1 {status} {_reason(status)}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        try:
            for task in stream.tasks:
                slot = await task
                line = (json.dumps(slot) + "\n").encode("utf-8")
                writer.write(b"%d\n" % len(line) + line)
                await writer.drain()
            writer.write(b"0\n")
            await writer.drain()
        finally:
            for task in stream.tasks:
                task.cancel()

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict, body: bytes, ctx: dict
    ):
        # Route on the RAW path: the query split and every endpoint
        # match happen before any percent-decoding, and only the
        # /wrappers/<key> remainder is ever unquoted.  Decoding first
        # let encoded key bytes (%2F, %3F) grow extra path/query
        # structure — '/wrappers%2Fx' routed as a key lookup, and a key
        # segment could alias a fixed endpoint.
        path = path.split("?", 1)[0]
        # /healthz and /metrics stay open (no auth, no quotas): routers
        # probe them to drive failover and scrape counters — they
        # expose liveness and aggregates, never wrapper data.
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "use GET /healthz")
            count = await self._in_executor(self._owned_count)
            health = {
                "ok": True,
                "wrappers": count,
                "epoch": self.epoch,
                "serving": self.serving_stats.as_dict(),
            }
            if self.ownership is not None:
                health["shards"] = self.ownership.as_payload()
            if self.client.tenant:
                health["tenant"] = self.client.tenant
            return 200, health
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "use GET /metrics")
            return 200, self._metrics_payload()
        principal = self._authenticate(headers)
        # Registry reads hit the store (directory scans, artifact JSON
        # parsing on cache misses) — disk work, so off the event loop.
        if path == "/wrappers" and method == "GET":
            self._admit(
                principal if principal not in (None, WILDCARD_TENANT) else "",
                ctx,
            )
            return 200, await self._in_executor(
                lambda: {
                    "wrappers": [
                        handle.to_payload()
                        for handle in self._owned_handles()
                        if principal in (None, WILDCARD_TENANT)
                        or tenant_of(handle.site_key) == principal
                    ]
                }
            )
        if path.startswith("/wrappers/"):
            site_key = unquote(path[len("/wrappers/") :])
            self._check_key(site_key, principal, ctx)
            if method == "GET":
                return 200, await self._in_executor(
                    lambda: self.client.get(site_key).to_payload()
                )
            if method == "DELETE":
                await self._in_executor(lambda: self.client.delete(site_key))
                return 200, {"deleted": site_key}
            raise _HTTPError(405, "use GET or DELETE on /wrappers/<site_key>")
        if path == "/induce" and method == "POST":
            return await self._op_induce(self._json(body), principal, ctx)
        if path == "/extract" and method == "POST":
            return await self._op_extract(
                self._json(body), principal, ctx, check_only=False
            )
        if path == "/check" and method == "POST":
            return await self._op_extract(
                self._json(body), principal, ctx, check_only=True
            )
        if path == "/extract_many" and method == "POST":
            return await self._op_extract_many(
                self._json(body), principal, ctx,
                stream="application/x-ndjson" in headers.get("accept", ""),
            )
        if path == "/repair" and method == "POST":
            return await self._op_repair(self._json(body), principal, ctx)
        if path == "/deploy" and method == "POST":
            return await self._op_deploy(self._json(body), principal, ctx)
        if path in (
            "/induce", "/extract", "/check", "/extract_many", "/repair", "/deploy"
        ):
            raise _HTTPError(405, f"use POST {path}")
        raise _HTTPError(404, f"no such endpoint: {method} {path}")

    def _metrics_payload(self) -> dict:
        stats = self.serving_stats
        payload = {
            "ok": True,
            "epoch": self.epoch,
            "queue_depth": (
                self._serving.queue_depth if self._serving is not None else 0
            ),
            "serving": stats.as_dict(),
            "coalescing_rate": (
                stats.coalesced_requests / stats.requests if stats.requests else 0.0
            ),
            "parse_cache": (
                asdict(self._serving.parse_cache_info())
                if self._serving is not None
                else {}
            ),
            **self.metrics.as_payload(),
        }
        counters = self.client.induction_counter_snapshot()
        requests = self._induce_requests
        payload["induction"] = {
            **counters,
            "induce_pool_workers": self.config.induce_workers,
            "induce_pool_depth": self._induce_depth,
            "induce_pool_depth_peak": self._induce_depth_peak,
            "induce_requests": requests,
            "induce_latency_avg_ms": (
                self._induce_latency_total_ms / requests if requests else 0.0
            ),
            "induce_latency_max_ms": self._induce_latency_max_ms,
        }
        if self.client.tenant:
            payload["tenant"] = self.client.tenant
        return payload

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict, name: str) -> str:
        value = payload.get(name)
        if not isinstance(value, str) or not value:
            raise _HTTPError(400, f"missing or invalid field {name!r}")
        return value

    async def _in_executor(self, fn: Callable[[], dict]) -> dict:
        return await asyncio.get_running_loop().run_in_executor(None, fn)

    async def _in_induce_executor(self, fn: Callable[[], dict], ctx: dict) -> dict:
        """Run an induce/repair op on the dedicated bounded pool.

        Depth/peak counters are loop-thread-only (incremented before the
        await, decremented after), and the executor-side wall time is
        stamped into ``ctx`` so the access log records how long the
        induction itself ran, queue time included.
        """
        if self._induce_pool is None:
            raise RuntimeError("server is not started")
        self._induce_depth += 1
        self._induce_depth_peak = max(self._induce_depth_peak, self._induce_depth)
        started = time.perf_counter()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._induce_pool, fn
            )
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._induce_depth -= 1
            self._induce_requests += 1
            self._induce_latency_total_ms += elapsed_ms
            self._induce_latency_max_ms = max(
                self._induce_latency_max_ms, elapsed_ms
            )
            ctx["induce_ms"] = elapsed_ms

    #: Ceilings clamped onto client-supplied ``/induce`` options.  The
    #: listen surface serves untrusted clients (the PR 7 hardening), so
    #: config knobs that drive server-side resource allocation must not
    #: be attacker-chosen: ``fold_workers`` sizes a persistent process
    #: pool and is clamped to the machine's CPU count, and the pruned-
    #: search work knobs are bounded to sane widths.  Non-integer values
    #: pass through untouched and are rejected with a 422 by
    #: ``config_with_options``'s type validation.
    _WIRE_OPTION_CEILINGS = {
        "beam_width": 64,
        "prune_trials": 32,
    }

    @classmethod
    def _sanitize_induce_options(cls, options: Optional[dict]) -> Optional[dict]:
        if not options:
            return options
        options = dict(options)
        ceilings = dict(cls._WIRE_OPTION_CEILINGS)
        ceilings["fold_workers"] = os.cpu_count() or 1
        for key, ceiling in ceilings.items():
            value = options.get(key)
            if isinstance(value, int) and not isinstance(value, bool):
                # Negative values stay as-is: config validation rejects
                # them with its own (422) message.
                options[key] = min(value, ceiling)
        return options

    async def _op_induce(self, payload: dict, principal: Optional[str], ctx: dict):
        site_key = self._field(payload, "site_key")
        self._check_key(site_key, principal, ctx)
        mode = str(payload.get("mode", "node"))
        raw_samples = payload.get("samples")
        if not isinstance(raw_samples, list) or not raw_samples:
            raise _HTTPError(400, "missing or invalid field 'samples'")
        options = payload.get("options")
        if options is not None and not isinstance(options, dict):
            raise _HTTPError(400, "'options' must be a JSON object")
        options = self._sanitize_induce_options(options)

        def op() -> dict:
            from repro.api.sample import Sample

            samples = [Sample.from_payload(item) for item in raw_samples]
            handle = self.client.induce(
                site_key,
                samples,
                mode,
                k=int(payload.get("k", 10)),
                ensemble_size=int(payload.get("ensemble_size", 3)),
                max_queries=int(payload.get("max_queries", 10)),
                role=str(payload.get("role", "")),
                options=options,
            )
            return handle.to_payload()

        return 200, await self._in_induce_executor(op, ctx)

    async def _op_extract(
        self,
        payload: dict,
        principal: Optional[str],
        ctx: dict,
        check_only: bool,
    ):
        site_key = self._field(payload, "site_key")
        self._check_key(site_key, principal, ctx)
        html = self._field(payload, "html")
        # KeyError → 404; loaded off-loop (a cache miss reads + parses
        # + validates the artifact JSON from the store).
        artifact = await self._in_executor(lambda: self.client.artifact(site_key))
        if facade_mode(artifact) == "record" and not check_only:
            # Relative field queries evaluate from live anchor nodes; the
            # thread executor keeps that DOM work off the event loop.
            return 200, await self._in_executor(
                lambda: self.client.extract(site_key, html).to_payload()
            )
        assert self._serving is not None
        job = PageJob(
            page_id=artifact.site_id or site_key,
            html=html,
            wrappers=tuple(extraction_wrappers(artifact)),
        )
        records, coalesced = await self._serving.extract_info(job)
        ctx["coalesced"] = coalesced
        if check_only:
            return 200, check_from_records(
                artifact, records, self.client.drift
            ).to_payload()
        return 200, result_from_records(
            artifact, records, self.client.drift
        ).to_payload()

    async def _op_extract_many(
        self,
        payload: dict,
        principal: Optional[str],
        ctx: dict,
        stream: bool,
    ):
        """Bulk extraction: one request, per-item result slots.

        Items run concurrently (identical pages coalesce onto one parse
        in the serving layer, and repeated pages hit the parse cache),
        but slots always come back in item order.  Every per-item gate —
        authorization, quota, ownership, unknown wrapper, malformed
        item — fails only its slot, with the same ``error``/``code``
        body fields the single-item endpoints use, so remote clients
        can raise identical typed errors per item.
        """
        items = payload.get("items")
        if not isinstance(items, list):
            raise _HTTPError(400, "missing or invalid field 'items'")

        async def one(item) -> dict:
            # Per-item ctx: _admit marks the in-flight slot on the dict,
            # and each item must enter/leave the gauge independently.
            sub: dict = {}
            try:
                try:
                    if not isinstance(item, dict):
                        raise _HTTPError(400, "each item must be a JSON object")
                    status, result = await self._op_extract(
                        item, principal, sub, check_only=False
                    )
                    slot = {"status": status, "result": result}
                except _HTTPError as exc:
                    slot = {"status": exc.status, **exc.payload()}
                except (
                    FacadeError, ArtifactError, RequestError, StoreError
                ) as exc:
                    slot = {
                        "status": 422, "error": str(exc), "code": "unprocessable"
                    }
                except KeyError as exc:
                    key = exc.args[0] if exc.args else ""
                    slot = {
                        "status": 404,
                        "error": f"unknown site_key {key!r}",
                        "code": "unknown_wrapper",
                    }
                except Exception as exc:  # noqa: BLE001 - slot-level isolation
                    slot = {"status": 500, "error": str(exc), "code": "internal"}
            finally:
                if self._inflight is not None and "inflight" in sub:
                    self._inflight.leave(sub["inflight"])
            if sub.get("tenant") and "tenant" not in ctx:
                ctx["tenant"] = sub["tenant"]
            if sub.get("coalesced"):
                ctx["coalesced"] = True
            return slot

        tasks = [asyncio.ensure_future(one(item)) for item in items]
        if stream:
            return 200, _NDJSONStream(tasks)
        return 200, {"results": list(await asyncio.gather(*tasks))}

    async def _op_deploy(self, payload: dict, principal: Optional[str], ctx: dict):
        raw = payload.get("artifact")
        if not isinstance(raw, dict):
            raise _HTTPError(400, "missing or invalid field 'artifact'")
        # Auth/quota gates need the artifact's task_id, which is payload
        # data — validate it cheaply before the full (executor-side)
        # artifact parse so a forbidden or throttled deploy stays cheap.
        task_id = raw.get("task_id")
        if not isinstance(task_id, str) or not task_id:
            raise _HTTPError(400, "missing or invalid field 'artifact'")
        self._check_key(task_id, principal, ctx)

        def op() -> dict:
            from repro.runtime.artifact import WrapperArtifact

            artifact = WrapperArtifact.from_payload(raw)
            self._check_owned(artifact.task_id)
            return self.client.deploy(artifact).to_payload()

        return 200, await self._in_executor(op)

    async def _op_repair(self, payload: dict, principal: Optional[str], ctx: dict):
        site_key = self._field(payload, "site_key")
        self._check_key(site_key, principal, ctx)
        html = self._field(payload, "html")
        target_paths = payload.get("target_paths") or None
        if target_paths is not None and not isinstance(target_paths, list):
            raise _HTTPError(400, "'target_paths' must be a list of canonical paths")

        def op() -> dict:
            return self.client.repair(site_key, html, target_paths).to_payload()

        return 200, await self._in_induce_executor(op, ctx)


async def serve_http(
    client: WrapperClient,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[NetConfig] = None,
    ready: Optional[Callable[[str, int], Optional[Awaitable]]] = None,
    ownership: Optional[ShardOwnership] = None,
    epoch: int = 0,
) -> None:
    """Run the front-end until cancelled (the CLI's ``serve --listen``).

    ``ready(host, port)`` fires once the socket is bound — callers use
    it to learn an ephemeral port.  ``ownership`` makes this a cluster
    member serving only its shard group (``--own-shards``).  ``epoch``
    is the topology generation advertised in ``/healthz`` and stamped
    into 421 rejections so stale clients can detect a re-shard.
    """
    server = WrapperHTTPServer(client, config, ownership=ownership, epoch=epoch)
    bound_host, bound_port = await server.start(host, port)
    if ready is not None:
        result = ready(bound_host, bound_port)
        if asyncio.iscoroutine(result):
            await result
    try:
        await server.serve_forever()
    finally:
        await server.aclose()


__all__ = ["NetConfig", "WrapperHTTPServer", "serve_http"]

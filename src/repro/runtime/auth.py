"""Traffic hardening primitives for the HTTP front-end.

ROADMAP's "make ``serve --listen`` safe to point the internet at":
tenants have existed end-to-end since the cluster PR (placement, store
paths, telemetry all namespace on ``tenant::``), but nothing
*authenticated* them — any client could reach any namespace — and
nothing bounded how fast one tenant could hammer the admission queue.
This module is the enforcement half, deliberately dependency-free and
separable from the socket code so the same objects can be unit-tested
without a server:

* :class:`ApiKeyTable` — per-tenant API keys loaded from a key file
  (``serve --listen --auth-keys FILE`` or ``REPRO_AUTH_KEYS``); each
  key names the one tenant namespace it may touch (``*`` for admin
  keys that may touch every namespace);
* :class:`TenantRateLimiter` — per-tenant token buckets with **bounded
  state**: the tenant → bucket map is LRU-evicted at ``max_tenants``,
  so a scan of millions of distinct (dead) tenant names cannot grow
  server memory — the classic rate-limiter leak the related-repo
  catalogue warns about;
* :class:`InflightGauge` — per-tenant in-flight request quota; entries
  are dropped the moment a tenant's count returns to zero, so the
  gauge is bounded by *concurrent* tenants, not historical ones;
* :class:`NetMetrics` — the counters behind ``GET /metrics``
  (per-status, per-tenant request/error/429, auth rejections), with
  the same LRU bound on the per-tenant map;
* :class:`AccessLog` — structured JSONL access logging (one object per
  answered request: tenant, verb, status, latency, coalesced flag).

Everything here is synchronous and cheap; the event loop calls it
inline (no locks needed — asyncio serializes the callers).
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import IO, Iterable, Optional

#: A key granting this tenant may address *every* namespace (admin).
WILDCARD_TENANT = "*"

#: Default bound on per-tenant limiter / metrics state.
DEFAULT_MAX_TENANTS = 1024


class AuthConfigError(ValueError):
    """A key file (or quota configuration) is malformed."""


@dataclass(frozen=True)
class ApiKeyTable:
    """Immutable key → tenant table.

    Key file format (``--auth-keys FILE``): one ``<key> <tenant>`` pair
    per line, whitespace-separated.  ``#`` starts a comment; blank
    lines are ignored.  A line with only ``<key>`` grants the default
    (unnamed) tenant; ``<key> *`` grants every tenant (admin).  Keys
    must be at least 8 characters — short keys are typos, not secrets.

    ::

        # ops
        k-admin-3f9c2a7e  *
        # per-tenant
        k-acme-71b2c9d4   acme
        k-zen-90aa17ce    zenith
    """

    keys: dict

    def __post_init__(self) -> None:
        if not self.keys:
            raise AuthConfigError("an API key table needs at least one key")

    @classmethod
    def from_lines(cls, lines: Iterable[str], source: str = "<keys>") -> "ApiKeyTable":
        keys: dict[str, str] = {}
        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) > 2:
                raise AuthConfigError(
                    f"{source}:{lineno}: expected '<key> [tenant]', got {raw.strip()!r}"
                )
            key = parts[0]
            tenant = parts[1] if len(parts) == 2 else ""
            if len(key) < 8:
                raise AuthConfigError(
                    f"{source}:{lineno}: key {key!r} is shorter than 8 characters"
                )
            if key in keys:
                raise AuthConfigError(f"{source}:{lineno}: duplicate key {key!r}")
            if tenant != WILDCARD_TENANT:
                # Reuse the placement layer's tenant grammar so a key
                # can never name a tenant no client could address.
                from repro.cluster.placement import PlacementError, validate_tenant

                try:
                    validate_tenant(tenant)
                except PlacementError as exc:
                    raise AuthConfigError(f"{source}:{lineno}: {exc}") from exc
            keys[key] = tenant
        return cls(keys=keys)

    @classmethod
    def from_file(cls, path) -> "ApiKeyTable":
        import pathlib

        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise AuthConfigError(f"cannot read key file {path}: {exc}") from exc
        return cls.from_lines(text.splitlines(), source=str(path))

    def tenant_for(self, key: str) -> Optional[str]:
        """The tenant a key grants, ``"*"`` for admin keys, ``None``
        when the key is unknown."""
        return self.keys.get(key)

    def __len__(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class QuotaConfig:
    """Per-tenant traffic quotas (all enforcement is per tenant).

    ``rate`` is the token-bucket refill in requests/second and ``burst``
    the bucket capacity (how far a quiet tenant may briefly spike);
    ``rate=0`` disables rate limiting.  ``max_inflight`` caps how many
    requests one tenant may hold in flight at once (0 = unlimited) —
    this rides *in front of* the extraction server's admission queue,
    so one tenant saturating its quota suspends only itself, never the
    shared queue.  ``max_tenants`` bounds limiter/metrics state.
    """

    rate: float = 0.0
    burst: int = 0
    max_inflight: int = 0
    max_tenants: int = DEFAULT_MAX_TENANTS

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise AuthConfigError("rate must be >= 0")
        if self.burst < 0:
            raise AuthConfigError("burst must be >= 0")
        if self.max_inflight < 0:
            raise AuthConfigError("max_inflight must be >= 0")
        if self.max_tenants < 1:
            raise AuthConfigError("max_tenants must be >= 1")

    @property
    def effective_burst(self) -> float:
        """Bucket capacity: explicit ``burst``, else one second of
        refill (but never < 1 token, or no request could ever pass)."""
        if self.burst:
            return float(self.burst)
        return max(self.rate, 1.0)

    @property
    def enabled(self) -> bool:
        return self.rate > 0 or self.max_inflight > 0


class TenantRateLimiter:
    """Per-tenant token buckets with LRU-bounded state.

    ``acquire(tenant)`` returns ``(True, 0.0)`` when a token was
    available, else ``(False, retry_after_s)`` — the seconds until the
    bucket refills one token, which the server surfaces verbatim as
    ``Retry-After``.  The bucket map never exceeds ``max_tenants``
    entries: the least-recently-seen tenant is evicted first, so a
    stream of distinct dead tenants recycles a fixed pool instead of
    growing without bound (an evicted tenant that returns simply starts
    from a full bucket — strictly more permissive, never less).
    """

    def __init__(self, rate: float, burst: float, max_tenants: int = DEFAULT_MAX_TENANTS):
        if rate <= 0:
            raise AuthConfigError("rate must be > 0 for a limiter")
        if burst <= 0:
            raise AuthConfigError("burst must be > 0 for a limiter")
        if max_tenants < 1:
            raise AuthConfigError("max_tenants must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_tenants = int(max_tenants)
        self.evictions = 0
        # tenant -> [tokens, last_refill_monotonic]; ordered by recency.
        self._buckets: "OrderedDict[str, list[float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._buckets)

    def acquire(self, tenant: str, now: Optional[float] = None) -> tuple[bool, float]:
        if now is None:
            now = time.monotonic()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = [self.burst, now]
            while len(self._buckets) > self.max_tenants:
                self._buckets.popitem(last=False)
                self.evictions += 1
        else:
            self._buckets.move_to_end(tenant)
            tokens, last = bucket
            bucket[0] = min(self.burst, tokens + (now - last) * self.rate)
            bucket[1] = now
        if bucket[0] >= 1.0:
            bucket[0] -= 1.0
            return True, 0.0
        return False, (1.0 - bucket[0]) / self.rate


class InflightGauge:
    """Per-tenant in-flight request counts, bounded by construction:
    an entry exists only while the tenant has requests in flight."""

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise AuthConfigError("max_inflight must be >= 1 for a gauge")
        self.max_inflight = int(max_inflight)
        self._inflight: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def try_enter(self, tenant: str) -> bool:
        count = self._inflight.get(tenant, 0)
        if count >= self.max_inflight:
            return False
        self._inflight[tenant] = count + 1
        return True

    def leave(self, tenant: str) -> None:
        count = self._inflight.get(tenant, 0) - 1
        if count <= 0:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = count


@dataclass
class _TenantCounters:
    requests: int = 0
    errors: int = 0
    rate_limited: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class NetMetrics:
    """The counters behind ``GET /metrics``.

    Per-tenant counters share the limiter's LRU bound — a tenant scan
    must not grow the metrics map either; evictions are themselves
    counted so a scrape can tell the map was truncated.
    """

    def __init__(self, max_tenants: int = DEFAULT_MAX_TENANTS):
        self.max_tenants = int(max_tenants)
        self.requests_total = 0
        self.by_status: dict[int, int] = {}
        self.unauthorized_401 = 0
        self.forbidden_403 = 0
        self.rate_limited_429 = 0
        self.unowned_421 = 0
        self.tenant_evictions = 0
        self._tenants: "OrderedDict[str, _TenantCounters]" = OrderedDict()

    def observe(self, tenant: str, status: int) -> None:
        self.requests_total += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status == 401:
            self.unauthorized_401 += 1
        elif status == 403:
            self.forbidden_403 += 1
        elif status == 429:
            self.rate_limited_429 += 1
        elif status == 421:
            self.unowned_421 += 1
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
            while len(self._tenants) > self.max_tenants:
                self._tenants.popitem(last=False)
                self.tenant_evictions += 1
        else:
            self._tenants.move_to_end(tenant)
        counters.requests += 1
        if status >= 400:
            counters.errors += 1
        if status == 429:
            counters.rate_limited += 1

    def as_payload(self) -> dict:
        return {
            "requests_total": self.requests_total,
            "by_status": {str(s): n for s, n in sorted(self.by_status.items())},
            "auth": {
                "unauthorized_401": self.unauthorized_401,
                "forbidden_403": self.forbidden_403,
                "rate_limited_429": self.rate_limited_429,
            },
            "rejected_unowned_421": self.unowned_421,
            "tenants": {
                tenant: counters.as_dict()
                for tenant, counters in self._tenants.items()
            },
            "tenant_state": {
                "tracked": len(self._tenants),
                "cap": self.max_tenants,
                "evictions": self.tenant_evictions,
            },
        }


@dataclass
class AccessLog:
    """JSONL access log: one object per answered request.

    Fields: ``ts`` (epoch seconds), ``tenant``, ``verb`` (``METHOD
    /endpoint``), ``status``, ``latency_ms``, ``coalesced`` (the
    request shared a page parse with a concurrent one).  ``emit`` never
    raises — a full disk must degrade logging, not serving.
    """

    stream: IO[str]
    errors: int = field(default=0)

    @classmethod
    def open(cls, path) -> "AccessLog":
        import pathlib

        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return cls(stream=path.open("a", encoding="utf-8"))

    def emit(
        self,
        tenant: str,
        verb: str,
        status: int,
        latency_ms: float,
        coalesced: bool = False,
        induce_ms: Optional[float] = None,
    ) -> None:
        record = {
            "ts": round(time.time(), 3),
            "tenant": tenant,
            "verb": verb,
            "status": int(status),
            "latency_ms": round(float(latency_ms), 3),
            "coalesced": bool(coalesced),
        }
        if induce_ms is not None:
            # Executor-side induction wall time (queue included) — only
            # /induce and /repair requests carry it.
            record["induce_ms"] = round(float(induce_ms), 3)
        try:
            self.stream.write(json.dumps(record) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.errors += 1

    def close(self) -> None:
        try:
            self.stream.close()
        except OSError:  # pragma: no cover - platform noise
            pass


__all__ = [
    "AccessLog",
    "ApiKeyTable",
    "AuthConfigError",
    "DEFAULT_MAX_TENANTS",
    "InflightGauge",
    "NetMetrics",
    "QuotaConfig",
    "TenantRateLimiter",
    "WILDCARD_TENANT",
]

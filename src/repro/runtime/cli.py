"""``python -m repro.runtime`` — the wrapper lifecycle CLI.

Three subcommands drive the save → serve → drift → repair loop over the
synthetic archive corpus:

* ``induce`` — induce wrappers for corpus tasks at snapshot 0 and save
  them as JSON artifacts;
* ``extract`` — load an artifact directory, render a later snapshot of
  every covered site, and run the batch extraction engine over all
  (wrapper, page) pairs;
* ``check`` — replay each wrapper across archive snapshots, report the
  first drift (signals + snapshot), and optionally auto-repair by
  re-induction from the stored samples.

All output is deterministic for a fixed corpus seed, so the CLI doubles
as a smoke harness.  See docs/RUNTIME.md for examples.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.dom.serialize import to_html
from repro.evolution.archive import SyntheticArchive
from repro.induction import InductionConfig, WrapperInducer
from repro.runtime.artifact import ArtifactError, WrapperArtifact
from repro.runtime.corpus import induce_corpus_task
from repro.runtime.drift import DriftConfig, DriftDetector, maintain_over_archive
from repro.runtime.extractor import BatchExtractor, jobs_for_artifacts
from repro.sites.corpus import CorpusTask, multi_node_tasks, single_node_tasks


def _corpus_tasks(include_multi: bool) -> list[CorpusTask]:
    tasks = single_node_tasks()
    if include_multi:
        tasks += multi_node_tasks()
    return tasks


def _load_artifacts(directory: pathlib.Path) -> list[WrapperArtifact]:
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise SystemExit(f"no artifacts found in {directory}")
    artifacts = []
    for path in paths:
        try:
            artifacts.append(WrapperArtifact.load(path))
        except ArtifactError as exc:
            raise SystemExit(f"{path}: {exc}")
    return artifacts


def _site_specs(artifacts: Sequence[WrapperArtifact]):
    from repro.sites.corpus import build_corpus

    by_id = {spec.site_id: spec for spec in build_corpus()}
    missing = sorted({a.site_id for a in artifacts} - by_id.keys())
    if missing:
        raise SystemExit(f"unknown site ids in artifacts: {', '.join(missing)}")
    return by_id


def cmd_induce(args: argparse.Namespace) -> int:
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    tasks = _corpus_tasks(args.multi)
    if args.task:
        wanted = set(args.task)
        tasks = [t for t in tasks if t.task_id in wanted]
        unknown = wanted - {t.task_id for t in tasks}
        if unknown:
            raise SystemExit(f"unknown task ids: {', '.join(sorted(unknown))}")
    if args.limit is not None:
        tasks = tasks[: args.limit]

    config = InductionConfig(k=args.k)
    inducer = WrapperInducer(k=args.k, config=config)
    started = time.perf_counter()
    written = 0
    for corpus_task in tasks:
        spec, task = corpus_task.spec, corpus_task.task
        induced = induce_corpus_task(corpus_task, inducer)
        if induced is None:
            print(f"skip  {task.task_id}: no targets at snapshot 0")
            continue
        result, sample = induced
        artifact = WrapperArtifact.from_induction(
            result,
            [sample],
            task_id=task.task_id,
            site_id=spec.site_id,
            role=task.role,
            ensemble_size=args.ensemble_size,
            provenance={
                "url": spec.url,
                "vertical": spec.vertical,
                "snapshot": 0,
                "n_targets": len(sample.targets),
            },
            config=config,
        )
        artifact.save(out / artifact.filename())
        written += 1
        best = artifact.best
        print(
            f"saved {task.task_id}: {best.text}  "
            f"[score={best.score:g} tp={best.tp} fp={best.fp} fn={best.fn}]"
        )
    elapsed = time.perf_counter() - started
    print(f"\n{written} artifacts written to {out} in {elapsed:.2f}s")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    artifacts = _load_artifacts(pathlib.Path(args.artifacts))
    specs = _site_specs(artifacts)
    site_ids = sorted({a.site_id for a in artifacts})
    page_html = {}
    for site_id in site_ids:
        archive = SyntheticArchive(specs[site_id], n_snapshots=args.snapshot + 1)
        if archive.is_broken(args.snapshot):
            print(f"skip  {site_id}: snapshot {args.snapshot} is a broken capture")
            continue
        page_html[site_id] = to_html(archive.snapshot(args.snapshot))
    jobs = jobs_for_artifacts(
        artifacts, page_html, include_ensemble=not args.no_ensemble
    )
    pairs = sum(len(job.wrappers) for job in jobs)
    started = time.perf_counter()
    records = BatchExtractor(workers=args.workers).extract(jobs)
    elapsed = time.perf_counter() - started

    empty = sum(record.is_empty for record in records)
    for record in records:
        preview = "; ".join(record.values[:2])
        if len(preview) > 60:
            preview = preview[:57] + "..."
        print(f"{record.page_id}  {record.wrapper_id}: {record.count} node(s)  {preview}")
    print(
        f"\n{pairs} (wrapper, page) pairs over {len(jobs)} pages with "
        f"{args.workers} worker(s) in {elapsed:.2f}s; {empty} empty results"
    )
    if args.json:
        payload = [
            {
                "page_id": r.page_id,
                "wrapper_id": r.wrapper_id,
                "paths": list(r.paths),
                "values": list(r.values),
            }
            for r in records
        ]
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"records written to {args.json}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    artifacts = _load_artifacts(pathlib.Path(args.artifacts))
    specs = _site_specs(artifacts)
    detector = DriftDetector(
        DriftConfig(canonical_change_is_hard=args.strict_canonical)
    )
    drifted = repaired = failed = 0
    archives: dict[str, SyntheticArchive] = {}  # co-located tasks share
    for artifact in artifacts:
        archive = archives.get(artifact.site_id)
        if archive is None:
            archive = SyntheticArchive(specs[artifact.site_id], n_snapshots=args.snapshots)
            archives[artifact.site_id] = archive
        record = maintain_over_archive(
            artifact,
            archive,
            snapshots=range(1, args.snapshots),
            detector=detector,
            repair=args.repair,
        )
        if not record.drifted:
            print(f"ok    {artifact.task_id}: healthy over {len(record.checked)} snapshots")
            continue
        drifted += 1
        signals = ",".join(record.drift_signals)
        line = f"DRIFT {artifact.task_id} @ snapshot {record.drift_snapshot} [{signals}]"
        if args.repair:
            if record.repaired is not None:
                repaired += 1
                line += f" -> repaired (gen {record.repaired.generation}): {record.repaired.best.text}"
                if args.out:
                    out = pathlib.Path(args.out)
                    out.mkdir(parents=True, exist_ok=True)
                    record.repaired.save(out / record.repaired.filename())
            else:
                failed += 1
                line += f" -> repair failed: {record.repair_error}"
        print(line)
    print(
        f"\n{len(artifacts)} wrappers checked over {args.snapshots - 1} snapshots: "
        f"{drifted} drifted"
        + (f", {repaired} repaired, {failed} need re-annotation" if args.repair else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Wrapper lifecycle runtime: induce, batch-extract, drift-check.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    induce = sub.add_parser("induce", help="induce corpus wrappers into JSON artifacts")
    induce.add_argument("--out", required=True, help="artifact output directory")
    induce.add_argument("--task", action="append", help="task id (repeatable); default: all")
    induce.add_argument("--limit", type=int, default=None, help="max tasks")
    induce.add_argument("--multi", action="store_true", help="include multi-node tasks")
    induce.add_argument("--k", type=int, default=10, help="K-best table size")
    induce.add_argument("--ensemble-size", type=int, default=3)
    induce.set_defaults(func=cmd_induce)

    extract = sub.add_parser("extract", help="batch-extract artifacts against a snapshot")
    extract.add_argument("--artifacts", required=True, help="artifact directory")
    extract.add_argument("--snapshot", type=int, default=0, help="archive snapshot index")
    extract.add_argument("--workers", type=int, default=1)
    extract.add_argument("--no-ensemble", action="store_true", help="top queries only")
    extract.add_argument("--json", help="write extraction records to this file")
    extract.set_defaults(func=cmd_extract)

    check = sub.add_parser("check", help="replay snapshots, report drift, optionally repair")
    check.add_argument("--artifacts", required=True, help="artifact directory")
    check.add_argument("--snapshots", type=int, default=20, help="snapshots to replay")
    check.add_argument("--repair", action="store_true", help="auto re-induce on drift")
    check.add_argument("--out", help="directory for repaired artifacts")
    check.add_argument(
        "--strict-canonical",
        action="store_true",
        help="treat canonical-path changes as drift",
    )
    check.set_defaults(func=cmd_check)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

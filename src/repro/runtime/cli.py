"""``python -m repro.runtime`` — the wrapper lifecycle CLI.

Five subcommands drive the save → serve → drift → repair loop over the
synthetic archive corpus:

* ``induce`` — induce wrappers for corpus tasks at snapshot 0 and save
  them as JSON artifacts (flat directory via ``--out``, or a sharded
  artifact store via ``--store``);
* ``extract`` — load artifacts, render a later snapshot of every
  covered site, and run the batch extraction engine over all
  (wrapper, page) pairs;
* ``check`` — replay each wrapper across archive snapshots, report the
  first drift (signals + snapshot), and optionally auto-repair by
  re-induction from the stored samples;
* ``serve`` — run a per-wrapper request stream through the async
  serving layer (micro-batching + coalescing + backpressure) and
  report throughput;
* ``sweep`` — run the multi-process drift fleet over a sharded store:
  full telemetry streams, repair chains, repaired generations written
  back;
* ``migrate`` — re-shard a store into a new root at the next placement
  epoch (atomic per-artifact cut-over, ``--dry-run`` move plan) so a
  cluster can change shape without restarts losing data.

Exit codes (``check`` and ``sweep``): 0 = no drift detected; 1 = drift
detected; 3 = drift detected and at least one repair failed (human
re-annotation required).  2 is argparse's usage-error code.  ``sweep
--fail-on`` relaxes the gate for telemetry jobs that *expect* drift.

All output is deterministic for a fixed corpus seed, so the CLI doubles
as a smoke harness.  See docs/RUNTIME.md for examples.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.cluster.placement import PlacementError, qualify_key, validate_tenant
from repro.dom.serialize import to_html
from repro.evolution.archive import SyntheticArchive
from repro.induction import InductionConfig, WrapperInducer
from repro.runtime.artifact import ArtifactError, WrapperArtifact
from repro.runtime.corpus import induce_corpus_task
from repro.runtime.drift import DriftConfig, DriftDetector, maintain_over_archive
from repro.runtime.extractor import BatchExtractor, PageJob, jobs_for_artifacts
from repro.runtime.fleet import SweepConfig, sweep_store
from repro.runtime.serve import ServingConfig, serve_jobs_sync
from repro.runtime.store import (
    DEFAULT_SHARDS,
    ShardedArtifactStore,
    StoreError,
    artifacts_from_path,
    migrate_store,
)
from repro.sites.corpus import CorpusTask, multi_node_tasks, single_node_tasks

#: Exit codes shared by ``check`` and ``sweep`` (2 is argparse's).
EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_REPAIR_FAILED = 3


def _corpus_tasks(include_multi: bool) -> list[CorpusTask]:
    tasks = single_node_tasks()
    if include_multi:
        tasks += multi_node_tasks()
    return tasks


def _load_artifacts(directory: pathlib.Path) -> list[WrapperArtifact]:
    """Artifacts from a flat directory or a sharded store root."""
    try:
        artifacts = artifacts_from_path(directory)
    except (ArtifactError, StoreError) as exc:
        raise SystemExit(f"{directory}: {exc}")
    if not artifacts:
        raise SystemExit(f"no artifacts found in {directory}")
    return artifacts


def _site_specs(artifacts: Sequence[WrapperArtifact]):
    from repro.sites.corpus import build_corpus

    by_id = {spec.site_id: spec for spec in build_corpus()}
    missing = sorted({a.site_id for a in artifacts} - by_id.keys())
    if missing:
        raise SystemExit(f"unknown site ids in artifacts: {', '.join(missing)}")
    return by_id


def _validated_tenant(args: argparse.Namespace) -> str:
    """Fail fast on a malformed --tenant, before any work happens."""
    try:
        return validate_tenant(args.tenant)
    except PlacementError as exc:
        raise SystemExit(str(exc))


def cmd_induce(args: argparse.Namespace) -> int:
    _validated_tenant(args)
    store: Optional[ShardedArtifactStore] = None
    if args.store:
        try:
            # n_shards=None lets an existing store keep its recorded
            # shard count; a new store gets --shards (or the default).
            store = ShardedArtifactStore(args.store, n_shards=args.shards)
        except StoreError as exc:
            raise SystemExit(str(exc))
        out = store.root
    else:
        out = pathlib.Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
    tasks = _corpus_tasks(args.multi)
    if args.task:
        wanted = set(args.task)
        tasks = [t for t in tasks if t.task_id in wanted]
        unknown = wanted - {t.task_id for t in tasks}
        if unknown:
            raise SystemExit(f"unknown task ids: {', '.join(sorted(unknown))}")
    if args.limit is not None:
        tasks = tasks[: args.limit]

    config = InductionConfig(k=args.k)
    inducer = WrapperInducer(k=args.k, config=config)
    started = time.perf_counter()
    written = 0
    for corpus_task in tasks:
        spec, task = corpus_task.spec, corpus_task.task
        induced = induce_corpus_task(corpus_task, inducer)
        if induced is None:
            print(f"skip  {task.task_id}: no targets at snapshot 0")
            continue
        result, sample = induced
        artifact = WrapperArtifact.from_induction(
            result,
            [sample],
            task_id=qualify_key(task.task_id, args.tenant),
            site_id=spec.site_id,
            role=task.role,
            ensemble_size=args.ensemble_size,
            provenance={
                "url": spec.url,
                "vertical": spec.vertical,
                "snapshot": 0,
                "n_targets": len(sample.targets),
            },
            config=config,
        )
        if store is not None:
            store.put(artifact)
        else:
            artifact.save(out / artifact.filename())
        written += 1
        best = artifact.best
        print(
            f"saved {task.task_id}: {best.text}  "
            f"[score={best.score:g} tp={best.tp} fp={best.fp} fn={best.fn}]"
        )
    elapsed = time.perf_counter() - started
    print(f"\n{written} artifacts written to {out} in {elapsed:.2f}s")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    artifacts = _load_artifacts(pathlib.Path(args.artifacts))
    specs = _site_specs(artifacts)
    site_ids = sorted({a.site_id for a in artifacts})
    page_html = {}
    for site_id in site_ids:
        archive = SyntheticArchive(specs[site_id], n_snapshots=args.snapshot + 1)
        if archive.is_broken(args.snapshot):
            print(f"skip  {site_id}: snapshot {args.snapshot} is a broken capture")
            continue
        page_html[site_id] = to_html(archive.snapshot(args.snapshot))
    jobs = jobs_for_artifacts(
        artifacts, page_html, include_ensemble=not args.no_ensemble
    )
    pairs = sum(len(job.wrappers) for job in jobs)
    started = time.perf_counter()
    with BatchExtractor(workers=args.workers, persistent=True) as extractor:
        records = extractor.extract(jobs)
    elapsed = time.perf_counter() - started

    empty = sum(record.is_empty for record in records)
    for record in records:
        preview = "; ".join(record.values[:2])
        if len(preview) > 60:
            preview = preview[:57] + "..."
        print(f"{record.page_id}  {record.wrapper_id}: {record.count} node(s)  {preview}")
    print(
        f"\n{pairs} (wrapper, page) pairs over {len(jobs)} pages with "
        f"{args.workers} worker(s) in {elapsed:.2f}s; {empty} empty results"
    )
    if args.json:
        payload = [
            {
                "page_id": r.page_id,
                "wrapper_id": r.wrapper_id,
                "paths": list(r.paths),
                "values": list(r.values),
            }
            for r in records
        ]
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"records written to {args.json}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    artifacts = _load_artifacts(pathlib.Path(args.artifacts))
    specs = _site_specs(artifacts)
    detector = DriftDetector(
        DriftConfig(canonical_change_is_hard=args.strict_canonical)
    )
    drifted = repaired = failed = 0
    archives: dict[str, SyntheticArchive] = {}  # co-located tasks share
    for artifact in artifacts:
        archive = archives.get(artifact.site_id)
        if archive is None:
            archive = SyntheticArchive(specs[artifact.site_id], n_snapshots=args.snapshots)
            archives[artifact.site_id] = archive
        record = maintain_over_archive(
            artifact,
            archive,
            snapshots=range(1, args.snapshots),
            detector=detector,
            repair=args.repair,
        )
        if not record.drifted:
            print(f"ok    {artifact.task_id}: healthy over {len(record.checked)} snapshots")
            continue
        drifted += 1
        signals = ",".join(record.drift_signals)
        line = f"DRIFT {artifact.task_id} @ snapshot {record.drift_snapshot} [{signals}]"
        if args.repair:
            if record.repaired is not None:
                repaired += 1
                line += f" -> repaired (gen {record.repaired.generation}): {record.repaired.best.text}"
                if args.out:
                    out = pathlib.Path(args.out)
                    out.mkdir(parents=True, exist_ok=True)
                    record.repaired.save(out / record.repaired.filename())
            else:
                failed += 1
                line += f" -> repair failed: {record.repair_error}"
        print(line)
    print(
        f"\n{len(artifacts)} wrappers checked over {args.snapshots - 1} snapshots: "
        f"{drifted} drifted"
        + (f", {repaired} repaired, {failed} need re-annotation" if args.repair else "")
    )
    # Exit non-zero on drift so CI jobs can gate on wrapper health
    # (0 = healthy, 1 = drift, 3 = drift + failed repairs).
    if failed:
        return EXIT_REPAIR_FAILED
    if drifted:
        return EXIT_DRIFT
    return EXIT_OK


def _parse_listen(value: str) -> tuple[str, int]:
    host, _, port_text = value.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 <= port <= 65535:
        raise SystemExit(f"--listen wants HOST:PORT, got {value!r}")
    return host, port


def _client_for_listen(path: Optional[str], tenant: str = ""):
    """The network server's backend: a sharded store when ``path`` is
    (or can become) one, an in-memory preload for flat artifact dirs,
    a fresh in-memory registry when no path is given."""
    from repro.api.client import WrapperClient

    if path is None:
        return WrapperClient(tenant=tenant)
    root = pathlib.Path(path)
    if not ShardedArtifactStore.is_store(root) and root.is_dir() and any(
        root.glob("*.json")
    ):
        client = WrapperClient(tenant=tenant)
        artifacts = _load_artifacts(root)
        for artifact in artifacts:
            client.deploy(artifact)
        print(f"preloaded {len(artifacts)} artifact(s) from flat directory {root}")
        return client
    try:
        return WrapperClient(store=root, tenant=tenant)
    except StoreError as exc:
        raise SystemExit(str(exc))


def _serve_ownership(args: argparse.Namespace, client):
    """The shard group this host answers for (``--own-shards``), sized
    against the store's recorded shard count when one backs the server."""
    from repro.cluster.placement import PlacementError, ShardOwnership

    if client.store is not None:
        n_shards = client.store.n_shards
        if args.shards is not None and args.shards != n_shards:
            raise SystemExit(
                f"--shards {args.shards} conflicts with the store's "
                f"{n_shards} shards (placement follows the store)"
            )
    else:
        n_shards = args.shards if args.shards is not None else DEFAULT_SHARDS
    if not args.own_shards:
        return None
    try:
        return ShardOwnership.parse(args.own_shards, n_shards)
    except PlacementError as exc:
        raise SystemExit(str(exc))


def _serve_hardening(args: argparse.Namespace):
    """Auth table / quota / access log from the hardening flags
    (``--auth-keys`` falls back to ``REPRO_AUTH_KEYS``; everything
    defaults to off — a plain launch is the seed-era open server)."""
    import os

    from repro.runtime.auth import AccessLog, ApiKeyTable, AuthConfigError, QuotaConfig

    auth = None
    keys_path = args.auth_keys or os.environ.get("REPRO_AUTH_KEYS", "")
    if keys_path:
        try:
            auth = ApiKeyTable.from_file(keys_path)
        except AuthConfigError as exc:
            raise SystemExit(str(exc))
    quota = None
    if args.rate_limit or args.max_inflight:
        try:
            quota = QuotaConfig(
                rate=args.rate_limit,
                burst=args.burst,
                max_inflight=args.max_inflight,
                max_tenants=args.limiter_tenants,
            )
        except AuthConfigError as exc:
            raise SystemExit(str(exc))
    access_log = AccessLog.open(args.access_log) if args.access_log else None
    return auth, quota, access_log


def cmd_serve_listen(args: argparse.Namespace) -> int:
    """``serve --listen HOST:PORT`` — the facade over TCP."""
    import asyncio

    from repro.runtime.net import NetConfig, serve_http

    host, port = _parse_listen(args.listen)
    auth, quota, access_log = _serve_hardening(args)
    client = _client_for_listen(args.artifacts, tenant=_validated_tenant(args))
    ownership = _serve_ownership(args, client)
    # The placement epoch this host serves at: --epoch wins, a backing
    # store's recorded epoch is the natural default (a migrated store
    # carries its new epoch with it), a fresh registry starts at 0.
    if args.epoch is not None:
        if args.epoch < 0:
            raise SystemExit(f"--epoch must be >= 0, got {args.epoch}")
        epoch = args.epoch
    else:
        epoch = client.store.epoch if client.store is not None else 0
    config = NetConfig(
        serving=ServingConfig(
            workers=args.workers,
            max_pending=args.max_pending,
            per_site_limit=args.per_site_limit,
        ),
        auth=auth,
        quota=quota,
        access_log=access_log,
    )

    def ready(bound_host: str, bound_port: int) -> None:
        backend = "store " + str(client.store.root) if client.store else "in-memory registry"
        shards = (
            f", owning shards {args.own_shards} of {ownership.n_shards}"
            if ownership is not None
            else ""
        )
        namespace = f", tenant {client.tenant}" if client.tenant else ""
        hardening = f", auth ({len(auth)} key(s))" if auth is not None else ""
        if quota is not None:
            hardening += (
                f", quotas (rate={quota.rate:g}/s, "
                f"inflight={quota.max_inflight or 'off'})"
            )
        print(
            f"listening on {bound_host}:{bound_port} "
            f"({len(client)} wrapper(s), {backend}{shards}{namespace}, "
            f"epoch {epoch}{hardening})",
            flush=True,
        )

    try:
        asyncio.run(
            serve_http(
                client,
                host,
                port,
                config=config,
                ready=ready,
                ownership=ownership,
                epoch=epoch,
            )
        )
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.listen:
        return cmd_serve_listen(args)
    # The one-shot stream replay has no tenancy or shard ownership —
    # silently ignoring these flags would fake a scoped deployment.
    for flag, value, default in (
        ("--tenant", args.tenant, ""),
        ("--own-shards", args.own_shards, None),
        ("--shards", args.shards, None),
        ("--epoch", args.epoch, None),
        ("--auth-keys", args.auth_keys, ""),
        ("--rate-limit", args.rate_limit, 0.0),
        ("--burst", args.burst, 0),
        ("--max-inflight", args.max_inflight, 0),
        ("--access-log", args.access_log, ""),
    ):
        if value != default:
            raise SystemExit(f"{flag} requires --listen HOST:PORT")
    if not args.artifacts:
        raise SystemExit("serve needs --artifacts (or --listen HOST:PORT)")
    artifacts = _load_artifacts(pathlib.Path(args.artifacts))
    specs = _site_specs(artifacts)
    site_ids = sorted({a.site_id for a in artifacts})
    page_html = {}
    for site_id in site_ids:
        archive = SyntheticArchive(specs[site_id], n_snapshots=args.snapshot + 1)
        if archive.is_broken(args.snapshot):
            print(f"skip  {site_id}: snapshot {args.snapshot} is a broken capture")
            continue
        page_html[site_id] = to_html(archive.snapshot(args.snapshot))

    # Per-wrapper request stream: what independent serving clients send
    # (one wrapper per request), so coalescing has real work to do.
    requests: list[PageJob] = []
    for artifact in artifacts:
        html = page_html.get(artifact.site_id)
        if html is None:
            continue
        wrappers = [(artifact.task_id, artifact.best.text)]
        if not args.no_ensemble:
            wrappers += [
                (f"{artifact.task_id}#m{i}", text)
                for i, text in enumerate(artifact.ensemble)
            ]
        page_id = f"{artifact.site_id}@{args.snapshot}"
        requests.extend(
            PageJob(page_id=page_id, html=html, wrappers=((wid, text),))
            for wid, text in wrappers
        )

    config = ServingConfig(
        workers=args.workers,
        max_pending=args.max_pending,
        per_site_limit=args.per_site_limit,
    )
    started = time.perf_counter()
    results, stats = serve_jobs_sync(requests, config, concurrency=args.concurrency)
    elapsed = time.perf_counter() - started

    empty = sum(record.is_empty for records in results for record in records)
    print(
        f"{stats.requests} requests over {stats.pages_parsed} parsed pages "
        f"({stats.coalesced_requests} coalesced) in {stats.batches} batches; "
        f"{empty} empty results"
    )
    print(
        f"concurrency {args.concurrency}, {args.workers} worker(s): "
        f"{elapsed:.2f}s = {len(requests) / elapsed:.0f} requests/s "
        f"(peak pending {stats.peak_pending}, "
        f"peak per-site in-flight {stats.peak_site_inflight})"
    )
    if args.json:
        payload = {
            "requests": len(requests),
            "elapsed_s": elapsed,
            "stats": stats.as_dict(),
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"serving stats written to {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if not ShardedArtifactStore.is_store(args.store):
        raise SystemExit(
            f"{args.store} is not a sharded artifact store "
            "(create one with 'induce --store')"
        )
    try:
        store = ShardedArtifactStore(args.store)
    except StoreError as exc:
        raise SystemExit(str(exc))
    config = SweepConfig(
        n_snapshots=args.snapshots,
        repair=not args.no_repair,
        workers=args.workers,
        drift=DriftConfig(canonical_change_is_hard=args.strict_canonical),
    )
    started = time.perf_counter()
    try:
        summary = sweep_store(store, config)
    except StoreError as exc:
        raise SystemExit(str(exc))
    elapsed = time.perf_counter() - started
    for wrapper in summary.wrappers:
        if not wrapper.drifted:
            print(f"ok    {wrapper.task_id}: healthy over {wrapper.checked} snapshots")
            continue
        snapshots = ",".join(str(s) for s in wrapper.drift_snapshots)
        line = (
            f"DRIFT {wrapper.task_id} @ snapshot(s) {snapshots} "
            f"[{','.join(wrapper.signals)}]"
        )
        if wrapper.repairs:
            line += f" -> repaired x{wrapper.repairs} (gen {wrapper.final_generation})"
        if wrapper.repair_failed:
            line += f" -> repair failed: {wrapper.repair_error}"
        print(line)
    print(
        f"\n{len(summary.wrappers)} wrappers, {summary.checked} checks over "
        f"{summary.n_snapshots - 1} snapshots with {summary.workers} worker(s) "
        f"in {elapsed:.2f}s: {summary.drifted} drifted, {summary.repaired} repairs, "
        f"{summary.repair_failures} need re-annotation"
    )
    print(f"telemetry: {len(store.report_paths())} report streams under {store.root}")
    if summary.repair_failures and args.fail_on in ("drift", "repair"):
        return EXIT_REPAIR_FAILED
    if summary.drifted and args.fail_on == "drift":
        return EXIT_DRIFT
    return EXIT_OK


def cmd_migrate(args: argparse.Namespace) -> int:
    """``migrate`` — re-shard a store into a new root at the next epoch."""
    try:
        plan = migrate_store(
            args.store,
            args.dest,
            n_shards=args.shards,
            epoch=args.epoch,
            dry_run=args.dry_run,
        )
    except StoreError as exc:
        raise SystemExit(str(exc))
    verb = "would move" if plan.dry_run else "moved"
    for move in plan.moves:
        marker = "->" if move.moved else "=="
        print(
            f"{verb:>10}  {move.task_id}: shard {move.src_shard:02d} "
            f"{marker} shard {move.dest_shard:02d}"
        )
    print(
        f"\n{'DRY RUN: ' if plan.dry_run else ''}"
        f"{len(plan.moves)} artifact(s) ({plan.n_moved} re-placed), "
        f"{plan.report_streams} telemetry stream(s): "
        f"{plan.src_root} [{plan.src_shards} shards, epoch {plan.src_epoch}] -> "
        f"{plan.dest_root} [{plan.dest_shards} shards, epoch {plan.dest_epoch}]"
    )
    if not plan.dry_run:
        print(
            "cut over by relaunching hosts against the new root with "
            f"--epoch {plan.dest_epoch}; stale clients refresh on the "
            "first 421 that names the new epoch"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description=(
            "Wrapper lifecycle runtime: induce, batch-extract, drift-check, "
            "async-serve, fleet-sweep."
        ),
        epilog=(
            "exit codes for check/sweep: 0 = no drift, 1 = drift detected, "
            "3 = drift with failed repairs (2 is reserved for usage errors)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    induce = sub.add_parser("induce", help="induce corpus wrappers into JSON artifacts")
    target = induce.add_mutually_exclusive_group(required=True)
    target.add_argument("--out", help="flat artifact output directory")
    target.add_argument("--store", help="sharded artifact store root")
    induce.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            f"shard count when creating a new store (default: {DEFAULT_SHARDS}); "
            "reopening an existing store reads its recorded shard count"
        ),
    )
    induce.add_argument(
        "--tenant",
        default="",
        help="write artifacts into this tenant's namespace (tenant::task-id)",
    )
    induce.add_argument("--task", action="append", help="task id (repeatable); default: all")
    induce.add_argument("--limit", type=int, default=None, help="max tasks")
    induce.add_argument("--multi", action="store_true", help="include multi-node tasks")
    induce.add_argument("--k", type=int, default=10, help="K-best table size")
    induce.add_argument("--ensemble-size", type=int, default=3)
    induce.set_defaults(func=cmd_induce)

    extract = sub.add_parser("extract", help="batch-extract artifacts against a snapshot")
    extract.add_argument("--artifacts", required=True, help="artifact directory")
    extract.add_argument("--snapshot", type=int, default=0, help="archive snapshot index")
    extract.add_argument("--workers", type=int, default=1)
    extract.add_argument("--no-ensemble", action="store_true", help="top queries only")
    extract.add_argument("--json", help="write extraction records to this file")
    extract.set_defaults(func=cmd_extract)

    check = sub.add_parser("check", help="replay snapshots, report drift, optionally repair")
    check.add_argument("--artifacts", required=True, help="artifact directory")
    check.add_argument("--snapshots", type=int, default=20, help="snapshots to replay")
    check.add_argument("--repair", action="store_true", help="auto re-induce on drift")
    check.add_argument("--out", help="directory for repaired artifacts")
    check.add_argument(
        "--strict-canonical",
        action="store_true",
        help="treat canonical-path changes as drift",
    )
    check.set_defaults(func=cmd_check)

    serve = sub.add_parser(
        "serve",
        help=(
            "run a request stream through the async serving layer, or "
            "--listen HOST:PORT to serve the repro.api facade over HTTP"
        ),
    )
    serve.add_argument(
        "--artifacts",
        help=(
            "artifact directory or store (required without --listen; with "
            "--listen: store root to serve/create, flat dirs are preloaded "
            "read-only, omit for a fresh in-memory registry)"
        ),
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help=(
            "serve the facade protocol over HTTP instead of replaying a "
            "one-shot stream (port 0 picks an ephemeral port, printed on start)"
        ),
    )
    serve.add_argument(
        "--own-shards",
        metavar="N,M,...",
        help=(
            "with --listen: serve only these shard indexes, answering a "
            "typed 421 shard_not_owned error for keys that place elsewhere "
            "(cluster members behind a RouterClient)"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "total shard count --own-shards is relative to (default: the "
            f"backing store's recorded count, else {DEFAULT_SHARDS})"
        ),
    )
    serve.add_argument(
        "--tenant",
        default="",
        help=(
            "with --listen: scope the server into one tenant namespace "
            "(site keys are qualified as tenant::key)"
        ),
    )
    serve.add_argument(
        "--epoch",
        type=int,
        default=None,
        help=(
            "with --listen: the placement epoch this host serves at, "
            "advertised in /healthz and stamped into 421 payloads "
            "(default: the backing store's recorded epoch, else 0)"
        ),
    )
    serve.add_argument(
        "--auth-keys",
        metavar="FILE",
        default="",
        help=(
            "with --listen: enforce per-tenant API keys from this file "
            "(one '<key> [tenant]' per line, '*' = admin; falls back to "
            "$REPRO_AUTH_KEYS; omit both for an open server)"
        ),
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="R",
        help=(
            "with --listen: per-tenant token-bucket rate in requests/s "
            "(0 = unlimited); throttled requests get 429 + Retry-After"
        ),
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --listen: token-bucket capacity (default: one second "
            "of --rate-limit refill)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --listen: cap on one tenant's concurrent in-flight "
            "requests (0 = unlimited)"
        ),
    )
    serve.add_argument(
        "--limiter-tenants",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "with --listen: LRU bound on per-tenant limiter/metrics "
            "state (default: 1024)"
        ),
    )
    serve.add_argument(
        "--access-log",
        metavar="FILE",
        default="",
        help=(
            "with --listen: append one JSONL record per answered request "
            "(tenant, verb, status, latency_ms, coalesced)"
        ),
    )
    serve.add_argument("--snapshot", type=int, default=0, help="archive snapshot index")
    serve.add_argument("--workers", type=int, default=1, help="execution pool size")
    serve.add_argument("--concurrency", type=int, default=8, help="client concurrency")
    serve.add_argument("--max-pending", type=int, default=64, help="admission queue bound")
    serve.add_argument("--per-site-limit", type=int, default=8)
    serve.add_argument("--no-ensemble", action="store_true", help="top queries only")
    serve.add_argument("--json", help="write serving stats to this file")
    serve.set_defaults(func=cmd_serve)

    sweep = sub.add_parser(
        "sweep", help="multi-process drift sweep over a sharded store"
    )
    sweep.add_argument("--store", required=True, help="sharded artifact store root")
    sweep.add_argument("--snapshots", type=int, default=20, help="snapshots to replay")
    sweep.add_argument("--workers", type=int, default=1, help="sweep processes")
    sweep.add_argument(
        "--no-repair", action="store_true", help="detect only, do not re-induce"
    )
    sweep.add_argument(
        "--strict-canonical",
        action="store_true",
        help="treat canonical-path changes as drift",
    )
    sweep.add_argument(
        "--fail-on",
        choices=("drift", "repair", "never"),
        default="drift",
        help=(
            "exit non-zero on any drift (drift), only on failed repairs "
            "(repair — for telemetry jobs that expect drift), or never"
        ),
    )
    sweep.set_defaults(func=cmd_sweep)

    migrate = sub.add_parser(
        "migrate",
        help=(
            "re-shard a sharded store into a new root at the next epoch "
            "(atomic per-artifact cut-over; --dry-run prints the move plan)"
        ),
    )
    migrate.add_argument("--store", required=True, help="source store root")
    migrate.add_argument("--dest", required=True, help="destination store root")
    migrate.add_argument(
        "--shards",
        type=int,
        default=None,
        help="destination shard count (default: same as the source store)",
    )
    migrate.add_argument(
        "--epoch",
        type=int,
        default=None,
        help=(
            "destination placement epoch (default: source epoch + 1; "
            "must advance the source epoch)"
        ),
    )
    migrate.add_argument(
        "--dry-run",
        action="store_true",
        help="print the per-artifact move plan without writing anything",
    )
    migrate.set_defaults(func=cmd_migrate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

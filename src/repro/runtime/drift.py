"""Drift detection and automatic re-induction.

A deployed wrapper degrades silently: the page keeps serving, the
wrapper keeps returning *something* (or nothing), and no exception is
ever raised.  The detector watches three signals on every served page:

* ``empty_result`` — the top query selects nothing.  The strongest
  signal; a wrapper that finds nothing is broken (or the data left the
  page, which the repair loop discovers when re-induction fails too).
* ``ensemble_disagreement`` — the feature-diverse committee members no
  longer agree with the top query's result set.  Members anchor on
  *independent* features (Sec. 7's future-work item, implemented in
  :mod:`repro.induction.ensemble`), so a class rename breaks some
  members but not others: disagreement above the configured fraction
  means the page moved under the wrapper even while the top query still
  returns a plausible-looking result.
* ``canonical_change`` — the canonical paths of the selected nodes
  differ from the fingerprint stored at induction time (the paper's
  c-change measure, Sec. 2).  Soft by default: positional churn is
  routine (avg ≈ 4.1 c-changes per surviving wrapper, Sec. 6.2) and a
  robust wrapper is *supposed* to absorb it — the signal is recorded
  for monitoring but does not alone flag drift.

On drift, :func:`reinduce` rebuilds the wrapper from the artifact's
stored samples plus the drifted page: labels for the new page come from
the surviving ensemble majority (or an explicit re-annotation), and the
multi-sample aggregation of Algorithm 3 then favors queries accurate on
*both* page versions — the features that survived the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.dom.node import Document, Node
from repro.induction.induce import WrapperInducer
from repro.induction.samples import QuerySample
from repro.runtime.artifact import ArtifactError, WrapperArtifact
from repro.xpath.canonical import canonical_key
from repro.xpath.compile import evaluate_compiled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evolution.archive import SyntheticArchive

#: Signal names (stable identifiers — they appear in reports and logs).
EMPTY_RESULT = "empty_result"
ENSEMBLE_DISAGREEMENT = "ensemble_disagreement"
CANONICAL_CHANGE = "canonical_change"

#: Signals that flag a wrapper as drifted (vs. merely monitored).
HARD_SIGNALS = frozenset({EMPTY_RESULT, ENSEMBLE_DISAGREEMENT})


@dataclass(frozen=True)
class DriftConfig:
    """Detector thresholds.

    ``disagreement_threshold`` is the fraction of ensemble members that
    must disagree with the top query before the ensemble signal fires;
    with the default 0.5 a single broken member of a 3-committee stays
    quiet (expected: members break independently by design) while a
    majority break fires.  ``canonical_change_is_hard`` promotes the
    c-change signal to a drift trigger for paranoid deployments.
    """

    disagreement_threshold: float = 0.5
    canonical_change_is_hard: bool = False

    def hard_signals(self) -> frozenset[str]:
        if self.canonical_change_is_hard:
            return HARD_SIGNALS | {CANONICAL_CHANGE}
        return HARD_SIGNALS


@dataclass(frozen=True)
class DriftReport:
    """Detector verdict for one (wrapper, page) check."""

    task_id: str
    signals: tuple[str, ...]
    drifted: bool
    snapshot: Optional[int] = None
    result_count: int = 0
    disagreeing_members: int = 0
    member_count: int = 0

    @property
    def healthy(self) -> bool:
        return not self.signals


class DriftDetector:
    """Check deployed wrappers for drift on served pages."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config or DriftConfig()

    def check(
        self,
        artifact: WrapperArtifact,
        doc: Document,
        snapshot: Optional[int] = None,
    ) -> DriftReport:
        signals: list[str] = []
        result = evaluate_compiled(artifact.best_query(), doc.root, doc)
        if not result:
            signals.append(EMPTY_RESULT)
        elif canonical_key(result) != artifact.baseline_paths:
            signals.append(CANONICAL_CHANGE)

        ensemble = artifact.ensemble_wrapper()
        result_ids = doc.node_ids(iter(result))
        disagreeing = sum(
            1
            for members in ensemble.member_results(doc)
            if doc.node_ids(iter(members)) != result_ids
        )
        member_count = len(ensemble.members)
        if member_count and disagreeing / member_count >= self.config.disagreement_threshold:
            signals.append(ENSEMBLE_DISAGREEMENT)

        hard = self.config.hard_signals()
        return DriftReport(
            task_id=artifact.task_id,
            signals=tuple(signals),
            drifted=any(signal in hard for signal in signals),
            snapshot=snapshot,
            result_count=len(result),
            disagreeing_members=disagreeing,
            member_count=member_count,
        )


def reinduce(
    artifact: WrapperArtifact,
    doc: Document,
    targets: Optional[Sequence[Node]] = None,
    inducer: Optional[WrapperInducer] = None,
    snapshot: Optional[int] = None,
) -> WrapperArtifact:
    """Repair a drifted wrapper: re-induce from stored samples + the new page.

    ``targets`` labels the new page explicitly (a re-annotation event);
    when omitted, the surviving ensemble majority labels it (automatic
    repair).  Raises :class:`ArtifactError` when no labels can be
    produced — the caller then knows human re-annotation is required.
    """
    labels = "explicit"
    if targets is None:
        labels = "ensemble_vote"
        targets = artifact.ensemble_wrapper().select(doc)
    if not targets:
        source = "ensemble vote is empty" if labels == "ensemble_vote" else "no labels given"
        raise ArtifactError(
            f"{artifact.task_id}: {source} on the drifted page; re-annotation required"
        )
    samples = artifact.restore_samples()
    samples.append(QuerySample(doc, list(targets)))
    if inducer is None:
        # Repair under the settings the wrapper was originally induced
        # with — a different k or volatile key would rank a different
        # candidate pool than the deployment signed off on.
        config = artifact.induction_config()
        inducer = WrapperInducer(k=config.k, config=config)
    result = inducer.induce(samples)
    if result.best is None:
        raise ArtifactError(f"{artifact.task_id}: re-induction produced no wrapper")
    stats = getattr(result, "stats", None)
    provenance = {
        **artifact.provenance,
        "repaired_from_generation": artifact.generation,
        "repaired_at_snapshot": snapshot,
        "repair_labels": labels,
    }
    if stats is not None:
        # Deterministic counters (search mode, fold/prune counts) — the
        # serving layer's induce metrics read them off the repaired
        # artifact, and parity is unaffected.
        provenance["induction_stats"] = stats.as_payload()
    repaired = WrapperArtifact.from_induction(
        result,
        samples,
        task_id=artifact.task_id,
        site_id=artifact.site_id,
        role=artifact.role,
        ensemble_size=max(1, len(artifact.ensemble)),
        max_queries=max(1, len(artifact.queries)),
        generation=artifact.generation + 1,
        provenance=provenance,
        config=inducer.config,
    )
    return repaired


@dataclass
class MaintenanceRecord:
    """Outcome of replaying one wrapper across archive snapshots."""

    task_id: str
    checked: list[DriftReport] = field(default_factory=list)
    drift_snapshot: Optional[int] = None
    drift_signals: tuple[str, ...] = ()
    repaired: Optional[WrapperArtifact] = None
    repair_error: str = ""

    @property
    def drifted(self) -> bool:
        return self.drift_snapshot is not None


def replay_archive(
    artifact: WrapperArtifact,
    archive: "SyntheticArchive",
    snapshots: Sequence[int],
    detector: Optional[DriftDetector] = None,
) -> list[DriftReport]:
    """Run the detector over every snapshot — no early stop, no repair.

    :func:`maintain_over_archive` answers the *operational* question
    ("when do I first have to act?") and stops at the first hard drift.
    Lead-time studies (:mod:`repro.sitegen.study`) need the *full*
    signal trace instead: every report, healthy or not, so the distance
    between a scripted break snapshot and the first signal — and any
    false alarms before it — can be measured.  Broken archive captures
    are skipped, exactly as in maintenance (an erroneous capture says
    nothing about the wrapper).
    """
    detector = detector or DriftDetector()
    reports: list[DriftReport] = []
    for index in snapshots:
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        reports.append(detector.check(artifact, doc, snapshot=index))
    return reports


def maintain_over_archive(
    artifact: WrapperArtifact,
    archive: "SyntheticArchive",
    snapshots: Sequence[int],
    detector: Optional[DriftDetector] = None,
    repair: bool = True,
    inducer: Optional[WrapperInducer] = None,
) -> MaintenanceRecord:
    """Replay snapshots until the wrapper drifts; optionally repair it.

    Broken archive captures are skipped (an erroneous snapshot says
    nothing about the wrapper).  The replay stops at the first hard
    drift; with ``repair=True`` an automatic re-induction from the
    stored samples against that snapshot is attempted, labels coming
    from the ensemble vote.
    """
    detector = detector or DriftDetector()
    record = MaintenanceRecord(task_id=artifact.task_id)
    for index in snapshots:
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        report = detector.check(artifact, doc, snapshot=index)
        record.checked.append(report)
        if report.drifted:
            record.drift_snapshot = index
            record.drift_signals = report.signals
            if repair:
                try:
                    record.repaired = reinduce(
                        artifact, doc, inducer=inducer, snapshot=index
                    )
                except ArtifactError as exc:
                    record.repair_error = str(exc)
            break
    return record

"""Entry point for ``python -m repro.runtime``.

The ``__main__`` guard is load-bearing: spawn-started induction pool
workers (``repro.induction.parallel``) re-import the parent's main
module, and an unguarded ``sys.exit(main())`` would re-enter the CLI
inside every worker of a served process.
"""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Entry point for ``python -m repro.runtime``."""

import sys

from repro.runtime.cli import main

sys.exit(main())

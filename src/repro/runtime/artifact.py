"""Versioned, JSON-serializable wrapper artifacts.

A :class:`WrapperArtifact` is everything a serving/maintenance process
needs to know about one induced wrapper:

* the ranked queries (canonical dsXPath text + accuracy counts + the
  robustness score each was ranked by);
* the feature-diverse ensemble committee and its quorum;
* the canonical-path fingerprint of the targets at induction time (the
  baseline for c-change drift detection);
* the annotated samples themselves — page HTML plus canonical paths of
  the target/context nodes — so a degraded wrapper can be *re-induced*
  without access to the original annotation session;
* provenance (site/task ids, snapshot, config, repair generation).

Queries round-trip through their canonical text
(``str(query)`` → :func:`repro.xpath.parser.parse_query`), which is
lossless for everything the induction emits; a reloaded artifact
therefore compiles to the exact same plan and selects the exact same
node sets (enforced by ``tests/runtime/test_artifact.py``).  Samples
round-trip through :func:`repro.dom.serialize.to_html` /
:func:`repro.dom.parser.parse_html`; target nodes are re-located by
evaluating their canonical paths on the reparsed page, and volatile
(data, non-template) text is re-marked by value so re-induction obeys
the same no-data-predicates protocol as the original run.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields as dataclass_fields, replace
from typing import Optional, Sequence

from repro.dom.node import Document, Node
from repro.dom.parser import parse_html
from repro.dom.serialize import to_html
from repro.induction.config import InductionConfig
from repro.induction.ensemble import EnsembleWrapper, build_ensemble
from repro.induction.induce import InductionResult
from repro.induction.samples import QuerySample
from repro.xpath.ast import Query
from repro.xpath.canonical import canonical_key, canonical_path
from repro.xpath.compile import evaluate_compiled
from repro.xpath.parser import parse_query

#: Current artifact format version.  Bump on any incompatible change to
#: the JSON payload; ``from_payload`` refuses versions it does not know.
ARTIFACT_VERSION = 1


class ArtifactError(ValueError):
    """A wrapper artifact could not be built, parsed, or restored."""


@dataclass(frozen=True)
class RankedQuery:
    """One ranked induction candidate in serializable form.

    ``text`` is the canonical dsXPath text; ``score`` the robustness
    score; ``tp``/``fp``/``fn`` the accuracy counts against the samples
    the wrapper was induced from.
    """

    text: str
    score: float
    tp: int
    fp: int
    fn: int

    def parse(self) -> Query:
        return parse_query(self.text)

    def to_payload(self) -> dict:
        return {
            "query": self.text,
            "score": self.score,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RankedQuery":
        try:
            return cls(
                text=str(payload["query"]),
                score=float(payload["score"]),
                tp=int(payload["tp"]),
                fp=int(payload["fp"]),
                fn=int(payload["fn"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed ranked query payload: {payload!r}") from exc


def config_to_payload(config: InductionConfig) -> dict:
    """Serialize the *complete* induction configuration.

    Repairs must re-induce under exactly the settings the deployment
    signed off on (a forbidden text predicate resurfacing on repair is a
    silent protocol violation), so every field is persisted — set-valued
    fields as sorted lists for JSON.
    """
    payload = asdict(config)
    payload["skipped_attributes"] = sorted(config.skipped_attributes)
    return payload


def config_from_payload(payload: dict) -> InductionConfig:
    """Rebuild an :class:`InductionConfig`, tolerating missing keys
    (fields added after the artifact was written keep their defaults)."""
    known = {f.name for f in dataclass_fields(InductionConfig)}
    kwargs = {key: value for key, value in payload.items() if key in known}
    if "skipped_attributes" in kwargs:
        kwargs["skipped_attributes"] = frozenset(kwargs["skipped_attributes"])
    return InductionConfig(**kwargs)


def resolve_path(doc: Document, path: str) -> Node:
    """Evaluate a canonical path; it must select exactly one node.

    The shared re-location primitive: stored samples, facade samples,
    and explicit re-annotations all address nodes this way.
    """
    matches = evaluate_compiled(parse_query(path), doc.root, doc)
    if len(matches) != 1:
        raise ArtifactError(
            f"canonical path {path!r} selects {len(matches)} nodes on the stored page"
        )
    return matches[0]


#: Backwards-compatible private alias (pre-facade internal name).
_resolve_path = resolve_path


@dataclass(frozen=True)
class StoredSample:
    """One annotated sample in serializable form.

    ``context_path`` is ``None`` when the context is the document node
    (the overwhelmingly common case).  ``volatile_texts`` holds the
    normalized values of the page's volatile (data) text nodes: the
    ``meta`` marks do not survive HTML serialization, so on restore any
    text node *containing* one of these values is re-marked volatile —
    a conservative re-marking (template text that merely embeds a data
    value is data-bearing too) that keeps re-induction from anchoring
    wrappers on page data.  ``volatile_key`` records which ``meta`` key
    the marks were captured from, so restore re-marks under the same
    key the (possibly customized) induction config reads.
    """

    html: str
    target_paths: tuple[str, ...]
    context_path: Optional[str] = None
    volatile_texts: tuple[str, ...] = ()
    volatile_key: str = "volatile"

    @classmethod
    def from_sample(cls, sample: QuerySample, volatile_meta_key: str = "volatile") -> "StoredSample":
        doc = sample.doc
        target_paths = tuple(str(canonical_path(node)) for node in sample.targets)
        context_path = (
            None if sample.context is doc.root else str(canonical_path(sample.context))
        )
        volatile = {
            doc.normalized_text(node)
            for node in doc.index.texts
            if node.meta.get(volatile_meta_key)
        }
        stored = cls(
            html=to_html(doc),
            target_paths=target_paths,
            context_path=context_path,
            volatile_texts=tuple(sorted(v for v in volatile if v)),
            volatile_key=volatile_meta_key,
        )
        stored.restore()  # fail at build time, not at repair time
        return stored

    def restore(self) -> QuerySample:
        """Reparse the page and re-locate targets/context/volatile text."""
        doc = parse_html(self.html)
        if self.volatile_texts:
            for node in doc.index.texts:
                text = doc.normalized_text(node)
                if any(value in text for value in self.volatile_texts):
                    node.meta[self.volatile_key] = True
        targets = [_resolve_path(doc, path) for path in self.target_paths]
        context = (
            _resolve_path(doc, self.context_path)
            if self.context_path is not None
            else None
        )
        return QuerySample(doc, targets, context)

    def to_payload(self) -> dict:
        payload = {
            "html": self.html,
            "targets": list(self.target_paths),
            "volatile_texts": list(self.volatile_texts),
            "volatile_key": self.volatile_key,
        }
        if self.context_path is not None:
            payload["context"] = self.context_path
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "StoredSample":
        try:
            return cls(
                html=str(payload["html"]),
                target_paths=tuple(str(p) for p in payload["targets"]),
                context_path=payload.get("context"),
                volatile_texts=tuple(str(v) for v in payload.get("volatile_texts", ())),
                volatile_key=str(payload.get("volatile_key", "volatile")),
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError("malformed stored sample payload") from exc


@dataclass(frozen=True)
class WrapperArtifact:
    """A deployable wrapper: ranked queries + ensemble + samples + provenance."""

    task_id: str
    site_id: str
    role: str
    queries: tuple[RankedQuery, ...]
    ensemble: tuple[str, ...]
    quorum: int
    baseline_paths: tuple[str, ...]
    samples: tuple[StoredSample, ...]
    beta: float = 0.5
    generation: int = 0
    provenance: dict = field(default_factory=dict)
    #: The full induction configuration the wrapper was built with;
    #: re-induction reuses it so a repair ranks exactly the candidate
    #: space the original induction did.
    config: dict = field(default_factory=dict)
    version: int = ARTIFACT_VERSION

    def __post_init__(self) -> None:
        if not self.queries:
            raise ArtifactError("an artifact needs at least one ranked query")
        if not self.ensemble:
            raise ArtifactError("an artifact needs at least one ensemble member")
        if not 1 <= self.quorum <= len(self.ensemble):
            # quorum 0 degrades the vote to a union; quorum > members can
            # never pass — both silently corrupt drift detection/repair.
            raise ArtifactError(
                f"quorum {self.quorum} out of range for {len(self.ensemble)} members"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_induction(
        cls,
        result: InductionResult,
        samples: Sequence[QuerySample],
        *,
        task_id: str,
        site_id: str,
        role: str = "",
        ensemble_size: int = 3,
        max_queries: int = 10,
        generation: int = 0,
        provenance: Optional[dict] = None,
        config: Optional[InductionConfig] = None,
    ) -> "WrapperArtifact":
        """Package an induction result and its samples for deployment."""
        if result.best is None:
            raise ArtifactError(f"induction produced no wrapper for {task_id}")
        if not samples:
            raise ArtifactError("an artifact needs at least one sample")
        for sample in samples:
            # The serving stack (extractor, drift detector, repair) always
            # evaluates from the document node; a non-root-context sample
            # would fingerprint one context and serve another.
            if sample.context is not sample.doc.root:
                raise ArtifactError(
                    f"{task_id}: runtime artifacts require document-node "
                    "contexts (got a non-root sample context)"
                )
        config = config or InductionConfig()
        ensemble = build_ensemble(
            result, size=ensemble_size, diversity=config.diversity or None
        )
        volatile_key = config.volatile_meta_key
        return cls(
            task_id=task_id,
            site_id=site_id,
            role=role,
            queries=tuple(
                RankedQuery.from_payload(entry)
                for entry in result.export(limit=max_queries)
            ),
            ensemble=ensemble.member_texts(),
            quorum=ensemble.quorum or 1,
            # Fingerprint what the deployed query *actually selects* on the
            # newest sample page (not the annotation targets): a wrapper
            # induced from noisy annotations (fp/fn > 0) would otherwise
            # report a canonical change on every page, including unchanged
            # ones.  The newest sample keeps repaired artifacts monitoring
            # against the page version they were repaired on.
            baseline_paths=canonical_key(
                evaluate_compiled(
                    result.best.query, samples[-1].context, samples[-1].doc
                )
            ),
            samples=tuple(
                StoredSample.from_sample(s, volatile_meta_key=volatile_key)
                for s in samples
            ),
            beta=result.beta,
            generation=generation,
            provenance=dict(provenance or {}),
            config=config_to_payload(config),
        )

    def induction_config(self) -> InductionConfig:
        """The induction settings this wrapper was built with — repairs
        re-induce under exactly the configuration of the original run."""
        return config_from_payload(self.config)

    # -- deployment views ---------------------------------------------------

    @property
    def best(self) -> RankedQuery:
        return self.queries[0]

    def best_query(self) -> Query:
        """The top-ranked wrapper, parsed once and memoized (drift checks
        run per served page; re-parsing per check would dominate)."""
        try:
            return self._best_query
        except AttributeError:
            query = self.best.parse()
            object.__setattr__(self, "_best_query", query)
            return query

    def all_queries(self) -> list[Query]:
        return [ranked.parse() for ranked in self.queries]

    def ensemble_wrapper(self) -> EnsembleWrapper:
        """The committee, parsed once and memoized (see :meth:`best_query`)."""
        try:
            return self._ensemble_wrapper
        except AttributeError:
            wrapper = EnsembleWrapper.from_texts(self.ensemble, quorum=self.quorum)
            object.__setattr__(self, "_ensemble_wrapper", wrapper)
            return wrapper

    def extraction_plans(self) -> dict:
        """Compiled query plans for every deployed wrapper text, memoized.

        Maps the best query's text and each ensemble member's text to its
        :class:`~repro.xpath.compile.CompiledQuery`.  Compiled eagerly at
        load time (:meth:`from_payload`) so the serving inner loop pays a
        dict lookup per call instead of a parse + global-cache probe;
        plans are document independent, so one mapping serves every page.
        """
        try:
            return self._extraction_plans
        except AttributeError:
            from repro.xpath.compile import compile_text

            plans = {
                text: compile_text(text)
                for text in (self.best.text, *self.ensemble)
            }
            object.__setattr__(self, "_extraction_plans", plans)
            return plans

    def restore_samples(self) -> list[QuerySample]:
        """Rebuild the annotated samples this wrapper was induced from."""
        return [sample.restore() for sample in self.samples]

    def with_provenance(self, **entries) -> "WrapperArtifact":
        return replace(self, provenance={**self.provenance, **entries})

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "task_id": self.task_id,
            "site_id": self.site_id,
            "role": self.role,
            "beta": self.beta,
            "generation": self.generation,
            "queries": [ranked.to_payload() for ranked in self.queries],
            "ensemble": {"members": list(self.ensemble), "quorum": self.quorum},
            "baseline_paths": list(self.baseline_paths),
            "samples": [sample.to_payload() for sample in self.samples],
            "provenance": self.provenance,
            "config": self.config,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WrapperArtifact":
        if not isinstance(payload, dict):
            raise ArtifactError("artifact payload must be a JSON object")
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"unsupported artifact version {version!r} (supported: {ARTIFACT_VERSION})"
            )
        try:
            ensemble = payload["ensemble"]
            artifact = cls(
                task_id=str(payload["task_id"]),
                site_id=str(payload["site_id"]),
                role=str(payload.get("role", "")),
                queries=tuple(
                    RankedQuery.from_payload(q) for q in payload["queries"]
                ),
                ensemble=tuple(str(m) for m in ensemble["members"]),
                quorum=int(ensemble["quorum"]),
                baseline_paths=tuple(str(p) for p in payload["baseline_paths"]),
                samples=tuple(
                    StoredSample.from_payload(s) for s in payload["samples"]
                ),
                beta=float(payload.get("beta", 0.5)),
                generation=int(payload.get("generation", 0)),
                provenance=dict(payload.get("provenance", {})),
                config=dict(payload.get("config", {})),
                version=int(version),
            )
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from exc
        # Every query must parse — catch corruption at load time — and
        # the deployed wrappers compile to plans here, so serving never
        # pays parse/compile cost inside a request.
        for ranked in artifact.queries:
            ranked.parse()
        artifact.ensemble_wrapper()
        artifact.extraction_plans()
        return artifact

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "WrapperArtifact":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps() + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "WrapperArtifact":
        with open(path, encoding="utf-8") as handle:
            return cls.loads(handle.read())

    def filename(self) -> str:
        """A filesystem-safe name for this artifact (task id based)."""
        return self.task_id.replace("/", "__") + ".json"

"""Wrapper lifecycle runtime: the save → serve → drift → repair loop.

Induction (:mod:`repro.induction`) produces in-memory
:class:`~repro.induction.induce.InductionResult`s; a production
deployment needs wrappers that *outlive* the process that induced them.
This package provides that layer:

* :mod:`repro.runtime.artifact` — versioned, JSON-serializable
  :class:`WrapperArtifact`\\ s bundling the ranked queries, the ensemble
  committee, and the annotated samples they were induced from, with a
  lossless round trip through the dsXPath canonical text;
* :mod:`repro.runtime.extractor` — a batch extraction engine evaluating
  many (wrapper, page) pairs with one parse + one document index per
  page and an optional process-pool fan-out;
* :mod:`repro.runtime.drift` — drift detection (empty results,
  canonical-path c-changes, ensemble disagreement votes) and automatic
  re-induction from the stored samples plus the drifted page;
* :mod:`repro.runtime.store` — a :class:`ShardedArtifactStore`
  partitioning artifacts (and their drift-report JSONL streams) across
  shard directories by stable site-key hash, with atomic writes and an
  mtime-validated LRU;
* :mod:`repro.runtime.serve` — an asyncio request/response front-end
  over the batch engine with micro-batching, same-page request
  coalescing, per-site concurrency limits, and bounded-queue
  backpressure;
* :mod:`repro.runtime.fleet` — a multi-process drift sweeper assigning
  whole store shards to workers, streaming full drift telemetry and
  chaining repairs generation over generation;
* :mod:`repro.runtime.net` — an HTTP/1.1 JSON front-end serving the
  :mod:`repro.api` facade over TCP (``serve --listen HOST:PORT``), with
  extraction traffic coalesced through the async serving layer and
  optional shard ownership (``--own-shards``) for cluster members
  routed by :mod:`repro.cluster`;
* ``python -m repro.runtime`` — an ``induce`` / ``extract`` / ``check``
  / ``serve`` / ``sweep`` CLI driving the loop over the synthetic
  archive corpus.

See docs/RUNTIME.md for the artifact format and the drift protocol.
"""

from repro.runtime.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    RankedQuery,
    StoredSample,
    WrapperArtifact,
)
from repro.runtime.corpus import induce_corpus_task, snapshot0_annotation
from repro.runtime.drift import (
    DriftConfig,
    DriftDetector,
    DriftReport,
    MaintenanceRecord,
    maintain_over_archive,
    reinduce,
    replay_archive,
)
from repro.runtime.extractor import (
    ExtractionRecord,
    PageJob,
    extract_document,
    extract_serial,
    jobs_for_artifacts,
)
from repro.runtime.fleet import (
    SweepConfig,
    SweepSummary,
    WrapperSweep,
    sweep_store,
    sweep_wrapper,
)
from repro.runtime.serve import (
    AsyncExtractionServer,
    ParseCache,
    ParseCacheInfo,
    RequestError,
    ServerStats,
    ServingConfig,
    serve_jobs,
    serve_jobs_sync,
)
from repro.runtime.store import (
    MigrationMove,
    MigrationPlan,
    ShardedArtifactStore,
    StoreError,
    artifacts_from_path,
    migrate_directory,
    migrate_store,
    shard_index,
    site_key_of,
)

#: Lazily exported (PEP 562): the network front-end imports ``repro.api``,
#: which imports runtime submodules — an eager import here would cycle.
_NET_EXPORTS = ("NetConfig", "WrapperHTTPServer", "serve_http")

#: Deprecated package-level shims → their facade replacements (kept out
#: of ``__all__`` so star imports stay warning-free; see repro._compat).
_DEPRECATED = {
    "BatchExtractor": (
        "repro.runtime.extractor",
        "repro.api.WrapperClient.extract (or repro.runtime.extractor.BatchExtractor "
        "for the low-level batch engine)",
    ),
}

_warned_deprecations: set[str] = set()


def __getattr__(name: str):
    if name in _NET_EXPORTS:
        from repro.runtime import net

        return getattr(net, name)
    from repro._compat import deprecated_getattr

    return deprecated_getattr(__name__, _DEPRECATED, _warned_deprecations, name)


__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "AsyncExtractionServer",
    "NetConfig",
    "DriftConfig",
    "DriftDetector",
    "DriftReport",
    "ExtractionRecord",
    "MaintenanceRecord",
    "MigrationMove",
    "MigrationPlan",
    "PageJob",
    "ParseCache",
    "ParseCacheInfo",
    "RankedQuery",
    "RequestError",
    "ServerStats",
    "ServingConfig",
    "ShardedArtifactStore",
    "StoreError",
    "StoredSample",
    "SweepConfig",
    "SweepSummary",
    "WrapperArtifact",
    "WrapperHTTPServer",
    "WrapperSweep",
    "artifacts_from_path",
    "extract_document",
    "extract_serial",
    "induce_corpus_task",
    "jobs_for_artifacts",
    "maintain_over_archive",
    "migrate_directory",
    "migrate_store",
    "reinduce",
    "replay_archive",
    "serve_http",
    "serve_jobs",
    "serve_jobs_sync",
    "shard_index",
    "site_key_of",
    "snapshot0_annotation",
    "sweep_store",
    "sweep_wrapper",
]

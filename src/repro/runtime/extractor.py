"""Batch extraction: many (wrapper, page) pairs, amortized per page.

The naive deployment loop (:func:`extract_serial`) treats every
(wrapper, page) pair independently: parse the page, build its document
index, evaluate one query.  Parsing + indexing dominate single-query
evaluation, so when several wrappers target the same page — every site
runs multiple extraction tasks, and every artifact carries an ensemble —
that loop re-pays the dominant cost per *pair*.

:class:`BatchExtractor` groups the pairs by page: one parse + one
document index + one :class:`~repro.xpath.cache.CachedEvaluator` per
page, all queries evaluated against it through the globally memoized
text-plan cache (:func:`repro.xpath.compile.compile_text`, shared
across pages since plans are document independent) — or through plans
an artifact pre-compiled at load time (``plans=`` on
:func:`extract_document`).  With ``workers >
1`` page groups fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`;
jobs and records are plain picklable values (HTML text in, canonical
paths + normalized text out), so nothing heavier than strings crosses
process boundaries.

``benchmarks/bench_runtime.py`` records the speedup over the serial
loop on the full corpus in ``BENCH_runtime.json``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.dom.node import AttributeNode, Document, Node
from repro.dom.parser import parse_html
from repro.xpath.canonical import canonical_path
from repro.xpath.cache import CachedEvaluator
from repro.xpath.compile import CompiledQuery, compile_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.artifact import WrapperArtifact


@dataclass(frozen=True)
class PageJob:
    """One page with every wrapper that should run against it.

    ``wrappers`` maps wrapper ids to canonical dsXPath text — ids are
    caller-chosen (task ids, ``task#member2``, ...) and flow through to
    the records unchanged.
    """

    page_id: str
    html: str
    wrappers: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class ExtractionRecord:
    """What one wrapper extracted from one page.

    ``paths`` are the canonical paths of the matched nodes (attribute
    matches use a trailing ``attribute::name`` step), ``values`` their
    normalized text — the portable representation of a result set.
    """

    page_id: str
    wrapper_id: str
    paths: tuple[str, ...]
    values: tuple[str, ...]

    @property
    def count(self) -> int:
        return len(self.paths)

    @property
    def is_empty(self) -> bool:
        return not self.paths


def _node_reference(doc: Document, node: Node) -> tuple[str, str]:
    """(canonical path, normalized text) of a result node."""
    if isinstance(node, AttributeNode):
        return str(canonical_path(node)), node.value
    return str(canonical_path(node)), doc.normalized_text(node)


def extract_document(
    doc: Document,
    wrappers: Sequence[tuple[str, str]],
    page_id: str = "",
    plans: Mapping[str, CompiledQuery] | None = None,
) -> list[ExtractionRecord]:
    """Evaluate several wrappers against one already-parsed document.

    ``plans`` optionally maps wrapper text to pre-compiled plans (see
    :meth:`~repro.runtime.artifact.WrapperArtifact.extraction_plans`);
    texts not covered fall back to the global text-plan memo.
    """
    evaluator = CachedEvaluator(doc)
    records: list[ExtractionRecord] = []
    for wrapper_id, text in wrappers:
        plan = plans.get(text) if plans is not None else None
        if plan is None:
            plan = compile_text(text)
        matches = evaluator.evaluate_plan(plan, doc.root)
        references = [_node_reference(doc, node) for node in matches]
        records.append(
            ExtractionRecord(
                page_id=page_id,
                wrapper_id=wrapper_id,
                paths=tuple(path for path, _ in references),
                values=tuple(value for _, value in references),
            )
        )
    return records


def extract_serial(jobs: Iterable[PageJob]) -> list[ExtractionRecord]:
    """The naive per-pair loop: one parse per (wrapper, page) pair.

    This is the baseline the batch engine is measured against — exactly
    what a deployment gets by calling "extract(wrapper, html)" in a loop
    over its wrapper store.
    """
    records: list[ExtractionRecord] = []
    for job in jobs:
        for wrapper_id, text in job.wrappers:
            doc = parse_html(job.html)
            records.extend(extract_document(doc, [(wrapper_id, text)], job.page_id))
    return records


def _extract_chunk(chunk: list[tuple[str, str, tuple[tuple[str, str], ...]]]) -> list[tuple]:
    """Worker: parse each page once, run all its wrappers (picklable I/O)."""
    out: list[tuple] = []
    for page_id, html, wrappers in chunk:
        doc = parse_html(html)
        for record in extract_document(doc, wrappers, page_id):
            out.append((record.page_id, record.wrapper_id, record.paths, record.values))
    return out


class BatchExtractor:
    """Evaluate many (wrapper, page) pairs with per-page amortization.

    ``workers=1`` runs in-process; ``workers>1`` splits the page list
    into contiguous chunks and fans them out over a process pool.
    Record order always matches the job order (per page, wrappers in
    job order), so callers can zip results against their inputs.

    By default each :meth:`extract` call spins up (and tears down) its
    own pool — fine for one-shot batches.  Callers making repeated
    ``extract()`` calls (the CLI does; the serving layer manages its own
    executor so it can await futures) can opt into ``persistent=True``
    and the context-manager protocol: the pool outlives calls, so
    process spawn cost is paid once::

        with BatchExtractor(workers=4, persistent=True) as extractor:
            for jobs in job_batches:
                extractor.extract(jobs)
    """

    def __init__(self, workers: int = 1, persistent: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None

    def __enter__(self) -> "BatchExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the persistent pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def extract(self, jobs: Sequence[PageJob]) -> list[ExtractionRecord]:
        payload = [(job.page_id, job.html, job.wrappers) for job in jobs]
        if self.workers == 1 or len(jobs) < 2:
            raw = _extract_chunk(payload)
        else:
            chunks = self._chunk(payload, min(self.workers, len(payload)))
            if self.persistent:
                pool = self._ensure_pool()
                raw = [row for part in pool.map(_extract_chunk, chunks) for row in part]
            else:
                with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                    raw = [
                        row for part in pool.map(_extract_chunk, chunks) for row in part
                    ]
        return [
            ExtractionRecord(page_id=p, wrapper_id=w, paths=paths, values=values)
            for p, w, paths, values in raw
        ]

    @staticmethod
    def _chunk(payload: list, n: int) -> list[list]:
        size, extra = divmod(len(payload), n)
        chunks, start = [], 0
        for i in range(n):
            end = start + size + (1 if i < extra else 0)
            if end > start:
                chunks.append(payload[start:end])
            start = end
        return chunks


def jobs_for_artifacts(
    artifacts: Sequence["WrapperArtifact"],
    page_html: dict[str, str],
    include_ensemble: bool = True,
    page_suffix: str = "",
) -> list[PageJob]:
    """Group artifacts by site page into batch jobs.

    ``page_html`` maps site ids to page HTML (e.g. rendered archive
    snapshots).  Each artifact contributes its top query under its task
    id and, when ``include_ensemble``, its committee members under
    ``<task_id>#m<i>``.  Artifacts whose site has no page are skipped.
    """
    by_site: dict[str, list[tuple[str, str]]] = {}
    for artifact in artifacts:
        if artifact.site_id not in page_html:
            continue
        wrappers = by_site.setdefault(artifact.site_id, [])
        wrappers.append((artifact.task_id, artifact.best.text))
        if include_ensemble:
            wrappers.extend(
                (f"{artifact.task_id}#m{i}", text)
                for i, text in enumerate(artifact.ensemble)
            )
    return [
        PageJob(
            page_id=site_id + page_suffix,
            html=page_html[site_id],
            wrappers=tuple(wrappers),
        )
        for site_id, wrappers in sorted(by_site.items())
    ]

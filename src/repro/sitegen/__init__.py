"""Parameterized site-family generation with scripted break points.

The corpus (:mod:`repro.sites`) is a fixed set of 84 sites; every
robustness claim so far rests on the same frozen scenarios and on
*stochastic* breaks with no ground truth for when a site actually
broke.  This package generates scenario diversity on demand:

* :mod:`repro.sitegen.family` — declarative :class:`FamilySpec`
  (vertical, layout, A/B reskin axis, list shape, locale, boilerplate
  noise) compiled into concrete :class:`~repro.sites.spec.SiteSpec`\\ s
  via the existing vertical factories;
* :mod:`repro.sitegen.breaks` — :class:`BreakScript`: scripted
  structural changes (class rename, wrapper-div insertion, label
  relocation, section reorder) at chosen snapshot indices, riding the
  ``evolve_state`` hook so break time is *known*;
* :mod:`repro.sitegen.study` — the drift lead-time study: induction at
  snapshot 0, full detector replay, per-break signal/hard lead times,
  false-healthy audit, and re-induction policy cost (ensemble-vote
  labels vs. re-annotation);
* :mod:`repro.sitegen.bench` — fleet generation throughput
  (``BENCH_sitegen.json``, gated by ``scripts/check_bench.py``);
* ``python -m repro.sitegen`` — ``roster`` / ``generate`` / ``sweep``.

See docs/SITEGEN.md for the FamilySpec schema, the break verbs, and
the lead-time metric definition.
"""

from repro.sitegen.bench import FLOOR_PAGES_PER_SEC, bench_payload, write_bench
from repro.sitegen.breaks import (
    BREAK_VERBS,
    BreakPoint,
    BreakScript,
)
from repro.sitegen.family import (
    LAYOUTS,
    LIST_SHAPES,
    PAGER_ROLE,
    RESKIN_AXES,
    FamilySpec,
    SiteFamily,
    default_roster,
    generate_family,
)
from repro.sitegen.locale import LABELS, LOCALES, localize_document
from repro.sitegen.study import (
    BreakObservation,
    FamilyStudy,
    RepairObservation,
    StudyConfig,
    run_family_payload,
    run_family_study,
)

__all__ = [
    "BREAK_VERBS",
    "BreakObservation",
    "BreakPoint",
    "BreakScript",
    "FLOOR_PAGES_PER_SEC",
    "FamilySpec",
    "FamilyStudy",
    "LABELS",
    "LAYOUTS",
    "LIST_SHAPES",
    "LOCALES",
    "PAGER_ROLE",
    "RESKIN_AXES",
    "RepairObservation",
    "SiteFamily",
    "StudyConfig",
    "bench_payload",
    "default_roster",
    "generate_family",
    "localize_document",
    "run_family_payload",
    "run_family_study",
    "write_bench",
]

"""``python -m repro.sitegen`` — generate families, run lead-time sweeps.

Subcommands:

* ``roster`` — print the default family roster as JSON (the declarative
  input other tooling can edit and feed back);
* ``generate`` — render family archives to HTML files on disk;
* ``sweep`` — the lead-time study: N families × M snapshots, induction
  + drift replay per task, per-break lead-time scoring, JSONL study
  stream, and the ``BENCH_sitegen.json`` generation-throughput
  headline.

Exit codes (sweep): 0 = every scripted break detected at/after its
injection index with zero false "healthy" verdicts at the break
snapshot; 1 = a break was missed or falsely reported healthy.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.sitegen.bench import BENCH_FILENAME, bench_payload, write_bench
from repro.sitegen.family import FamilySpec, default_roster, generate_family
from repro.sitegen.study import StudyConfig, run_family_payload, run_family_study


def _add_roster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--families", type=int, default=4, help="number of families")
    parser.add_argument(
        "--snapshots", type=int, default=20, help="snapshots per archive"
    )
    parser.add_argument("--sites", type=int, default=2, help="member sites per family")
    parser.add_argument("--seed", type=int, default=0, help="roster seed")
    parser.add_argument(
        "--roster",
        type=pathlib.Path,
        default=None,
        help="JSON roster file (a list of FamilySpec payloads) instead of "
        "the generated default roster",
    )


def _load_roster(args: argparse.Namespace) -> list[FamilySpec]:
    if args.roster is not None:
        payloads = json.loads(args.roster.read_text())
        return [FamilySpec.from_payload(payload) for payload in payloads]
    return default_roster(
        args.families, snapshots=args.snapshots, seed=args.seed, n_sites=args.sites
    )


def cmd_roster(args: argparse.Namespace) -> int:
    specs = _load_roster(args)
    print(json.dumps([spec.to_payload() for spec in specs], indent=2))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.dom.serialize import to_html
    from repro.evolution.archive import SyntheticArchive

    specs = _load_roster(args)
    out: pathlib.Path = args.out
    pages = 0
    for spec in specs:
        family = generate_family(spec)
        for site in family.sites:
            site_dir = out / site.site_id
            site_dir.mkdir(parents=True, exist_ok=True)
            archive = SyntheticArchive(site, n_snapshots=args.snapshots, cache_size=1)
            for index in range(args.snapshots):
                html = to_html(archive.snapshot(index))
                (site_dir / f"snapshot-{index:03d}.html").write_text(html)
                pages += 1
    print(f"wrote {pages} pages for {len(specs)} families under {out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    specs = _load_roster(args)
    print(
        f"sweep: {len(specs)} families x {args.snapshots} snapshots "
        f"({args.sites} sites/family, seed {args.seed})"
    )
    records = _run_sweep(specs, args)

    breaks = [r for r in records if r.get("type") == "break"]
    repairs = [r for r in records if r.get("type") == "repair"]
    summaries = [r for r in records if r.get("type") == "family_summary"]
    for record in breaks:
        lead = record["signal_lead"]
        hard = record["hard_lead"]
        print(
            f"  break {record['task_id']:<40} {record['verb']}@{record['break_at']:<3} "
            f"healthy_at_break={record['healthy_at_break']} "
            f"signal_lead={'-' if lead is None else lead} "
            f"hard_lead={'survived' if hard is None else hard}"
        )
    for record in repairs:
        print(
            f"  repair {record['task_id']:<39} @{record['snapshot']:<3} "
            f"policy={record['policy']} cost={record['annotation_cost']} "
            f"(manual would be {record['manual_cost']}) exact={record['post_exact']}"
        )

    missed = [r for r in breaks if not r["detected"]]
    false_healthy = [r for r in breaks if r["healthy_at_break"] is True]
    leads = [r["signal_lead"] for r in breaks if r["signal_lead"] is not None]
    vote = sum(1 for r in repairs if r["policy"] == "ensemble_vote")
    annotated = sum(1 for r in repairs if r["policy"] == "re_annotation")
    print(
        f"breaks: {len(breaks)}  detected: {len(breaks) - len(missed)}  "
        f"false_healthy_at_break: {len(false_healthy)}  "
        f"mean_signal_lead: {round(sum(leads) / len(leads), 2) if leads else '-'}"
    )
    print(
        f"repairs: {len(repairs)}  ensemble_vote: {vote}  re_annotation: {annotated}  "
        f"annotation_cost: {sum(r['annotation_cost'] for r in repairs)} "
        f"(always-annotate would be {sum(r['manual_cost'] for r in repairs)})"
    )
    skipped = sum(s.get("skipped_tasks", 0) for s in summaries)
    if skipped:
        print(f"note: {skipped} task(s) skipped (no targets at snapshot 0)")

    if args.out is not None:
        write_study_jsonl(args.out, records)
        print(f"study stream: {args.out} ({len(records)} records)")
    if args.bench is not None:
        payload = bench_payload(specs, args.snapshots, workers=args.workers or None)
        write_bench(args.bench, payload)
        throughput = payload["current"]["serial"]["pages_per_sec"]
        print(f"bench: {args.bench} (serial generation {throughput} pages/sec)")

    if missed or false_healthy:
        for record in missed:
            print(f"MISSED: {record['task_id']} {record['verb']}@{record['break_at']}")
        for record in false_healthy:
            print(
                f"FALSE HEALTHY: {record['task_id']} "
                f"{record['verb']}@{record['break_at']}"
            )
        return 1
    return 0


def _run_sweep(specs: list[FamilySpec], args: argparse.Namespace) -> list[dict]:
    from repro.runtime.drift import DriftConfig

    hard_canonical = not args.soft_canonical
    config = StudyConfig(
        n_snapshots=args.snapshots,
        ensemble_size=args.ensemble,
        drift=DriftConfig(canonical_change_is_hard=hard_canonical),
    )
    records: list[dict] = []
    if args.workers and args.workers > 1:
        payloads = [spec.to_payload() for spec in specs]
        with ProcessPoolExecutor(max_workers=args.workers) as pool:
            for result in pool.map(
                run_family_payload,
                payloads,
                [args.snapshots] * len(payloads),
                [args.ensemble] * len(payloads),
                [hard_canonical] * len(payloads),
            ):
                records.extend(result["records"])
    else:
        for spec in specs:
            records.extend(run_family_study(spec, config).records())
    return records


def write_study_jsonl(path: str | pathlib.Path, records: Sequence[dict]) -> None:
    """One JSON object per line — the study stream CI uploads."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sitegen",
        description="Parameterized site-family generation and drift lead-time studies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    roster = sub.add_parser("roster", help="print the default family roster as JSON")
    _add_roster_args(roster)
    roster.set_defaults(func=cmd_roster)

    generate = sub.add_parser("generate", help="render family archives to HTML files")
    _add_roster_args(generate)
    generate.add_argument(
        "--out", type=pathlib.Path, required=True, help="output directory"
    )
    generate.set_defaults(func=cmd_generate)

    sweep = sub.add_parser("sweep", help="run the drift lead-time study")
    _add_roster_args(sweep)
    sweep.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("sitegen_study.jsonl"),
        help="JSONL study stream (default: %(default)s)",
    )
    sweep.add_argument(
        "--bench",
        type=pathlib.Path,
        default=pathlib.Path(BENCH_FILENAME),
        help="BENCH JSON output (default: %(default)s)",
    )
    sweep.add_argument(
        "--no-bench",
        dest="bench",
        action="store_const",
        const=None,
        help="skip the generation-throughput measurement",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers for the family fan-out (0 = in-process)",
    )
    sweep.add_argument(
        "--ensemble", type=int, default=3, help="ensemble committee size"
    )
    sweep.add_argument(
        "--soft-canonical",
        action="store_true",
        help="serving-default detector (c-change soft): lead times only, "
        "repairs fire on hard signals alone",
    )
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

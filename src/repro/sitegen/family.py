"""Parameterized site families compiled onto the corpus vocabulary.

A :class:`FamilySpec` declares a *family* of sites — same vertical,
same break script cadence — varied along the axes the paper's noise
model cares about:

* ``layout`` — desktop (as-built), boxed (one shell div), or split
  (two-column shell): systematic canonical-path depth differences;
* ``reskin_axis`` — members > 0 get suffixed class and/or id values,
  the A/B-reskin situation where one wrapper meets sibling sites whose
  attributes disagree;
* ``list_shape`` — the page's main repeated list stays flat, gets
  paginated (truncated to ``page_size`` + a ``pager_next`` link that
  becomes an extraction task of its own), or is chunked into
  infinite-scroll stream segments;
* ``locale`` — template labels are translated (volatile data never is;
  see :mod:`repro.sitegen.locale`);
* ``noise`` — boilerplate blocks injected at per-member-stable random
  positions in the body, the paper's noise model;
* ``breaks`` — scripted :class:`~repro.sitegen.breaks.BreakScript`\\ s,
  cycled across members (see :mod:`repro.sitegen.breaks`).

Compilation (:func:`generate_family`) reuses the existing corpus
machinery end to end: the vertical factories build the base page, the
family wraps their builder with deterministic DOM passes, and the
result is a plain :class:`~repro.sites.spec.SiteSpec` every downstream
consumer (archives, induction, drift, fleet) already understands.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.dom.builder import E
from repro.dom.node import Document, ElementNode, TextNode
from repro.evolution.archive import SyntheticArchive
from repro.evolution.changes import ChangeModel
from repro.evolution.state import RenderContext, SiteState
from repro.sitegen.breaks import CLASS_RENAME, SECTION_REORDER, BreakScript
from repro.sitegen.locale import LOCALES, localize_document
from repro.sites.corpus import CorpusTask
from repro.sites.spec import SiteSpec, TaskSpec
from repro.sites.verticals import VERTICAL_FACTORIES
from repro.util import seeded_rng

LAYOUTS = ("desktop", "boxed", "split")
RESKIN_AXES = ("none", "classes", "ids", "both")
LIST_SHAPES = ("flat", "paginated", "chunked")

#: The synthetic pagination task added to every paginated member.
PAGER_ROLE = "pager_next"

#: Maximum boilerplate blocks at noise = 1.0.
_MAX_NOISE_BLOCKS = 6


@dataclass(frozen=True)
class FamilySpec:
    """Declarative description of one generated site family."""

    family_id: str
    vertical: str
    n_sites: int = 2
    layout: str = "desktop"
    reskin_axis: str = "classes"
    list_shape: str = "flat"
    page_size: int = 5
    locale: str = "en"
    noise: float = 0.0
    #: 0 = calm (no structural churn besides the scripted breaks — the
    #: lead-time study's default, so every signal is attributable);
    #: > 0 scales the corpus ChangeModel for organic churn on top.
    change_scale: float = 0.0
    #: Break scripts cycled across members (member i gets script
    #: ``breaks[i % len(breaks)]``); empty = no scripted breaks.
    breaks: tuple[BreakScript, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.family_id:
            raise ValueError("a family needs a family_id")
        if self.vertical not in VERTICAL_FACTORIES:
            raise ValueError(f"unknown vertical {self.vertical!r}")
        if self.n_sites < 1:
            raise ValueError("a family needs at least one member site")
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r} (use one of {LAYOUTS})")
        if self.reskin_axis not in RESKIN_AXES:
            raise ValueError(f"unknown reskin axis {self.reskin_axis!r}")
        if self.list_shape not in LIST_SHAPES:
            raise ValueError(f"unknown list shape {self.list_shape!r}")
        if self.page_size < 2:
            raise ValueError("page_size must be at least 2")
        if self.locale not in LOCALES:
            raise ValueError(f"unknown locale {self.locale!r} (use one of {LOCALES})")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError("noise must be within [0, 1]")
        if self.change_scale < 0:
            raise ValueError("change_scale must be >= 0")

    def to_payload(self) -> dict:
        return {
            "family_id": self.family_id,
            "vertical": self.vertical,
            "n_sites": self.n_sites,
            "layout": self.layout,
            "reskin_axis": self.reskin_axis,
            "list_shape": self.list_shape,
            "page_size": self.page_size,
            "locale": self.locale,
            "noise": self.noise,
            "change_scale": self.change_scale,
            "breaks": [script.to_payload() for script in self.breaks],
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FamilySpec":
        return cls(
            family_id=str(payload["family_id"]),
            vertical=str(payload["vertical"]),
            n_sites=int(payload.get("n_sites", 2)),
            layout=str(payload.get("layout", "desktop")),
            reskin_axis=str(payload.get("reskin_axis", "classes")),
            list_shape=str(payload.get("list_shape", "flat")),
            page_size=int(payload.get("page_size", 5)),
            locale=str(payload.get("locale", "en")),
            noise=float(payload.get("noise", 0.0)),
            change_scale=float(payload.get("change_scale", 0.0)),
            breaks=tuple(
                BreakScript.from_payload(p) for p in payload.get("breaks", ())
            ),
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class SiteFamily:
    """A compiled family: concrete sites plus their member break scripts."""

    spec: FamilySpec
    sites: list[SiteSpec]
    scripts: list[BreakScript]

    def archive(self, member: int, n_snapshots: int = 20, **kwargs) -> SyntheticArchive:
        """A snapshot archive for one member (break hooks already wired
        through the member's ``state_hook``)."""
        return SyntheticArchive(self.sites[member], n_snapshots=n_snapshots, **kwargs)

    def corpus_tasks(self) -> list[CorpusTask]:
        return [CorpusTask(site, task) for site in self.sites for task in site.tasks]


def generate_family(spec: FamilySpec) -> SiteFamily:
    """Compile a declarative family spec into concrete member sites."""
    sites: list[SiteSpec] = []
    scripts: list[BreakScript] = []
    for member in range(spec.n_sites):
        site_seed = seeded_rng("sitegen", spec.family_id, spec.seed, member).randrange(
            1 << 30
        )
        base = VERTICAL_FACTORIES[spec.vertical](member, seed=site_seed)
        script = spec.breaks[member % len(spec.breaks)] if spec.breaks else BreakScript()
        _validate_script(script, base, spec)
        site_id = f"{spec.family_id}-{member}"
        tasks = [
            dataclasses.replace(task, task_id=f"{site_id}/{task.role}", site_id=site_id)
            for task in base.tasks
        ]
        if spec.list_shape == "paginated":
            tasks.append(
                TaskSpec(
                    task_id=f"{site_id}/{PAGER_ROLE}",
                    site_id=site_id,
                    role=PAGER_ROLE,
                    multi=False,
                    human_wrapper='descendant::a[@class="pager-next"]',
                    description="next-page link (added by the paginated list shape)",
                )
            )
        sites.append(
            SiteSpec(
                site_id=site_id,
                vertical=spec.vertical,
                url=f"http://{site_id}.example.net/",
                profile=base.profile,
                build=_family_builder(base.build, spec, member, script),
                change_model=_family_change_model(spec.change_scale),
                tasks=tasks,
                seed=site_seed,
                state_hook=script.state_hook(site_id),
            )
        )
        scripts.append(script)
    return SiteFamily(spec=spec, sites=sites, scripts=scripts)


def default_roster(
    n_families: int, snapshots: int = 20, seed: int = 0, n_sites: int = 2
) -> list[FamilySpec]:
    """A deterministic roster cycling every family axis and break verb.

    Families are calm (``change_scale=0``) with one break point halfway
    through the archive, so every drift signal in a sweep is
    attributable to its scripted break.
    """
    from repro.sitegen.breaks import BREAK_VERBS, BreakPoint

    roster_verticals = (
        "movies",
        "news",
        "sports",
        "travel",
        "forum",
        "shopping",
        "techreview",
        "weather",
    )
    specs: list[FamilySpec] = []
    break_at = max(1, snapshots // 2)
    for i in range(n_families):
        vertical = roster_verticals[i % len(roster_verticals)]
        verb = BREAK_VERBS[i % len(BREAK_VERBS)]
        # Targets come from the factory's stable surface: profile token
        # keys and task roles are identical across seeds and variants.
        probe = VERTICAL_FACTORIES[vertical](0, seed=0)
        if verb == CLASS_RENAME:
            target = sorted(probe.profile.class_tokens)[0]
        elif verb == SECTION_REORDER:
            target = ""
        else:
            target = next(t.role for t in probe.tasks if not t.multi)
        specs.append(
            FamilySpec(
                family_id=f"fam{i}-{vertical}",
                vertical=vertical,
                n_sites=n_sites,
                layout=LAYOUTS[i % len(LAYOUTS)],
                reskin_axis=RESKIN_AXES[(i + 1) % len(RESKIN_AXES)],
                list_shape=LIST_SHAPES[i % len(LIST_SHAPES)],
                locale=LOCALES[i % len(LOCALES)],
                noise=(i % 3) * 0.35,
                change_scale=0.0,
                breaks=(BreakScript(points=(BreakPoint(break_at, verb, target),)),),
                seed=seed + i,
            )
        )
    return specs


# --------------------------------------------------------------------------
# compilation internals
# --------------------------------------------------------------------------


def _validate_script(script: BreakScript, base: SiteSpec, spec: FamilySpec) -> None:
    """Break targets must exist on the base site, else the break would
    silently do nothing and the study's ground truth would be a lie."""
    roles = {task.role for task in base.tasks}
    if spec.list_shape == "paginated":
        roles.add(PAGER_ROLE)
    for point in script.points:
        if point.verb == CLASS_RENAME and point.target not in base.profile.class_tokens:
            raise ValueError(
                f"{spec.family_id}: class_rename target {point.target!r} is not a "
                f"class token of vertical {spec.vertical!r}"
            )
        if point.verb in ("wrap_div", "label_relocate") and point.target not in roles:
            raise ValueError(
                f"{spec.family_id}: {point.verb} target {point.target!r} is not a "
                f"task role of vertical {spec.vertical!r}"
            )


def _family_change_model(change_scale: float) -> ChangeModel:
    """The family's organic-churn model.

    Scripted studies must own their break ground truth, so even churny
    families never remove targets or emit broken captures — a stochastic
    break would be indistinguishable from the scripted one.
    """
    if change_scale <= 0:
        return ChangeModel(
            p_class_rename=0.0,
            p_id_rename=0.0,
            p_count_change=0.0,
            p_list_resize=0.0,
            p_flag_toggle=0.0,
            p_redesign=0.0,
            p_target_removal=0.0,
            p_broken_snapshot=0.0,
            data_churn_rate=0.9,
        )
    # ChangeModel.scaled() deliberately leaves p_list_resize,
    # p_broken_snapshot, and data_churn_rate unscaled; the study's
    # confounders are zeroed explicitly on top.
    return dataclasses.replace(
        ChangeModel().scaled(change_scale),
        p_target_removal=0.0,
        p_broken_snapshot=0.0,
    )


def _family_builder(base_build, spec: FamilySpec, member: int, script: BreakScript):
    """Wrap a vertical builder with the family's deterministic DOM passes.

    Pass order matters: reskin happens at the state level before the
    base build; layout, list shape, and noise restructure the rendered
    body; localization rewrites labels (including ones the passes
    added); the break script runs last so its changes land on the final
    page exactly as the study will see it.
    """

    def build(ctx: RenderContext) -> Document:
        state = ctx.state
        if member and spec.reskin_axis != "none":
            ctx = RenderContext(
                _reskin_state(state, member, spec.reskin_axis), ctx.rng, site=ctx.site
            )
        doc = base_build(ctx)
        body = doc.find(tag="body")
        if body is not None:
            _apply_layout(body, spec.layout)
            _apply_list_shape(body, spec.list_shape, spec.page_size)
            _apply_noise(body, spec, member, ctx)
            localize_document(doc, spec.locale)
            script.apply_dom(doc, state.snapshot_index)
        # The passes mutate the tree after construction; drop any caches
        # so downstream consumers index the final shape.
        doc.invalidate()
        return doc

    return build


def _reskin_state(state: SiteState, member: int, axis: str) -> SiteState:
    """Member-specific attribute values: the A/B reskin axis."""
    reskinned = state.clone()
    if axis in ("classes", "both"):
        reskinned.class_map = {k: f"{v}-r{member}" for k, v in reskinned.class_map.items()}
    if axis in ("ids", "both"):
        reskinned.id_map = {k: f"{v}-r{member}" for k, v in reskinned.id_map.items()}
    return reskinned


def _apply_layout(body: ElementNode, layout: str) -> None:
    if layout == "desktop":
        return
    children = list(body.children)
    if layout == "boxed":
        shell = ElementNode("div", {"class": "layout-boxed"})
        for child in children:
            body.remove_child(child)
            shell.append_child(child)
        body.append_child(shell)
        return
    # split: first half of the sections in a main column, rest in a side
    # column — the two-column variant of the same content.
    mid = (len(children) + 1) // 2
    main = ElementNode("div", {"class": "col-main"})
    side = ElementNode("div", {"class": "col-side"})
    for child in children[:mid]:
        body.remove_child(child)
        main.append_child(child)
    for child in children[mid:]:
        body.remove_child(child)
        side.append_child(child)
    row = ElementNode("div", {"class": "layout-split"})
    row.append_child(main)
    row.append_child(side)
    body.append_child(row)


_LIST_CONTAINER_TAGS = frozenset({"ul", "ol", "table", "tbody", "div"})


def _main_list(body: ElementNode, page_size: int) -> ElementNode | None:
    """The page's main list: the largest container whose element children
    are homogeneous and more numerous than one page."""
    best: ElementNode | None = None
    best_size = 0
    for element in body.descendant_elements():
        if element.tag not in _LIST_CONTAINER_TAGS:
            continue
        children = element.element_children()
        if len(children) <= page_size or len(children) <= best_size:
            continue
        if len({child.tag for child in children}) != 1:
            continue
        best, best_size = element, len(children)
    return best


def _apply_list_shape(body: ElementNode, list_shape: str, page_size: int) -> None:
    if list_shape == "flat":
        return
    container = _main_list(body, page_size)
    if container is None:
        return
    children = container.element_children()
    if list_shape == "paginated":
        for extra in children[page_size:]:
            container.remove_child(extra)
        link = ElementNode("a", {"class": "pager-next", "href": "?page=2"})
        link.append_child(TextNode("Next page"))
        link.meta["role"] = PAGER_ROLE
        pager = ElementNode("div", {"class": "pager"})
        pager.append_child(E("span", "Page 1", class_="pager-current"))
        pager.append_child(link)
        parent = container.parent
        if parent is not None:
            parent.insert_child(parent.children.index(container) + 1, pager)
        else:
            container.append_child(pager)
        return
    # chunked: infinite-scroll stream segments of page_size items each.
    chunk_tag = "tbody" if container.tag in ("table", "tbody") else "div"
    for child in children:
        container.remove_child(child)
    for start in range(0, len(children), page_size):
        chunk = ElementNode(chunk_tag, {"class": "stream-chunk"})
        for child in children[start : start + page_size]:
            chunk.append_child(child)
        container.append_child(chunk)


def _apply_noise(body: ElementNode, spec: FamilySpec, member: int, ctx: RenderContext) -> None:
    """Boilerplate noise: chatter blocks at per-member-stable positions.

    Positions derive from (family, member) — not the snapshot — so on a
    calm family the noise skeleton is part of the template, while the
    chatter text inside churns per snapshot like any page data.
    """
    n_blocks = round(spec.noise * _MAX_NOISE_BLOCKS)
    if n_blocks <= 0:
        return
    positions = seeded_rng("sitegen", spec.family_id, member, "noise")
    for _ in range(n_blocks):
        block = E(
            "div",
            E("p", ctx.gen("sentence")),
            class_=f"boiler-{positions.randrange(4)}",
        )
        body.insert_child(positions.randrange(len(body.children) + 1), block)


__all__ = [
    "LAYOUTS",
    "LIST_SHAPES",
    "PAGER_ROLE",
    "RESKIN_AXES",
    "FamilySpec",
    "SiteFamily",
    "default_roster",
    "generate_family",
]

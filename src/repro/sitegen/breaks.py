"""Scripted break points: known structural changes at known snapshots.

The corpus archives break *stochastically* — the random walk decides
when a class rename or redesign lands, so "when did the site actually
break" has no ground truth and drift-signal lead time cannot be
measured.  A :class:`BreakScript` flips that around: it injects a
chosen structural change at a chosen snapshot index, deterministically,
so the study harness (:mod:`repro.sitegen.study`) can score every
detector signal against a known break time.

Verbs (the paper's observed change classes, Sec. 6.2):

* ``class_rename`` — a profile class token is renamed from the break
  snapshot on (state-level; rides the :data:`repro.evolution.StateHook`
  added to ``evolve_state``, so it persists through the walk exactly
  like an organic rename);
* ``wrap_div`` — every node of a target role gains a wrapper ``div``
  (layout frameworks love wrapper divs);
* ``label_relocate`` — target-role nodes are detached from their block
  and re-attached under the grandparent inside a relocation ``div``;
* ``section_reorder`` — the last top-level body section moves to the
  front (site-wide section shuffle).

Every active break additionally nests the whole body content one level
deeper in a ``migration-shell`` div — the signature move of a real
template migration, and the reason a break is *guaranteed* to move the
canonical path of every body-descendant target: the detector can never
truthfully report "healthy, nothing changed" at the break snapshot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dom.node import Document, ElementNode, Node
from repro.evolution.changes import rename_attribute_value
from repro.util import seeded_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evolution.changes import StateHook
    from repro.evolution.state import SiteState

CLASS_RENAME = "class_rename"
WRAP_DIV = "wrap_div"
LABEL_RELOCATE = "label_relocate"
SECTION_REORDER = "section_reorder"

#: All scriptable break verbs, in a stable order.
BREAK_VERBS = (CLASS_RENAME, WRAP_DIV, LABEL_RELOCATE, SECTION_REORDER)

#: Verbs applied to the rendered DOM (vs. the evolution state).
_DOM_VERBS = frozenset({WRAP_DIV, LABEL_RELOCATE, SECTION_REORDER})


@dataclass(frozen=True)
class BreakPoint:
    """One scripted structural change.

    ``target`` names a profile class *token* for ``class_rename``, a
    task *role* for ``wrap_div``/``label_relocate``, and is empty for
    ``section_reorder``.  ``at_snapshot`` must be ≥ 1 — snapshot 0 is
    the annotation page and breaking it would break the ground truth,
    not the wrapper.
    """

    at_snapshot: int
    verb: str
    target: str = ""

    def __post_init__(self) -> None:
        if self.verb not in BREAK_VERBS:
            raise ValueError(f"unknown break verb {self.verb!r} (use one of {BREAK_VERBS})")
        if self.at_snapshot < 1:
            raise ValueError("break points start at snapshot 1 (0 is the annotation page)")
        if self.verb in (CLASS_RENAME, WRAP_DIV, LABEL_RELOCATE) and not self.target:
            raise ValueError(f"{self.verb} needs a target")
        if self.verb == SECTION_REORDER and self.target:
            raise ValueError("section_reorder takes no target")

    def to_payload(self) -> dict:
        return {"at": self.at_snapshot, "verb": self.verb, "target": self.target}

    @classmethod
    def from_payload(cls, payload: dict) -> "BreakPoint":
        return cls(
            at_snapshot=int(payload["at"]),
            verb=str(payload["verb"]),
            target=str(payload.get("target", "")),
        )


@dataclass(frozen=True)
class BreakScript:
    """An ordered set of scripted break points for one site."""

    points: tuple[BreakPoint, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.points, key=lambda p: (p.at_snapshot, p.verb, p.target)))
        object.__setattr__(self, "points", ordered)

    def __bool__(self) -> bool:
        return bool(self.points)

    def active(self, snapshot_index: int) -> tuple[BreakPoint, ...]:
        """Break points already in effect at a snapshot (breaks persist:
        real sites do not revert a migration)."""
        return tuple(p for p in self.points if snapshot_index >= p.at_snapshot)

    # -- state-level breaks ------------------------------------------------

    def state_hook(self, site_id: str) -> Optional["StateHook"]:
        """The evolve_state hook firing this script's state-level verbs.

        Renames draw from a seed derived of (site, break, token) — not
        the walk's step RNG — so the scripted rename is identical under
        every change model and consumes no walk draws.
        """
        renames = [p for p in self.points if p.verb == CLASS_RENAME]
        if not renames:
            return None

        def hook(state: "SiteState", rng: random.Random) -> "SiteState":
            for point in renames:
                if state.snapshot_index == point.at_snapshot:
                    current = state.class_map.get(point.target)
                    if current is not None:
                        state.class_map[point.target] = rename_attribute_value(
                            current,
                            seeded_rng(site_id, "break", point.at_snapshot, point.target),
                        )
            return state

        return hook

    # -- DOM-level breaks --------------------------------------------------

    def apply_dom(self, doc: Document, snapshot_index: int) -> bool:
        """Apply every active DOM-level verb to a rendered snapshot.

        Returns whether the document was mutated; callers must
        ``doc.invalidate()`` afterwards if any index may already exist.
        """
        active = self.active(snapshot_index)
        if not active:
            return False
        body = doc.find(tag="body")
        if body is None:
            return False
        for point in active:
            if point.verb == WRAP_DIV:
                for node in _role_nodes(doc, point.target):
                    _wrap_node(node, f"brk-wrap-{point.at_snapshot}")
            elif point.verb == LABEL_RELOCATE:
                for node in _role_nodes(doc, point.target):
                    _relocate_node(node, f"brk-moved-{point.at_snapshot}")
            elif point.verb == SECTION_REORDER:
                _reorder_sections(body)
        for point in active:
            # The migration shell: one level of nesting per active break,
            # applied for every verb (including class_rename, whose
            # rendered effect otherwise depends on which features the
            # wrapper anchored on).
            _wrap_children(body, f"migration-shell-{point.at_snapshot}")
        return True

    def to_payload(self) -> dict:
        return {"points": [p.to_payload() for p in self.points]}

    @classmethod
    def from_payload(cls, payload: dict) -> "BreakScript":
        return cls(
            points=tuple(BreakPoint.from_payload(p) for p in payload.get("points", ()))
        )


def _role_nodes(doc: Document, role: str) -> list[Node]:
    """Ground-truth nodes of a role via a plain tree walk (``find_by_meta``
    would build the document index mid-mutation)."""
    return [n for n in doc.root.descendants() if n.meta.get("role") == role]


def _wrap_node(node: Node, cls: str) -> None:
    parent = node.parent
    if parent is None:
        return
    wrapper = ElementNode("div", {"class": cls})
    parent.replace_child(node, wrapper)
    wrapper.append_child(node)


def _relocate_node(node: Node, cls: str) -> None:
    parent = node.parent
    grandparent = parent.parent if parent is not None else None
    if parent is None or grandparent is None:
        return
    parent.remove_child(node)
    moved = ElementNode("div", {"class": cls})
    moved.append_child(node)
    grandparent.append_child(moved)


def _reorder_sections(body: ElementNode) -> None:
    sections = body.element_children()
    if len(sections) < 2:
        return
    last = sections[-1]
    body.remove_child(last)
    body.insert_child(0, last)


def _wrap_children(parent: ElementNode, cls: str) -> None:
    children = list(parent.children)
    shell = ElementNode("div", {"class": cls})
    for child in children:
        parent.remove_child(child)
        shell.append_child(child)
    parent.append_child(shell)


__all__ = [
    "BREAK_VERBS",
    "CLASS_RENAME",
    "LABEL_RELOCATE",
    "SECTION_REORDER",
    "WRAP_DIV",
    "BreakPoint",
    "BreakScript",
]

"""Generation-throughput measurement shared by the sweep CLI and
``benchmarks/bench_sitegen.py``.

The headline is ``throughput.pages_per_sec_vs_floor``: serial fleet
generation (family compilation + archive evolution + full DOM render
per snapshot) divided by a fixed 25 pages/sec floor — the rate below
which long-archive studies stop being interactive.  Like the
``BENCH_xpath.json`` ratios it divides a fixed constant by the host's
wall-clock, so it scales with host speed and gets the wide tolerance
band in ``scripts/check_bench.py``.

``throughput.parallel_gen_vs_serial`` is self-arming: a process-pool
fan-out over families cannot beat serial on a single-CPU host, so the
gate records ``gate_applies: false`` there (the ``bench_cluster`` /
``bench_net`` convention) and arms itself on multi-core runners.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.evolution.archive import SyntheticArchive
from repro.sitegen.family import FamilySpec, generate_family

#: Pages/sec below which archive studies stop being interactive.
FLOOR_PAGES_PER_SEC = 25.0

BENCH_FILENAME = "BENCH_sitegen.json"


def render_family(spec: FamilySpec, n_snapshots: int) -> int:
    """Compile one family and render every member snapshot; returns the
    number of pages rendered."""
    family = generate_family(spec)
    pages = 0
    for site in family.sites:
        archive = SyntheticArchive(site, n_snapshots=n_snapshots, cache_size=1)
        for index in range(n_snapshots):
            archive.snapshot(index)
            pages += 1
    return pages


def _render_payload(payload: dict, n_snapshots: int) -> int:
    """Process-pool worker (module-level: specs travel as payload dicts
    because compiled builders are closures and do not pickle)."""
    return render_family(FamilySpec.from_payload(payload), n_snapshots)


def measure_serial(specs: Sequence[FamilySpec], n_snapshots: int) -> dict:
    start = time.perf_counter()
    pages = sum(render_family(spec, n_snapshots) for spec in specs)
    return _rate(pages, time.perf_counter() - start)


def measure_parallel(
    specs: Sequence[FamilySpec], n_snapshots: int, workers: int
) -> dict:
    payloads = [spec.to_payload() for spec in specs]
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pages = sum(pool.map(_render_payload, payloads, [n_snapshots] * len(payloads)))
    measured = _rate(pages, time.perf_counter() - start)
    measured["workers"] = workers
    return measured


def _rate(pages: int, elapsed: float) -> dict:
    elapsed = max(elapsed, 1e-9)
    return {
        "pages": pages,
        "seconds": round(elapsed, 4),
        "pages_per_sec": round(pages / elapsed, 2),
    }


def bench_payload(
    specs: Sequence[FamilySpec], n_snapshots: int, workers: int | None = None
) -> dict:
    """Measure generation throughput and shape the BENCH JSON payload."""
    cpus = os.cpu_count() or 1
    workers = workers or min(4, cpus)
    serial = measure_serial(specs, n_snapshots)
    parallel = measure_parallel(specs, n_snapshots, workers)
    return {
        "benchmark": "sitegen family-fleet generation throughput",
        "current": {
            "families": len(specs),
            "snapshots": n_snapshots,
            "cpus": cpus,
            "serial": serial,
            "parallel": parallel,
        },
        "throughput": {
            "pages_per_sec_vs_floor": round(
                serial["pages_per_sec"] / FLOOR_PAGES_PER_SEC, 2
            ),
            "parallel_gen_vs_serial": round(
                parallel["pages_per_sec"] / max(serial["pages_per_sec"], 1e-9), 2
            ),
        },
        "required_pages_per_sec": FLOOR_PAGES_PER_SEC,
        # Per-metric self-arming (the bench_net convention): the floor
        # ratio is always gated; the parallelism ratio only means
        # something on a multi-core host.
        "gate_applies": {"throughput.parallel_gen_vs_serial": cpus >= 2},
    }


def write_bench(path: str | pathlib.Path, payload: dict) -> None:
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


__all__ = [
    "BENCH_FILENAME",
    "FLOOR_PAGES_PER_SEC",
    "bench_payload",
    "measure_parallel",
    "measure_serial",
    "render_family",
    "write_bench",
]

"""Frozen sitegen family members for the golden induction corpus.

The hand-written corpus verticals exercise induction on as-built pages;
the generated families stress the axes the corpus does not — layout
shells, A/B reskins, reshaped lists, localization, and boilerplate
noise.  This module pins a small deterministic roster of family members
so ``tests/golden/induction.json`` also freezes induction behavior on
those page shapes (regenerate with
``PYTHONPATH=src python tests/golden/regenerate.py``).

Everything here must stay byte-stable: the specs are literal (no
clocks, no ambient randomness — family compilation is seeded), and the
task list is a deterministic slice so the golden file cannot reorder
between regenerations.
"""

from __future__ import annotations

from repro.sitegen.family import FamilySpec, generate_family
from repro.sites.corpus import CorpusTask

#: Cap on pinned tasks — enough to cover both families and every axis
#: below without doubling golden-corpus regeneration time.
GOLDEN_TASK_LIMIT = 8


def golden_family_specs() -> list[FamilySpec]:
    """The two pinned families.

    Chosen to cover complementary axes: a boxed + paginated + reskinned
    shopping family (adds the synthetic ``pager_next`` task), a
    split + chunked + localized news family with heavy boilerplate
    noise, and an id-reskinned travel family on the plain desktop
    layout.  All are calm (no breaks, no organic churn) — the golden
    corpus freezes snapshot 0, where breaks never fire anyway.
    """
    return [
        FamilySpec(
            family_id="gold-shop",
            vertical="shopping",
            n_sites=2,
            layout="boxed",
            reskin_axis="classes",
            list_shape="paginated",
            page_size=4,
            noise=0.35,
            seed=101,
        ),
        FamilySpec(
            family_id="gold-news",
            vertical="news",
            n_sites=2,
            layout="split",
            reskin_axis="both",
            list_shape="chunked",
            locale="de",
            noise=0.7,
            seed=202,
        ),
        FamilySpec(
            family_id="gold-travel",
            vertical="travel",
            n_sites=2,
            reskin_axis="ids",
            locale="fr",
            seed=303,
        ),
    ]


def golden_sitegen_tasks() -> list[CorpusTask]:
    """The pinned single-node tasks, in deterministic family order."""
    tasks = [
        corpus_task
        for spec in golden_family_specs()
        for corpus_task in generate_family(spec).corpus_tasks()
        if not corpus_task.task.multi
    ]
    return tasks[:GOLDEN_TASK_LIMIT]


__all__ = ["GOLDEN_TASK_LIMIT", "golden_family_specs", "golden_sitegen_tasks"]

"""Entry point for ``python -m repro.sitegen``."""

import sys

from repro.sitegen.cli import main

sys.exit(main())

"""The drift lead-time study: scripted breaks vs. detector signals.

For every task of every member site of a family:

1. induce the wrapper at snapshot 0 (the canonical corpus recipe,
   :func:`repro.runtime.induce_corpus_task`) and package it exactly as
   a deployment would (:class:`~repro.runtime.artifact.WrapperArtifact`
   with an ensemble committee);
2. replay the *full* archive through the
   :class:`~repro.runtime.drift.DriftDetector`
   (:func:`~repro.runtime.drift.replay_archive` — no early stop, every
   report kept);
3. score each scripted break point:

   * **healthy_at_break** — the detector's verdict at the break
     snapshot itself.  ``True`` here is a false "healthy": the page
     verifiably changed and the detector saw nothing.
   * **signal lead time** — ``first_signal_at - break_at``, the number
     of snapshots between the break and the first detector signal at or
     after it (0 = caught immediately); ``None`` = never signalled.
   * **hard lead time** — same, counting only hard (drift-flagging)
     signals; ``None`` means the wrapper *survived* the break, which
     for soft structural changes is the desired outcome, not a miss.

4. score the re-induction policy at the first hard drift: try the
   automatic ensemble-vote repair first (annotation cost 0); fall back
   to re-annotation from ground truth (cost = number of targets a human
   would have to click).  Both outcomes record the post-repair
   precision/recall on the drifted page, so "cheap but wrong" votes are
   visible next to "expensive but right" re-annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.evolution.archive import SyntheticArchive
from repro.metrics.prf import prf_counts
from repro.runtime.artifact import ArtifactError, WrapperArtifact
from repro.runtime.corpus import induce_corpus_task
from repro.runtime.drift import DriftConfig, DriftDetector, reinduce, replay_archive
from repro.sitegen.family import FamilySpec, SiteFamily, generate_family
from repro.sites.corpus import CorpusTask
from repro.sites.spec import SiteSpec, TaskSpec
from repro.xpath.compile import evaluate_compiled


def _paranoid_drift() -> DriftConfig:
    """The study's default detector is paranoid: a c-change is a hard
    drift.  Scripted breaks are *structural* by construction, so under
    the serving default (c-change soft) a robust wrapper simply absorbs
    them and the repair-policy arm of the study would never run; the
    paranoid deployment repairs at the first structural signal, which
    is exactly the policy whose cost the study prices."""
    return DriftConfig(canonical_change_is_hard=True)


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of one lead-time sweep."""

    n_snapshots: int = 20
    ensemble_size: int = 3
    drift: DriftConfig = field(default_factory=_paranoid_drift)


@dataclass(frozen=True)
class BreakObservation:
    """Detector behaviour around one scripted break, for one task."""

    family_id: str
    site_id: str
    task_id: str
    verb: str
    target: str
    break_at: int
    healthy_at_break: Optional[bool]
    signals_at_break: tuple[str, ...]
    first_signal_at: Optional[int]
    first_hard_at: Optional[int]
    false_alarms_before: Optional[int]

    @property
    def signal_lead(self) -> Optional[int]:
        if self.first_signal_at is None:
            return None
        return self.first_signal_at - self.break_at

    @property
    def hard_lead(self) -> Optional[int]:
        if self.first_hard_at is None:
            return None
        return self.first_hard_at - self.break_at

    @property
    def detected(self) -> bool:
        return self.first_signal_at is not None

    def to_record(self) -> dict:
        return {
            "type": "break",
            "family_id": self.family_id,
            "site_id": self.site_id,
            "task_id": self.task_id,
            "verb": self.verb,
            "target": self.target,
            "break_at": self.break_at,
            "healthy_at_break": self.healthy_at_break,
            "signals_at_break": list(self.signals_at_break),
            "first_signal_at": self.first_signal_at,
            "signal_lead": self.signal_lead,
            "first_hard_at": self.first_hard_at,
            "hard_lead": self.hard_lead,
            "detected": self.detected,
            "false_alarms_before": self.false_alarms_before,
        }


@dataclass(frozen=True)
class RepairObservation:
    """Outcome and cost of repairing one wrapper at its first hard drift."""

    family_id: str
    site_id: str
    task_id: str
    snapshot: int
    #: "ensemble_vote" (automatic, cost 0), "re_annotation" (a human
    #: labels every target), or "failed" (role gone from the page).
    policy: str
    annotation_cost: int
    #: What a full re-annotation would have cost at this snapshot —
    #: the price avoided whenever the vote suffices.
    manual_cost: int
    repair_ok: bool
    post_precision: float = 0.0
    post_recall: float = 0.0
    post_exact: bool = False
    error: str = ""

    def to_record(self) -> dict:
        return {
            "type": "repair",
            "family_id": self.family_id,
            "site_id": self.site_id,
            "task_id": self.task_id,
            "snapshot": self.snapshot,
            "policy": self.policy,
            "annotation_cost": self.annotation_cost,
            "manual_cost": self.manual_cost,
            "repair_ok": self.repair_ok,
            "post_precision": round(self.post_precision, 4),
            "post_recall": round(self.post_recall, 4),
            "post_exact": self.post_exact,
            "error": self.error,
        }


@dataclass
class FamilyStudy:
    """Everything one family's sweep produced."""

    family_id: str
    observations: list[BreakObservation] = field(default_factory=list)
    repairs: list[RepairObservation] = field(default_factory=list)
    skips: list[dict] = field(default_factory=list)
    checks: int = 0
    n_sites: int = 0
    n_tasks: int = 0

    @property
    def breaks_detected(self) -> int:
        return sum(1 for o in self.observations if o.detected)

    @property
    def false_healthy(self) -> int:
        return sum(1 for o in self.observations if o.healthy_at_break is True)

    @property
    def all_detected(self) -> bool:
        return self.breaks_detected == len(self.observations)

    def _mean(self, values: list[int]) -> Optional[float]:
        return round(sum(values) / len(values), 3) if values else None

    def summary_record(self) -> dict:
        signal_leads = [o.signal_lead for o in self.observations if o.signal_lead is not None]
        hard_leads = [o.hard_lead for o in self.observations if o.hard_lead is not None]
        by_policy: dict[str, int] = {}
        for repair in self.repairs:
            by_policy[repair.policy] = by_policy.get(repair.policy, 0) + 1
        return {
            "type": "family_summary",
            "family_id": self.family_id,
            "n_sites": self.n_sites,
            "n_tasks": self.n_tasks,
            "checks": self.checks,
            "breaks": len(self.observations),
            "breaks_detected": self.breaks_detected,
            "false_healthy_at_break": self.false_healthy,
            "mean_signal_lead": self._mean(signal_leads),
            "mean_hard_lead": self._mean(hard_leads),
            "survived_hard": sum(1 for o in self.observations if o.first_hard_at is None),
            "repairs_by_policy": by_policy,
            "annotation_cost": sum(r.annotation_cost for r in self.repairs),
            "manual_cost_if_always": sum(r.manual_cost for r in self.repairs),
            "repairs_exact": sum(1 for r in self.repairs if r.post_exact),
            "skipped_tasks": len(self.skips),
        }

    def records(self) -> list[dict]:
        out = [o.to_record() for o in self.observations]
        out.extend(r.to_record() for r in self.repairs)
        out.extend(self.skips)
        out.append(self.summary_record())
        return out


def run_family_study(
    family: SiteFamily | FamilySpec, config: Optional[StudyConfig] = None
) -> FamilyStudy:
    """Induce, replay, and score one family end to end."""
    if isinstance(family, FamilySpec):
        family = generate_family(family)
    config = config or StudyConfig()
    study = FamilyStudy(
        family_id=family.spec.family_id,
        n_sites=len(family.sites),
        n_tasks=sum(len(site.tasks) for site in family.sites),
    )
    detector = DriftDetector(config.drift)
    for member, site in enumerate(family.sites):
        script = family.scripts[member]
        breaks = [p for p in script.points if p.at_snapshot < config.n_snapshots]
        # One archive per site, cache sized to hold the whole replay so
        # every task reuses the same rendered snapshots.
        archive = SyntheticArchive(
            site,
            n_snapshots=config.n_snapshots,
            cache_size=max(8, config.n_snapshots),
        )
        for task in site.tasks:
            seeded = induce_corpus_task(CorpusTask(site, task))
            if seeded is None:
                study.skips.append(
                    {
                        "type": "skip",
                        "family_id": family.spec.family_id,
                        "site_id": site.site_id,
                        "task_id": task.task_id,
                        "reason": "no targets on the snapshot-0 page",
                    }
                )
                continue
            result, sample = seeded
            artifact = WrapperArtifact.from_induction(
                result,
                [sample],
                task_id=task.task_id,
                site_id=site.site_id,
                role=task.role,
                ensemble_size=config.ensemble_size,
                provenance={
                    "generator": "repro.sitegen",
                    "family_id": family.spec.family_id,
                },
            )
            reports = replay_archive(
                artifact, archive, range(1, config.n_snapshots), detector
            )
            study.checks += len(reports)
            by_snapshot = {r.snapshot: r for r in reports}
            for k, point in enumerate(breaks):
                window_end = (
                    breaks[k + 1].at_snapshot
                    if k + 1 < len(breaks)
                    else config.n_snapshots
                )
                study.observations.append(
                    _observe_break(
                        family.spec.family_id, site, task, point, by_snapshot,
                        window_end, first_break=(k == 0),
                    )
                )
            first_hard = next((r for r in reports if r.drifted), None)
            if first_hard is not None:
                study.repairs.append(
                    _score_repair(
                        family.spec.family_id, site, task, artifact, archive,
                        first_hard.snapshot,
                    )
                )
    return study


def run_family_payload(
    payload: dict,
    n_snapshots: int,
    ensemble_size: int = 3,
    hard_canonical: bool = True,
) -> dict:
    """Process-pool entry point: payload in, JSONL-ready records out."""
    spec = FamilySpec.from_payload(payload)
    study = run_family_study(
        generate_family(spec),
        StudyConfig(
            n_snapshots=n_snapshots,
            ensemble_size=ensemble_size,
            drift=DriftConfig(canonical_change_is_hard=hard_canonical),
        ),
    )
    return {"family_id": study.family_id, "records": study.records()}


def _observe_break(
    family_id: str,
    site: SiteSpec,
    task: TaskSpec,
    point,
    by_snapshot: dict,
    window_end: int,
    first_break: bool,
) -> BreakObservation:
    report_at_break = by_snapshot.get(point.at_snapshot)
    window = [
        by_snapshot[s] for s in range(point.at_snapshot, window_end) if s in by_snapshot
    ]
    first_signal = next((r.snapshot for r in window if not r.healthy), None)
    first_hard = next((r.snapshot for r in window if r.drifted), None)
    false_alarms: Optional[int] = None
    if first_break:
        false_alarms = sum(
            1
            for s in range(1, point.at_snapshot)
            if s in by_snapshot and not by_snapshot[s].healthy
        )
    return BreakObservation(
        family_id=family_id,
        site_id=site.site_id,
        task_id=task.task_id,
        verb=point.verb,
        target=point.target,
        break_at=point.at_snapshot,
        healthy_at_break=(
            report_at_break.healthy if report_at_break is not None else None
        ),
        signals_at_break=(
            report_at_break.signals if report_at_break is not None else ()
        ),
        first_signal_at=first_signal,
        first_hard_at=first_hard,
        false_alarms_before=false_alarms,
    )


def _score_repair(
    family_id: str,
    site: SiteSpec,
    task: TaskSpec,
    artifact: WrapperArtifact,
    archive: SyntheticArchive,
    snapshot: int,
) -> RepairObservation:
    doc = archive.snapshot(snapshot)
    truth = archive.targets(doc, task.role)
    manual_cost = len(truth)
    try:
        repaired = reinduce(artifact, doc, snapshot=snapshot)
        policy, cost = "ensemble_vote", 0
    except ArtifactError as vote_error:
        if not truth:
            return RepairObservation(
                family_id=family_id,
                site_id=site.site_id,
                task_id=task.task_id,
                snapshot=snapshot,
                policy="failed",
                annotation_cost=0,
                manual_cost=0,
                repair_ok=False,
                error=str(vote_error),
            )
        try:
            repaired = reinduce(artifact, doc, targets=truth, snapshot=snapshot)
        except ArtifactError as annotation_error:
            return RepairObservation(
                family_id=family_id,
                site_id=site.site_id,
                task_id=task.task_id,
                snapshot=snapshot,
                policy="failed",
                annotation_cost=manual_cost,
                manual_cost=manual_cost,
                repair_ok=False,
                error=str(annotation_error),
            )
        policy, cost = "re_annotation", manual_cost
    predicted = evaluate_compiled(repaired.best_query(), doc.root, doc)
    prf = prf_counts(predicted, truth)
    return RepairObservation(
        family_id=family_id,
        site_id=site.site_id,
        task_id=task.task_id,
        snapshot=snapshot,
        policy=policy,
        annotation_cost=cost,
        manual_cost=manual_cost,
        repair_ok=True,
        post_precision=prf.precision,
        post_recall=prf.recall,
        post_exact=prf.exact,
    )


__all__ = [
    "BreakObservation",
    "FamilyStudy",
    "RepairObservation",
    "StudyConfig",
    "run_family_payload",
    "run_family_study",
]

"""Label localization for generated site families.

A site family can render its *template labels* ("Director:", "Latest
News", "Next page", …) in one of several locales while the volatile
page data stays untouched — exactly the situation a wrapper meets on a
site's international editions: same template skeleton, different label
text.  Wrappers whose predicates anchor on label text must re-anchor;
wrappers anchored on structure and attributes survive.

Localization is a best-effort table lookup over non-volatile text
nodes: labels missing from a locale's table stay English (real
international editions are rarely translated wall-to-wall either).
"""

from __future__ import annotations

from repro.dom.node import Document, TextNode

#: Supported locale codes ("en" is the identity locale).
LOCALES = ("en", "de", "fr", "es")

#: label (stripped) -> translation, per non-English locale.  Covers the
#: template labels of the core verticals plus the labels sitegen's own
#: passes add (pagination, noise).
LABELS: dict[str, dict[str, str]] = {
    "de": {
        "Director:": "Regie:",
        "Writers:": "Drehbuch:",
        "Latest News": "Aktuelle Nachrichten",
        "Top videos": "Top-Videos",
        "BREAKING": "EILMELDUNG",
        "Terms of use": "Nutzungsbedingungen",
        "Privacy": "Datenschutz",
        "Scores": "Ergebnisse",
        "Today's offers": "Angebote des Tages",
        "Product": "Produkt",
        "Rate": "Zinssatz",
        "Country:": "Land:",
        "Price from:": "Preis ab:",
        "Open positions": "Offene Stellen",
        "Comments": "Kommentare",
        "Trending:": "Beliebt:",
        "New post": "Neuer Beitrag",
        "Pinned:": "Angeheftet:",
        "News and Latest Reviews": "Neuigkeiten und aktuelle Tests",
        "Channels": "Kanäle",
        "Newsletter": "Rundbrief",
        "Filters": "Filter",
        "Cart": "Warenkorb",
        "Map": "Karte",
        "Radar": "Radar",
        "Next page": "Nächste Seite",
        "Page 1": "Seite 1",
    },
    "fr": {
        "Director:": "Réalisateur :",
        "Writers:": "Scénaristes :",
        "Latest News": "Dernières nouvelles",
        "Top videos": "Meilleures vidéos",
        "BREAKING": "DERNIÈRE MINUTE",
        "Terms of use": "Conditions d'utilisation",
        "Privacy": "Confidentialité",
        "Scores": "Résultats",
        "Today's offers": "Offres du jour",
        "Product": "Produit",
        "Rate": "Taux",
        "Country:": "Pays :",
        "Price from:": "Prix à partir de :",
        "Open positions": "Postes ouverts",
        "Comments": "Commentaires",
        "Trending:": "Tendances :",
        "New post": "Nouveau message",
        "Pinned:": "Épinglé :",
        "News and Latest Reviews": "Actualités et derniers tests",
        "Channels": "Rubriques",
        "Newsletter": "Lettre d'information",
        "Filters": "Filtres",
        "Cart": "Panier",
        "Map": "Carte",
        "Radar": "Radar",
        "Next page": "Page suivante",
        "Page 1": "Page 1",
    },
    "es": {
        "Director:": "Director:",
        "Writers:": "Guionistas:",
        "Latest News": "Últimas noticias",
        "Top videos": "Vídeos destacados",
        "BREAKING": "ÚLTIMA HORA",
        "Terms of use": "Condiciones de uso",
        "Privacy": "Privacidad",
        "Scores": "Resultados",
        "Today's offers": "Ofertas de hoy",
        "Product": "Producto",
        "Rate": "Tasa",
        "Country:": "País:",
        "Price from:": "Precio desde:",
        "Open positions": "Puestos vacantes",
        "Comments": "Comentarios",
        "Trending:": "Tendencias:",
        "New post": "Nueva publicación",
        "Pinned:": "Fijado:",
        "News and Latest Reviews": "Noticias y últimos análisis",
        "Channels": "Canales",
        "Newsletter": "Boletín",
        "Filters": "Filtros",
        "Cart": "Cesta",
        "Map": "Mapa",
        "Radar": "Radar",
        "Next page": "Página siguiente",
        "Page 1": "Página 1",
    },
}


def localize_document(doc: Document, locale: str) -> int:
    """Translate known template labels in place; returns the number of
    text nodes rewritten.  Volatile (data) text is never touched."""
    table = LABELS.get(locale)
    if not table:
        return 0
    replaced = 0
    for node in doc.root.descendants():
        if not isinstance(node, TextNode) or node.meta.get("volatile"):
            continue
        stripped = node.text.strip()
        translation = table.get(stripped)
        if translation is not None and stripped:
            node.text = node.text.replace(stripped, translation, 1)
            replaced += 1
    return replaced


__all__ = ["LABELS", "LOCALES", "localize_document"]

"""repro — a reproduction of *Robust and Noise Resistant Wrapper Induction*
(Furche, Guo, Maneth, Schallhart; SIGMOD 2016).

The package implements the paper's dsXPath query language, its K-best
wrapper-induction algorithm with robustness scoring, and the complete
evaluation harness (page-evolution studies, noise resistance, and
state-of-the-art comparisons) on a self-contained DOM substrate.

Quickstart::

    from repro import WrapperInducer, parse_html

    doc = parse_html(open("movie.html").read())
    target = doc.find(tag="span", itemprop="name")
    result = WrapperInducer(k=10).induce_one(doc, [target])
    print(result.best.query)   # a robust dsXPath wrapper

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.dom import Document, E, T, document, parse_html, to_html
from repro.induction import (
    InductionConfig,
    InductionResult,
    QuerySample,
    WrapperInducer,
    induce,
)
from repro.scoring import KBestTable, QueryInstance, Scorer, ScoringParams
from repro.xpath import Query, canonical_path, evaluate, parse_query

__version__ = "1.0.0"

__all__ = [
    "Document",
    "E",
    "InductionConfig",
    "InductionResult",
    "KBestTable",
    "Query",
    "QueryInstance",
    "QuerySample",
    "Scorer",
    "ScoringParams",
    "T",
    "WrapperInducer",
    "canonical_path",
    "document",
    "evaluate",
    "induce",
    "parse_html",
    "parse_query",
    "to_html",
    "__version__",
]

"""repro — a reproduction of *Robust and Noise Resistant Wrapper Induction*
(Furche, Guo, Maneth, Schallhart; SIGMOD 2016).

The package implements the paper's dsXPath query language, its K-best
wrapper-induction algorithm with robustness scoring, the complete
evaluation harness (page-evolution studies, noise resistance, and
state-of-the-art comparisons) on a self-contained DOM substrate, and a
production wrapper lifecycle (artifacts, sharded stores, async serving,
drift detection and repair) behind one client facade.

Quickstart::

    from repro import Sample, WrapperClient, mark_volatile, parse_html

    client = WrapperClient()                     # or WrapperClient(store="store/")
    doc = parse_html(open("movie.html").read())
    target = doc.find(tag="span", itemprop="name")
    mark_volatile(target)                        # data text must not anchor the wrapper
    handle = client.induce("movie/director", [Sample(doc, [target])])
    print(handle.query)                          # a robust dsXPath wrapper

    result = client.extract("movie/director", open("movie.html").read())
    print(result.values, result.drift_signals)

The same surface is served over the wire by ``python -m repro.runtime
serve --listen HOST:PORT`` and :class:`RemoteWrapperClient`.  See
docs/API.md for the facade reference and the HTTP protocol.
"""

from repro.dom import Document, E, T, TextNode, document, parse_html, to_html
from repro.induction import (
    InductionConfig,
    InductionResult,
    QuerySample,
)
from repro.scoring import KBestTable, QueryInstance, Scorer, ScoringParams
from repro.xpath import Query, canonical_path, evaluate, parse_query
from repro.api import (
    REPLICATION_FACTOR,
    CheckResult,
    ClusterMap,
    ExtractionResult,
    FacadeError,
    AuthError,
    OwnershipError,
    RateLimitError,
    RemoteError,
    RemoteWrapperClient,
    RouterClient,
    Sample,
    ShardOwnership,
    WrapperClient,
    WrapperHandle,
    mark_volatile,
    qualify_key,
    replica_indexes,
    shard_index,
    site_key_of,
    split_tenant,
)

__version__ = "1.4.0"

#: Deprecated top-level entry points → (home module, facade replacement).
#: They keep working — engine layers are public at their own paths — but
#: new code should go through the facade.  Kept out of ``__all__`` so a
#: star import stays warning-free (see repro._compat).
_DEPRECATED = {
    "WrapperInducer": (
        "repro.induction.induce",
        "repro.api.WrapperClient.induce (or repro.induction.WrapperInducer "
        "for the engine layer)",
    ),
    "induce": (
        "repro.induction.induce",
        "repro.api.WrapperClient.induce (or repro.induction.induce "
        "for the engine layer)",
    ),
}

_warned_deprecations: set[str] = set()


def __getattr__(name: str):
    from repro._compat import deprecated_getattr

    return deprecated_getattr(__name__, _DEPRECATED, _warned_deprecations, name)


__all__ = [
    "CheckResult",
    "ClusterMap",
    "Document",
    "E",
    "ExtractionResult",
    "FacadeError",
    "InductionConfig",
    "InductionResult",
    "KBestTable",
    "AuthError",
    "OwnershipError",
    "Query",
    "QueryInstance",
    "QuerySample",
    "REPLICATION_FACTOR",
    "RateLimitError",
    "RemoteError",
    "RemoteWrapperClient",
    "RouterClient",
    "Sample",
    "Scorer",
    "ScoringParams",
    "ShardOwnership",
    "T",
    "TextNode",
    "WrapperClient",
    "WrapperHandle",
    "canonical_path",
    "document",
    "evaluate",
    "mark_volatile",
    "parse_html",
    "parse_query",
    "qualify_key",
    "replica_indexes",
    "shard_index",
    "site_key_of",
    "split_tenant",
    "to_html",
    "__version__",
]

"""Synthetic annotation noise — the four types of Sec. 6.4.

* **N1 negative random** — remove a fraction of the targets at random.
* **N2 negative mid-random** — like N1 but the first and last target (in
  document order) are kept; the paper introduces this because removed
  head/tail nodes are what actually hurts list induction.
* **N3 positive structural** — add nodes *structurally related* to the
  targets: nodes selected by generalizing the targets' canonical
  location (same tag, nearby container), e.g. other list entries or
  entries of a parallel list.
* **N4 positive random** — add random leaf nodes from anywhere in the
  page.

Noise intensity is the fraction of the original target count that is
removed (negative) or added (positive); e.g. intensity 3.0 for N4 is
the paper's 300 % spot check.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.dom.node import Document, ElementNode, Node, TextNode


def _ordered(doc: Document, nodes: Sequence[Node]) -> list[Node]:
    return doc.sort_nodes(list(nodes))


def _removal_count(targets: Sequence[Node], intensity: float) -> int:
    return min(len(targets) - 1, round(len(targets) * intensity))


def negative_random(
    doc: Document, targets: Sequence[Node], intensity: float, rng: random.Random
) -> list[Node]:
    """N1: drop ``intensity``·|V| random targets (at least one survives)."""
    targets = _ordered(doc, targets)
    drop = _removal_count(targets, intensity)
    if drop <= 0:
        return targets
    removed = set(rng.sample(range(len(targets)), drop))
    return [node for i, node in enumerate(targets) if i not in removed]


def negative_mid_random(
    doc: Document, targets: Sequence[Node], intensity: float, rng: random.Random
) -> list[Node]:
    """N2: like N1 but never drop the first or last target (doc order)."""
    targets = _ordered(doc, targets)
    if len(targets) <= 2:
        return targets
    drop = min(len(targets) - 2, round(len(targets) * intensity))
    if drop <= 0:
        return targets
    middle = range(1, len(targets) - 1)
    removed = set(rng.sample(list(middle), min(drop, len(targets) - 2)))
    return [node for i, node in enumerate(targets) if i not in removed]


def _structural_relatives(doc: Document, targets: Sequence[Node]) -> list[Node]:
    """Nodes structurally related to the targets: same tag under the
    grandparent region of the target container (other entries of the
    same or a parallel list)."""
    tags = {t.tag for t in targets if isinstance(t, ElementNode)}
    target_ids = {id(t) for t in targets}
    regions: list[ElementNode] = []
    for target in targets:
        container = target.parent
        if container is not None and container.parent is not None:
            region = container.parent
        else:
            region = container
        if isinstance(region, ElementNode) and all(r is not region for r in regions):
            regions.append(region)
    related: list[Node] = []
    seen: set[int] = set()
    for region in regions:
        scope = region.parent if isinstance(region.parent, ElementNode) else region
        for node in scope.descendant_elements():
            if node.tag in tags and id(node) not in target_ids and id(node) not in seen:
                seen.add(id(node))
                related.append(node)
    return related


def positive_structural(
    doc: Document, targets: Sequence[Node], intensity: float, rng: random.Random
) -> list[Node]:
    """N3: add ``intensity``·|V| nodes drawn from structural relatives."""
    targets = _ordered(doc, targets)
    pool = _structural_relatives(doc, targets)
    add = min(len(pool), round(len(targets) * intensity))
    if add <= 0:
        return targets
    return targets + rng.sample(pool, add)


def _leaf_nodes(doc: Document, excluded: set[int]) -> list[Node]:
    leaves: list[Node] = []
    for node in doc.root.descendants():
        if id(node) in excluded:
            continue
        if isinstance(node, TextNode):
            leaves.append(node)
        elif isinstance(node, ElementNode) and not node.children:
            leaves.append(node)
    return leaves


def positive_random(
    doc: Document, targets: Sequence[Node], intensity: float, rng: random.Random
) -> list[Node]:
    """N4: add ``intensity``·|V| random leaf nodes of the page."""
    targets = _ordered(doc, targets)
    pool = _leaf_nodes(doc, {id(t) for t in targets})
    add = min(len(pool), round(len(targets) * intensity))
    if add <= 0:
        return targets
    return targets + rng.sample(pool, add)


NoiseFunction = Callable[[Document, Sequence[Node], float, random.Random], list[Node]]

NOISE_TYPES: dict[str, NoiseFunction] = {
    "negative_random": negative_random,
    "negative_mid_random": negative_mid_random,
    "positive_structural": positive_structural,
    "positive_random": positive_random,
}


def apply_noise(
    kind: str,
    doc: Document,
    targets: Sequence[Node],
    intensity: float,
    rng: random.Random,
) -> list[Node]:
    """Apply one of the four noise types by name."""
    try:
        noise = NOISE_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown noise type {kind!r}") from None
    return noise(doc, targets, intensity, rng)

"""Noise models: synthetic annotation noise (Sec. 6.4) and a simulated NER."""

from repro.noise.ner import NERAnnotation, NERProfile, SimulatedNER
from repro.noise.synthetic import (
    NOISE_TYPES,
    apply_noise,
    negative_mid_random,
    negative_random,
    positive_random,
    positive_structural,
)

__all__ = [
    "NERAnnotation",
    "NERProfile",
    "NOISE_TYPES",
    "SimulatedNER",
    "apply_noise",
    "negative_mid_random",
    "negative_random",
    "positive_random",
    "positive_structural",
]

"""Canonical paths and the c-change measure (Sec. 2).

The canonical path of a node is the absolute path of tag-and-position
steps from the document node down to it: ``/html[1]/body[1]/div[4]/...``.
Positions count siblings passing the same node test, so evaluating the
canonical path with standard XPath semantics selects exactly the node.

A *c-change* occurs between two page versions when the canonical path
leading to the (logically same) target changes.  The paper uses the
number of c-changes as a rough indicator of how much structural change
a surviving wrapper has absorbed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.dom.node import AttributeNode, Document, ElementNode, Node, TextNode
from repro.xpath.ast import (
    Axis,
    NodeTest,
    PositionalPredicate,
    Query,
    Step,
    TEXT,
    name_test,
)


def _nodetest_for(node: Node) -> NodeTest:
    if isinstance(node, TextNode):
        return TEXT
    assert isinstance(node, ElementNode)
    return name_test(node.tag)


def _position_among_matching(node: Node) -> int:
    """1-based position of ``node`` among siblings passing its node test."""
    assert node.parent is not None
    position = 0
    for sibling in node.parent.children:
        if isinstance(node, TextNode):
            matches = isinstance(sibling, TextNode)
        else:
            matches = isinstance(sibling, ElementNode) and sibling.tag == node.tag  # type: ignore[union-attr]
        if matches:
            position += 1
        if sibling is node:
            return position
    raise ValueError("node not found among parent's children")


def canonical_path(node: Node, doc: Optional[Document] = None) -> Query:
    """The canonical path ``canon(node)`` as an absolute query.

    ``canon(root) = /``; otherwise ``canon(parent)/t[k]`` where ``t`` is
    the node test for the node and ``k`` its position among same-test
    siblings.

    Attribute nodes canonicalize as their owner's path plus a trailing
    ``attribute::name`` step — they have no sibling position, and the
    step selects exactly the one attribute when evaluated.
    """
    steps: list[Step] = []
    current: Node = node
    if isinstance(current, AttributeNode):
        assert current.parent is not None
        steps.append(Step(Axis.ATTRIBUTE, name_test(current.name)))
        current = current.parent
    while current.parent is not None:
        steps.append(
            Step(
                Axis.CHILD,
                _nodetest_for(current),
                (PositionalPredicate(index=_position_among_matching(current)),),
            )
        )
        current = current.parent
    steps.reverse()
    return Query(tuple(steps), absolute=True)


def canonical_key(nodes: Iterable[Node]) -> tuple[str, ...]:
    """Sorted canonical-path strings of a node set (c-change fingerprint)."""
    return tuple(sorted(str(canonical_path(node)) for node in nodes))


def c_changes(keys: Sequence[Optional[tuple[str, ...]]]) -> int:
    """Count c-changes across a sequence of canonical fingerprints.

    ``keys[i]`` is the canonical fingerprint of the tracked target set in
    snapshot ``i`` (None when the snapshot is missing/broken; such gaps
    neither count as changes nor reset the tracked path).
    """
    changes = 0
    previous: Optional[tuple[str, ...]] = None
    for key in keys:
        if key is None:
            continue
        if previous is not None and key != previous:
            changes += 1
        previous = key
    return changes

"""Compiled dsXPath evaluation.

:func:`compile_query` turns a :class:`~repro.xpath.ast.Query` into a
pipeline of specialized closures, one per step.  Each step closure fuses
axis navigation with the node test (a ``descendant::div`` step is a
``bisect`` into the document's per-tag index instead of a subtree walk
plus a filter) and chains compiled predicate filters; positional
predicates index directly into the candidate list.  Compiled plans are
document independent — all document state flows in through the
:class:`~repro.dom.node.DocumentIndex` — and are memoized globally per
query, so the induction's K-best loops compile each candidate query at
most once across all documents.

Semantics are *identical* to the reference interpreter
(:func:`repro.xpath.evaluator.evaluate`): same nodes, same document
order, including the XPath 1.0 positional rules (counting in axis order
per context node, successive predicates renumbering) and the
``following``/``preceding`` extensions.  The equivalence is enforced by
``tests/xpath/test_engine_equivalence.py`` on randomized documents and
queries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable

from repro.dom.node import (
    AttributeNode,
    Document,
    DocumentIndex,
    ElementNode,
    Node,
    TextNode,
)
from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    Axis,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TextSubject,
)
from repro.xpath.evaluator import nodetest_matches

#: A compiled step: (context node, document, index) -> candidates that
#: passed the node test and all predicates, in axis order.
StepFn = Callable[[Node, Document, DocumentIndex], list]

#: A compiled predicate: (candidates in axis order, document) -> kept
#: candidates, still in axis order.
PredicateFn = Callable[[list, Document], list]

_REVERSE_AXES = frozenset(
    {Axis.PARENT, Axis.ANCESTOR, Axis.PRECEDING_SIBLING, Axis.PRECEDING}
)


# -- candidate generation (axis × nodetest fused) ---------------------------


def _subtree_bounds(node: Node, pres: list[int]) -> tuple[int, int]:
    """Positions in a sorted pre-number list covering ``node``'s subtree."""
    return bisect_right(pres, node._pre), bisect_right(pres, node._post)


def _indexed_lists(
    index: DocumentIndex, nodetest: NodeTest
) -> tuple[list, list[int]] | None:
    """The (nodes, pres) doc-order lists holding every match of ``nodetest``."""
    if nodetest.kind == "name":
        tag = nodetest.name
        nodes = index.tag_nodes.get(tag)
        if nodes is None:
            return [], []
        return nodes, index.tag_pres[tag]
    if nodetest.kind == "any":
        return index.elements, index.elem_pres
    if nodetest.kind == "text":
        return index.texts, index.text_pres
    return index.nodes, None  # node(): pres positions equal list positions


def _compile_descendant(nodetest: NodeTest) -> StepFn:
    kind = nodetest.kind

    def descendant(node: Node, doc: Document, index: DocumentIndex) -> list:
        if not isinstance(node, ElementNode):
            return []
        if node._stamp != index.stamp:  # detached subtree: tree-walk fallback
            return [
                d for d in node.descendants() if nodetest_matches(nodetest, d, Axis.DESCENDANT)
            ]
        if kind == "node":
            return index.nodes[node._pre + 1 : node._post + 1]
        nodes, pres = _indexed_lists(index, nodetest)
        lo, hi = _subtree_bounds(node, pres)
        return nodes[lo:hi]

    return descendant


def _compile_following(nodetest: NodeTest) -> StepFn:
    def following(node: Node, doc: Document, index: DocumentIndex) -> list:
        if isinstance(node, AttributeNode):
            node = node.parent
        if node is None or node._stamp != index.stamp:
            return []
        nodes, pres = _indexed_lists(index, nodetest)
        if pres is None:  # node(): slice the full pre-order list
            return nodes[node._post + 1 :]
        return nodes[bisect_right(pres, node._post) :]

    return following


def _compile_preceding(nodetest: NodeTest) -> StepFn:
    def preceding(node: Node, doc: Document, index: DocumentIndex) -> list:
        if isinstance(node, AttributeNode):
            node = node.parent
        if node is None or node._stamp != index.stamp:
            return []
        pre = node._pre
        nodes, pres = _indexed_lists(index, nodetest)
        hi = pre if pres is None else bisect_left(pres, pre)
        out = [n for n in nodes[:hi] if n._post < pre]
        out.reverse()
        return out

    return preceding


def _compile_child(nodetest: NodeTest) -> StepFn:
    kind, name = nodetest.kind, nodetest.name

    def child(node: Node, doc: Document, index: DocumentIndex) -> list:
        if not isinstance(node, ElementNode):
            return []
        children = node.children
        if kind == "node":
            return list(children)
        if kind == "text":
            return [c for c in children if isinstance(c, TextNode)]
        if kind == "name":
            return [
                c for c in children if isinstance(c, ElementNode) and c.tag == name
            ]
        return [
            c
            for c in children
            if isinstance(c, ElementNode) and not c.tag.startswith("#")
        ]

    return child


def _compile_siblings(nodetest: NodeTest, axis: Axis) -> StepFn:
    forward = axis is Axis.FOLLOWING_SIBLING
    kind, name = nodetest.kind, nodetest.name

    def siblings(node: Node, doc: Document, index: DocumentIndex) -> list:
        if isinstance(node, AttributeNode) or node.parent is None:
            return []
        i = node.index_in_parent()
        if forward:
            slice_ = node.parent.children[i + 1 :]
        else:
            slice_ = node.parent.children[:i][::-1]
        if kind == "node":
            return slice_
        if kind == "text":
            return [c for c in slice_ if isinstance(c, TextNode)]
        if kind == "name":
            return [
                c for c in slice_ if isinstance(c, ElementNode) and c.tag == name
            ]
        return [
            c
            for c in slice_
            if isinstance(c, ElementNode) and not c.tag.startswith("#")
        ]

    return siblings


def _compile_attribute(nodetest: NodeTest) -> StepFn:
    kind, name = nodetest.kind, nodetest.name

    def attribute(node: Node, doc: Document, index: DocumentIndex) -> list:
        if not isinstance(node, ElementNode):
            return []
        if kind == "name":
            attr = node.attribute_node(name)
            return [attr] if attr is not None else []
        if kind in ("any", "node"):
            return node.attribute_nodes()
        return []  # text() never matches attributes

    return attribute


def _compile_scalar(nodetest: NodeTest, axis: Axis) -> StepFn:
    """parent / ancestor / self: tiny candidate sets, plain filtering."""

    def scalar(node: Node, doc: Document, index: DocumentIndex) -> list:
        if axis is Axis.SELF:
            candidates: Iterable[Node] = (node,)
        elif axis is Axis.PARENT:
            candidates = (node.parent,) if node.parent is not None else ()
        else:  # ANCESTOR, nearest first (reverse document order)
            candidates = node.ancestors()
        return [c for c in candidates if nodetest_matches(nodetest, c, axis)]

    return scalar


def _compile_candidates(axis: Axis, nodetest: NodeTest) -> StepFn:
    if axis is Axis.DESCENDANT:
        return _compile_descendant(nodetest)
    if axis is Axis.CHILD:
        return _compile_child(nodetest)
    if axis is Axis.ATTRIBUTE:
        return _compile_attribute(nodetest)
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        return _compile_siblings(nodetest, axis)
    if axis is Axis.FOLLOWING:
        return _compile_following(nodetest)
    if axis is Axis.PRECEDING:
        return _compile_preceding(nodetest)
    return _compile_scalar(nodetest, axis)


# -- predicate compilation ---------------------------------------------------


def _string_test(function: str, value: str) -> Callable[[str], bool]:
    if function == "equals":
        return lambda subject: subject == value
    if function == "contains":
        return lambda subject: value in subject
    if function == "starts-with":
        return lambda subject: subject.startswith(value)
    if function == "ends-with":
        return lambda subject: subject.endswith(value)
    raise ValueError(f"unknown string function: {function}")


def _compile_predicate(predicate: Predicate) -> PredicateFn:
    if isinstance(predicate, PositionalPredicate):
        index, from_last = predicate.index, predicate.from_last

        def positional(candidates: list, doc: Document) -> list:
            size = len(candidates)
            position = index if index is not None else size - from_last
            if 1 <= position <= size:
                return [candidates[position - 1]]
            return []

        return positional

    if isinstance(predicate, AttributePredicate):
        name = predicate.name

        def attr_exists(candidates: list, doc: Document) -> list:
            return [
                c for c in candidates if isinstance(c, ElementNode) and name in c.attrs
            ]

        return attr_exists

    if isinstance(predicate, StringPredicate):
        test = _string_test(predicate.function, predicate.value)
        if isinstance(predicate.subject, TextSubject):

            def text_pred(candidates: list, doc: Document) -> list:
                normalized = doc.normalized_text
                return [c for c in candidates if test(normalized(c))]

            return text_pred

        assert isinstance(predicate.subject, AttrSubject)
        attr_name = predicate.subject.name

        def attr_pred(candidates: list, doc: Document) -> list:
            out = []
            for c in candidates:
                if isinstance(c, ElementNode):
                    subject = c.attrs.get(attr_name)
                elif isinstance(c, AttributeNode) and c.name == attr_name:
                    subject = c.value
                else:
                    subject = None
                if subject is not None and test(subject):
                    out.append(c)
            return out

        return attr_pred

    if isinstance(predicate, RelativePredicate):
        inner_query = predicate.query

        def relative(candidates: list, doc: Document) -> list:
            inner = compile_query(inner_query)
            return [c for c in candidates if inner.run(c, doc)]

        return relative

    raise TypeError(f"unexpected predicate: {predicate!r}")


# -- step and query compilation ----------------------------------------------

# Filtered-descendant candidates are memoized *on the document index*
# (``DocumentIndex.filter_cache``): axis-free filter step -> (filtered
# doc-order node list, their pre numbers).  Per-node predicates commute
# with subtree restriction, so ``descendant::t[preds]`` from any context
# is a bisect slice of the once-filtered document-wide list — the
# predicate work is paid once per document instead of once per context
# node.  The memo must not live in a module global keyed by stamp: node
# lists would pin every document ever parsed, which leaks without bound
# in long-running serving processes and drags every gc pass (a ~100ms+
# full collection per accumulated heap, repeated in each forked pool
# worker) — the index-owned dict dies with the document instead.


def _compile_filtered_descendant(step: Step, leading: tuple, rest: tuple) -> StepFn:
    """Plan for descendant steps whose leading predicates are per-node."""
    nodetest = step.nodetest
    # Key on the normalized (descendant, nodetest, leading) step so e.g.
    # ``descendant::div[@id="x"][1]`` shares the filtered list with
    # ``descendant::div[@id="x"]``.
    filter_step = Step(Axis.DESCENDANT, nodetest, leading)
    leading_fns = [_compile_predicate(p) for p in leading]
    rest_fns = [_compile_predicate(p) for p in rest]
    fallback = _compile_descendant(nodetest)

    def plan(node: Node, doc: Document, index: DocumentIndex) -> list:
        if not isinstance(node, ElementNode):
            return []
        if node._stamp != index.stamp:  # detached: per-candidate filtering
            candidates = fallback(node, doc, index)
            for predicate_fn in leading_fns:
                if not candidates:
                    break
                candidates = predicate_fn(candidates, doc)
        else:
            entry = index.filter_cache.get(filter_step)
            if entry is None:
                filtered = _indexed_lists(index, nodetest)[0]
                # Predicate fns are pure (they build fresh lists), so the
                # index list is never aliased or mutated here: ``leading``
                # is non-empty for this plan shape.
                for predicate_fn in leading_fns:
                    if not filtered:
                        break
                    filtered = predicate_fn(filtered, doc)
                entry = (filtered, [n._pre for n in filtered])
                index.filter_cache[filter_step] = entry
            filtered, pres = entry
            lo = bisect_right(pres, node._pre)
            hi = bisect_right(pres, node._post)
            candidates = filtered[lo:hi]
        for predicate_fn in rest_fns:
            if not candidates:
                break
            candidates = predicate_fn(candidates, doc)
        return candidates

    return plan


def _split_leading_per_node(
    predicates: tuple,
) -> tuple[tuple, tuple]:
    """Split predicates into the leading per-node prefix (everything up
    to the first positional predicate) and the remainder."""
    for i, predicate in enumerate(predicates):
        if isinstance(predicate, PositionalPredicate):
            return predicates[:i], predicates[i:]
    return predicates, ()


#: Global step-plan memo.  Steps are immutable with memoized hashes, and
#: the induction generates the same steps over and over across pattern
#: variants and documents.
_STEP_CACHE: dict[Step, StepFn] = {}
_STEP_CACHE_LIMIT = 200_000


def compile_step(step: Step) -> StepFn:
    """The fused (axis × nodetest × predicates) plan for one step."""
    plan = _STEP_CACHE.get(step)
    if plan is None:
        if len(_STEP_CACHE) > _STEP_CACHE_LIMIT:
            _STEP_CACHE.clear()
        if not step.predicates:
            plan = _compile_candidates(step.axis, step.nodetest)
        else:
            leading, rest = _split_leading_per_node(step.predicates)
            if step.axis is Axis.DESCENDANT and leading:
                plan = _compile_filtered_descendant(step, leading, rest)
            else:
                candidates_fn = _compile_candidates(step.axis, step.nodetest)
                predicate_fns = [_compile_predicate(p) for p in step.predicates]

                def plan(node: Node, doc: Document, index: DocumentIndex) -> list:
                    candidates = candidates_fn(node, doc, index)
                    for predicate_fn in predicate_fns:
                        if not candidates:
                            break
                        candidates = predicate_fn(candidates, doc)
                    return candidates

        _STEP_CACHE[step] = plan
    return plan


class CompiledQuery:
    """An executable query plan; ``run`` matches the reference evaluator."""

    __slots__ = ("query", "_absolute", "_steps", "_reverse")

    def __init__(self, query: Query) -> None:
        self.query = query
        self._absolute = query.absolute
        self._steps = [compile_step(step) for step in query.steps]
        self._reverse = [step.axis in _REVERSE_AXES for step in query.steps]

    def run(self, context: Node | None, doc: Document) -> list[Node]:
        """Evaluate from ``context``; results in document order."""
        index = doc.index
        if self._absolute or context is None:
            nodes: list[Node] = [doc.root]
        else:
            nodes = [context]
        for step_fn, is_reverse in zip(self._steps, self._reverse):
            if not nodes:
                return []
            if len(nodes) == 1:
                # Candidates of a single context node are unique and in
                # axis order; document order is a (possible) reversal
                # away, no dedup-sort needed.
                nodes = list(step_fn(nodes[0], doc, index))
                if is_reverse:
                    nodes.reverse()
            else:
                results: list[Node] = []
                for node in nodes:
                    results.extend(step_fn(node, doc, index))
                nodes = doc.sort_nodes(results)
        return nodes


#: Global query-plan memo (plans are document independent).
_QUERY_CACHE: dict[Query, CompiledQuery] = {}
_QUERY_CACHE_LIMIT = 100_000


def compile_query(query: Query) -> CompiledQuery:
    """Compile (or fetch the memoized plan for) ``query``."""
    plan = _QUERY_CACHE.get(query)
    if plan is None:
        if len(_QUERY_CACHE) > _QUERY_CACHE_LIMIT:
            _QUERY_CACHE.clear()
        plan = CompiledQuery(query)
        _QUERY_CACHE[query] = plan
    return plan


#: Global text-plan memo: canonical query text → compiled plan.  Serving
#: hot loops receive wrappers as text; this collapses the per-call
#: tokenize/parse + plan-cache chain into one dict lookup.
_TEXT_CACHE: dict[str, CompiledQuery] = {}
_TEXT_CACHE_LIMIT = 100_000


def compile_text(text: str) -> CompiledQuery:
    """Compile (or fetch the memoized plan for) a query's text form.

    Raises the same :class:`~repro.xpath.errors.XPathParseError` as
    :func:`~repro.xpath.parser.parse_query` on malformed text; failed
    parses are never cached.
    """
    plan = _TEXT_CACHE.get(text)
    if plan is None:
        if len(_TEXT_CACHE) > _TEXT_CACHE_LIMIT:
            _TEXT_CACHE.clear()
        from repro.xpath.parser import parse_query

        plan = compile_query(parse_query(text))
        _TEXT_CACHE[text] = plan
    return plan


def evaluate_compiled(query: Query, context: Node | None, doc: Document) -> list[Node]:
    """Drop-in replacement for :func:`repro.xpath.evaluator.evaluate`."""
    return compile_query(query).run(context, doc)


def evaluate_many(query: Query, contexts: Iterable[Node], doc: Document) -> list[Node]:
    """Union of ``evaluate_compiled`` over several contexts, in doc order.

    The plan is compiled once and reused across all context nodes.
    """
    plan = compile_query(query)
    results: list[Node] = []
    for context in contexts:
        results.extend(plan.run(context, doc))
    return doc.sort_nodes(results)

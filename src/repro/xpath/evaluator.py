"""dsXPath evaluation with XPath 1.0 semantics.

A query is evaluated step-wise: each step maps every context node to the
axis candidates passing the node test, then filters them through the
predicates.  Positional predicates count positions *within the current
candidate list of one context node, in axis order* — document order for
forward axes, reverse for reverse axes — exactly as in XPath 1.0, and
successive predicates renumber.  Step results are unioned across context
nodes and sorted into document order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dom.node import AttributeNode, Document, ElementNode, Node, TextNode
from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    Axis,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TextSubject,
)
from repro.xpath.axes import axis_candidates


def nodetest_matches(nodetest: NodeTest, node: Node, axis: Axis) -> bool:
    """Does ``node`` pass ``nodetest`` on ``axis``?

    The principal node type of the attribute axis is attributes: there a
    name test matches the attribute *name* and ``*`` matches any
    attribute.  Synthetic roots (``#document``) only match ``node()``.
    """
    if axis is Axis.ATTRIBUTE:
        if not isinstance(node, AttributeNode):
            return False
        if nodetest.kind == "any" or nodetest.kind == "node":
            return True
        if nodetest.kind == "name":
            return node.name == nodetest.name
        return False  # text() never matches attributes
    if isinstance(node, AttributeNode):
        return False
    if nodetest.kind == "node":
        return True
    if isinstance(node, TextNode):
        return nodetest.kind == "text"
    assert isinstance(node, ElementNode)
    if node.tag.startswith("#"):
        return False
    if nodetest.kind == "any":
        return True
    if nodetest.kind == "name":
        return node.tag == nodetest.name
    return False


def _string_subject(node: Node, subject, doc: Document) -> str | None:
    """Subject string for a string predicate, or None when inapplicable."""
    if isinstance(subject, TextSubject):
        return doc.normalized_text(node)
    assert isinstance(subject, AttrSubject)
    if isinstance(node, ElementNode):
        return node.attrs.get(subject.name)
    if isinstance(node, AttributeNode) and node.name == subject.name:
        return node.value
    return None


def _apply_string_function(function: str, subject: str, value: str) -> bool:
    if function == "equals":
        return subject == value
    if function == "contains":
        return value in subject
    if function == "starts-with":
        return subject.startswith(value)
    if function == "ends-with":
        return subject.endswith(value)
    raise ValueError(f"unknown string function: {function}")


def predicate_holds(predicate: Predicate, node: Node, doc: Document) -> bool:
    """Non-positional predicate test on a single node."""
    if isinstance(predicate, AttributePredicate):
        return isinstance(node, ElementNode) and predicate.name in node.attrs
    if isinstance(predicate, StringPredicate):
        subject = _string_subject(node, predicate.subject, doc)
        if subject is None:
            return False
        return _apply_string_function(predicate.function, subject, predicate.value)
    if isinstance(predicate, RelativePredicate):
        return bool(evaluate(predicate.query, node, doc))
    raise TypeError(f"unexpected predicate: {predicate!r}")


def _filter_predicate(
    predicate: Predicate, candidates: list[Node], doc: Document
) -> list[Node]:
    if isinstance(predicate, PositionalPredicate):
        size = len(candidates)
        if predicate.index is not None:
            position = predicate.index
        else:
            position = size - predicate.from_last  # last()-n
        if 1 <= position <= size:
            return [candidates[position - 1]]
        return []
    return [node for node in candidates if predicate_holds(predicate, node, doc)]


def evaluate_step(step: Step, context: Sequence[Node], doc: Document) -> list[Node]:
    """Evaluate one step over a context node-set (returned in doc order)."""
    results: list[Node] = []
    for node in context:
        candidates = [
            c
            for c in axis_candidates(node, step.axis, doc)
            if nodetest_matches(step.nodetest, c, step.axis)
        ]
        for predicate in step.predicates:
            if not candidates:
                break
            candidates = _filter_predicate(predicate, candidates, doc)
        results.extend(candidates)
    return doc.sort_nodes(results)


def evaluate(query: Query, context: Node | None, doc: Document) -> list[Node]:
    """Evaluate ``query`` from ``context`` in ``doc``; results in doc order.

    Absolute queries ignore the context and start at the document node.
    The empty relative query selects its context node (the induction
    algorithm's ``ε``).
    """
    if query.absolute or context is None:
        nodes: list[Node] = [doc.root]
    else:
        nodes = [context]
    for step in query.steps:
        if not nodes:
            return []
        nodes = evaluate_step(step, nodes, doc)
    return nodes


def evaluate_many(query: Query, contexts: Iterable[Node], doc: Document) -> list[Node]:
    """Union of ``evaluate`` over several context nodes, in doc order."""
    results: list[Node] = []
    for context in contexts:
        results.extend(evaluate(query, context, doc))
    return doc.sort_nodes(results)

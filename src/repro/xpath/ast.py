"""Abstract syntax for (extended) dsXPath queries.

The core grammar is Fig. 2 of the paper: a query is a ``/``-separated
sequence of steps ``axis::nodetest[pred]*``.  Axes cover XPath's
navigational axes except ``following``/``preceding``; predicates are
positional, attribute-existence, or one of four Boolean string
functions over an attribute or ``normalize-space(.)``.

Two extensions beyond Fig. 2 exist solely so the *evaluator* can run
the human-crafted wrappers of the paper's corpus (Tables 1 and 2 use
``following`` and nested predicates like ``[ancestor::div[1][@class=…]]``):
the axes ``following``/``preceding`` and :class:`RelativePredicate`.
Induction never emits them, and :func:`repro.xpath.fragment.is_ds_query`
rejects them.

All AST values are immutable and hashable, so queries can be deduplicated
in K-best tables and used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union


class Axis(str, Enum):
    """Navigational axes.

    The first seven are the dsXPath axes (Fig. 2); FOLLOWING and
    PRECEDING are evaluator-only extensions for human wrappers.
    """

    CHILD = "child"
    PARENT = "parent"
    DESCENDANT = "descendant"
    ANCESTOR = "ancestor"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    ATTRIBUTE = "attribute"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    SELF = "self"

    @property
    def is_reverse(self) -> bool:
        """Reverse axes order candidates in reverse document order."""
        return self in _REVERSE_AXES

    @property
    def transitive(self) -> "Axis":
        """The paper's ``axis.transitive``: child→descendant, parent→ancestor,
        sibling axes map to themselves."""
        return _TRANSITIVE[self]

    @property
    def reverse(self) -> "Axis":
        """The paper's ``axis.reverse``: the axis navigating back."""
        return _REVERSED[self]


_REVERSE_AXES = frozenset({Axis.PARENT, Axis.ANCESTOR, Axis.PRECEDING_SIBLING, Axis.PRECEDING})

_TRANSITIVE = {
    Axis.CHILD: Axis.DESCENDANT,
    Axis.PARENT: Axis.ANCESTOR,
    Axis.DESCENDANT: Axis.DESCENDANT,
    Axis.ANCESTOR: Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.ATTRIBUTE: Axis.ATTRIBUTE,
    Axis.FOLLOWING: Axis.FOLLOWING,
    Axis.PRECEDING: Axis.PRECEDING,
    Axis.SELF: Axis.SELF,
}

_REVERSED = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.ATTRIBUTE: Axis.PARENT,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.SELF: Axis.SELF,
}

#: The paper's base axes B (Sec. 5).
BASE_AXES = (Axis.CHILD, Axis.PARENT, Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING)

#: Axes allowed in dsXPath queries (Fig. 2).
DS_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.PARENT,
        Axis.DESCENDANT,
        Axis.ANCESTOR,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.ATTRIBUTE,
    }
)


@dataclass(frozen=True)
class NodeTest:
    """A node test: ``*``, ``node()``, ``text()``, or a tag name.

    On the attribute axis, a name test matches the attribute *name* and
    ``*`` matches any attribute (XPath's principal node type rule).
    """

    kind: str  # "any" | "node" | "text" | "name"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("any", "node", "text", "name"):
            raise ValueError(f"bad nodetest kind: {self.kind}")
        if (self.kind == "name") != (self.name is not None):
            raise ValueError("name tests require a name; others must not have one")

    def __str__(self) -> str:
        if self.kind == "any":
            return "*"
        if self.kind == "node":
            return "node()"
        if self.kind == "text":
            return "text()"
        return self.name  # type: ignore[return-value]


ANY = NodeTest("any")
NODE = NodeTest("node")
TEXT = NodeTest("text")


def name_test(name: str) -> NodeTest:
    return NodeTest("name", name)


@dataclass(frozen=True)
class TextSubject:
    """The ``normalize-space(.)`` subject of a string predicate."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class AttrSubject:
    """An ``attribute::name`` subject of a string predicate."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


Subject = Union[TextSubject, AttrSubject]

#: The four Boolean string functions of Fig. 2.
STRING_FUNCTIONS = ("equals", "contains", "starts-with", "ends-with")


@dataclass(frozen=True)
class PositionalPredicate:
    """``[n]`` (index, 1-based) or ``[last()-n]`` (from_last, n >= 0)."""

    index: Optional[int] = None
    from_last: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.index is None) == (self.from_last is None):
            raise ValueError("exactly one of index/from_last must be set")
        if self.index is not None and self.index < 1:
            raise ValueError("positional index must be >= 1")
        if self.from_last is not None and self.from_last < 0:
            raise ValueError("last()-n requires n >= 0")

    def __str__(self) -> str:
        if self.index is not None:
            return f"[{self.index}]"
        if self.from_last == 0:
            return "[last()]"
        return f"[last()-{self.from_last}]"


@dataclass(frozen=True)
class AttributePredicate:
    """Attribute existence test ``[@name]``."""

    name: str

    def __str__(self) -> str:
        return f"[@{self.name}]"


@dataclass(frozen=True)
class StringPredicate:
    """``[function(subject, "value")]`` with the four string functions.

    ``equals`` prints in XPath's idiomatic ``[subject="value"]`` form.
    """

    function: str
    subject: Subject
    value: str

    def __post_init__(self) -> None:
        if self.function not in STRING_FUNCTIONS:
            raise ValueError(f"unknown string function: {self.function}")

    def __str__(self) -> str:
        value = self.value.replace('"', '\\"')
        if self.function == "equals":
            return f'[{self.subject}="{value}"]'
        return f'[{self.function}({self.subject},"{value}")]'


@dataclass(frozen=True)
class RelativePredicate:
    """Existence test of a relative path, e.g. ``[ancestor::div[1][@class="x"]]``.

    Evaluator-only extension used by human wrappers; never induced.
    """

    query: "Query"

    def __str__(self) -> str:
        return f"[{self.query}]"


Predicate = Union[PositionalPredicate, AttributePredicate, StringPredicate, RelativePredicate]


@dataclass(frozen=True, eq=True)
class Step:
    """One step: ``axis::nodetest[pred]*``.

    Hash and text are memoized: steps are hashed and printed millions of
    times inside the induction's K-best tables.
    """

    axis: Axis
    nodetest: NodeTest
    predicates: tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        # Hash eagerly: steps are hashed far more often than they are
        # built, and a plain attribute read beats a memo-dict lookup.
        object.__setattr__(
            self, "_hash", hash((self.axis, self.nodetest, self.predicates))
        )

    def with_predicates(self, *predicates: Predicate) -> "Step":
        return Step(self.axis, self.nodetest, self.predicates + tuple(predicates))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Step):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self.axis is other.axis
            and self.nodetest == other.nodetest
            and self.predicates == other.predicates
        )

    def __str__(self) -> str:
        try:
            return self._str
        except AttributeError:
            preds = "".join(str(p) for p in self.predicates)
            cached = f"{self.axis.value}::{self.nodetest}{preds}"
            object.__setattr__(self, "_str", cached)
            return cached


@dataclass(frozen=True, eq=True)
class Query:
    """A ``/``-separated sequence of steps.

    ``absolute`` queries start at the document node (canonical paths);
    relative queries are evaluated from a given context node.  The empty
    relative query is the ``ε`` of the induction algorithm: it selects
    its context node.  Hash and text are memoized (hot in K-best tables
    and evaluation caches).
    """

    steps: tuple[Step, ...] = ()
    absolute: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.steps, self.absolute)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Query):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.absolute == other.absolute and self.steps == other.steps

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def is_empty(self) -> bool:
        return not self.steps and not self.absolute

    def concat(self, other: "Query") -> "Query":
        """``self/other``; the right side must be relative."""
        if other.absolute:
            raise ValueError("cannot concatenate an absolute query on the right")
        return Query(self.steps + other.steps, absolute=self.absolute)

    def prepend(self, step: Step) -> "Query":
        if self.absolute:
            raise ValueError("cannot prepend a step to an absolute query")
        return Query((step,) + self.steps)

    def append(self, step: Step) -> "Query":
        return Query(self.steps + (step,), absolute=self.absolute)

    def __str__(self) -> str:
        try:
            return self._str
        except AttributeError:
            body = "/".join(str(step) for step in self.steps)
            if self.absolute:
                cached = "/" + body
            else:
                cached = body if body else "ε"
            object.__setattr__(self, "_str", cached)
            return cached


def single_step_query(axis: Axis, nodetest: NodeTest, *predicates: Predicate) -> Query:
    """Convenience constructor for one-step queries."""
    return Query((Step(axis, nodetest, tuple(predicates)),))


EMPTY_QUERY = Query()

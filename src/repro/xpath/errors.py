"""Errors raised by the dsXPath engine."""


class XPathError(Exception):
    """Base class for all dsXPath engine errors."""


class XPathParseError(XPathError):
    """The query text is not valid (extended) dsXPath syntax."""

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} at offset {position} in {text!r}")
        self.text = text
        self.position = position

"""Memoized query evaluation.

The induction algorithm evaluates the same (query, context) pairs many
times: tails from ``best(t)`` are re-evaluated from every node matched
by every step pattern.  Queries are immutable with precomputed hashes,
so a per-document memo table turns the dynamic program's evaluation cost
from quadratic blow-up into table lookups; the evaluation itself runs on
compiled query plans (:mod:`repro.xpath.compile`), shared across all
evaluators through the global plan cache.

Cache keys use the document's stable integer node ids
(:meth:`~repro.dom.node.Document.node_id`) rather than ``id()`` values,
and the match-id sets consumed by the induction's set algebra are
memoized alongside the node tuples.
"""

from __future__ import annotations

from typing import Iterable

from repro.dom.node import Document, Node
from repro.xpath.ast import Query
from repro.xpath.compile import CompiledQuery, compile_query


class CachedEvaluator:
    """Evaluate queries against one static document, memoized."""

    def __init__(self, doc: Document) -> None:
        self.doc = doc
        self._cache: dict[tuple[Query, int], tuple[Node, ...]] = {}
        self._id_cache: dict[tuple[Query, int], frozenset[int]] = {}
        self.hits = 0
        self.misses = 0

    def evaluate(self, query: Query, context: Node) -> tuple[Node, ...]:
        key = (query, self.doc.node_id(context))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = tuple(compile_query(query).run(context, self.doc))
        self._cache[key] = result
        return result

    def evaluate_plan(self, plan: CompiledQuery, context: Node) -> tuple[Node, ...]:
        """Evaluate a pre-compiled plan, memoized under its source query.

        Shares the memo table with :meth:`evaluate` (plans carry their
        source :class:`Query`), but skips the global plan-cache lookup —
        the entry point for artifacts that attach load-time plans."""
        key = (plan.query, self.doc.node_id(context))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = tuple(plan.run(context, self.doc))
        self._cache[key] = result
        return result

    def evaluate_ids(self, query: Query, context: Node) -> frozenset[int]:
        """Node ids of ``evaluate``, memoized separately (the induction's
        hot loop consumes id sets, not node lists)."""
        key = (query, self.doc.node_id(context))
        cached = self._id_cache.get(key)
        if cached is None:
            node_id = self.doc.node_id
            cached = frozenset(node_id(n) for n in self.evaluate(query, context))
            self._id_cache[key] = cached
        return cached

    def evaluate_many(self, query: Query, contexts: Iterable[Node]) -> list[Node]:
        """Union of ``evaluate`` over several contexts, in document order."""
        results: list[Node] = []
        for context in contexts:
            results.extend(self.evaluate(query, context))
        return self.doc.sort_nodes(results)

    def evaluate_concat(self, head_matches: tuple[Node, ...], tail: Query) -> list[Node]:
        """Evaluate ``tail`` from every node in ``head_matches`` (deduped,
        doc order) — equivalent to evaluating ``head/tail`` when
        ``head_matches`` is the head's result set."""
        if tail.is_empty:
            return list(head_matches)
        return self.evaluate_many(tail, head_matches)

    def evaluate_concat_ids(
        self, head_matches: tuple[Node, ...], tail: Query
    ) -> frozenset[int]:
        """Node ids of ``evaluate_concat`` without materializing the sorted
        node list — the induction hot loop only needs set counts."""
        if tail.is_empty:
            node_id = self.doc.node_id
            return frozenset(node_id(node) for node in head_matches)
        ids: set[int] = set()
        for node in head_matches:
            ids.update(self.evaluate_ids(tail, node))
        return frozenset(ids)

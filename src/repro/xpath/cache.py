"""Memoized query evaluation.

The induction algorithm evaluates the same (query, context) pairs many
times: tails from ``best(t)`` are re-evaluated from every node matched
by every step pattern.  Queries are immutable and hashable, so a
per-document memo table turns the dynamic program's evaluation cost
from quadratic blow-up into table lookups.
"""

from __future__ import annotations

from repro.dom.node import Document, Node
from repro.xpath.ast import Query
from repro.xpath.evaluator import evaluate


class CachedEvaluator:
    """Evaluate queries against one static document, memoized."""

    def __init__(self, doc: Document) -> None:
        self.doc = doc
        self._cache: dict[tuple[Query, int], tuple[Node, ...]] = {}
        self.hits = 0
        self.misses = 0

    def evaluate(self, query: Query, context: Node) -> tuple[Node, ...]:
        key = (query, id(context))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = tuple(evaluate(query, context, self.doc))
        self._cache[key] = result
        return result

    def evaluate_concat(self, head_matches: tuple[Node, ...], tail: Query) -> list[Node]:
        """Evaluate ``tail`` from every node in ``head_matches`` (deduped,
        doc order) — equivalent to evaluating ``head/tail`` when
        ``head_matches`` is the head's result set."""
        if tail.is_empty:
            return list(head_matches)
        results: list[Node] = []
        for node in head_matches:
            results.extend(self.evaluate(tail, node))
        return self.doc.sort_nodes(results)

    def evaluate_concat_ids(
        self, head_matches: tuple[Node, ...], tail: Query
    ) -> frozenset[int]:
        """Node ids of ``evaluate_concat`` without materializing the sorted
        node list — the induction hot loop only needs set counts."""
        if tail.is_empty:
            return frozenset(id(node) for node in head_matches)
        ids: set[int] = set()
        for node in head_matches:
            ids.update(id(result) for result in self.evaluate(tail, node))
        return frozenset(ids)

"""dsXPath fragment membership: directionality and plausibility (Sec. 3).

A query is *one-directional* if, after dropping a trailing attribute
step, its axis sequence matches

    ((parent | ancestor) <sideways>)*   or   ((child | descendant) <sideways>)*

where ``<sideways>`` is a run of only ``following-sibling`` or only
``preceding-sibling`` steps.  A *two-directional* query is the
concatenation of two one-directional queries (up then down, as produced
by the LCA construction of Algorithm 3).

One deliberate extension: we also accept a *leading* sideways run, so
queries induced with a sibling base axis (e.g. ``following-sibling::tr``,
Table 2/S2) are in the fragment; the paper's grammar technically demands
a leading vertical step but its own induction emits such queries.

A query is *plausible* for a document sequence if every string constant
occurs in some document (as text or attribute value) and every integer
is at most the node count of every document.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dom.node import Document
from repro.xpath.ast import (
    AttributePredicate,
    Axis,
    DS_AXES,
    PositionalPredicate,
    Query,
    RelativePredicate,
    StringPredicate,
)

_UP = (Axis.PARENT, Axis.ANCESTOR)
_DOWN = (Axis.CHILD, Axis.DESCENDANT)
_SIDEWAYS = (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING)


def axes_signature(query: Query) -> tuple[Axis, ...]:
    """The paper's ``axes(q)``: all step axes, minus a trailing attribute."""
    axes = tuple(step.axis for step in query.steps)
    if axes and axes[-1] is Axis.ATTRIBUTE:
        axes = axes[:-1]
    return axes


def _consume_sideways(axes: Sequence[Axis], i: int) -> int:
    """Consume a run of one sideways axis kind starting at ``i``."""
    if i < len(axes) and axes[i] in _SIDEWAYS:
        kind = axes[i]
        while i < len(axes) and axes[i] is kind:
            i += 1
    return i


def _matches_direction(axes: Sequence[Axis], vertical: tuple[Axis, ...]) -> bool:
    i = _consume_sideways(axes, 0)  # leading-sideways extension
    while i < len(axes):
        if axes[i] not in vertical:
            return False
        i += 1
        i = _consume_sideways(axes, i)
    return True


def is_one_directional(query: Query) -> bool:
    axes = axes_signature(query)
    if any(axis not in DS_AXES for axis in axes):
        return False
    if Axis.ATTRIBUTE in axes:  # attribute only allowed as final step
        return False
    return _matches_direction(axes, _UP) or _matches_direction(axes, _DOWN)


def is_two_directional(query: Query) -> bool:
    """Concatenation of two one-directional queries (includes one-directional)."""
    axes = axes_signature(query)
    if any(axis not in DS_AXES for axis in axes):
        return False
    if Axis.ATTRIBUTE in axes:
        return False
    for split in range(len(axes) + 1):
        head, tail = axes[:split], axes[split:]
        head_ok = _matches_direction(head, _UP) or _matches_direction(head, _DOWN)
        tail_ok = _matches_direction(tail, _UP) or _matches_direction(tail, _DOWN)
        if head_ok and tail_ok:
            return True
    return False


def _predicates_in_fragment(query: Query) -> bool:
    for step in query.steps:
        for predicate in step.predicates:
            if isinstance(predicate, RelativePredicate):
                return False
            if not isinstance(
                predicate, (PositionalPredicate, AttributePredicate, StringPredicate)
            ):
                return False
    return True


def is_ds_query(query: Query) -> bool:
    """Is the query in dsXPath (axes, predicates, and directionality)?"""
    if query.absolute:
        return False
    if any(step.axis not in DS_AXES for step in query.steps):
        return False
    if any(
        step.axis is Axis.ATTRIBUTE for step in query.steps[:-1]
    ):  # attribute axis only terminal
        return False
    if not _predicates_in_fragment(query):
        return False
    return is_two_directional(query)


def _document_has_string(doc: Document, value: str) -> bool:
    if value in doc.root.text_value():
        return True
    for node in doc.root.descendant_elements():
        for attr_value in node.attrs.values():
            if value in attr_value:
                return True
    return False


def is_plausible(query: Query, docs: Iterable[Document]) -> bool:
    """Plausibility of a query w.r.t. a document sequence (Sec. 3)."""
    docs = list(docs)
    if not docs:
        return True
    max_int = min(doc.node_count() for doc in docs)
    for step in query.steps:
        for predicate in step.predicates:
            if isinstance(predicate, PositionalPredicate):
                value = predicate.index if predicate.index is not None else predicate.from_last
                if value is not None and value > max_int:
                    return False
            elif isinstance(predicate, StringPredicate):
                if not any(_document_has_string(doc, predicate.value) for doc in docs):
                    return False
    return True

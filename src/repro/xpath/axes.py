"""Axis navigation.

Each axis function returns candidate nodes *in axis order*: document
order for forward axes, reverse document order for reverse axes
(parent, ancestor, preceding-sibling, preceding).  Positional
predicates count within this order, per XPath 1.0.
"""

from __future__ import annotations

from typing import Callable

from repro.dom.node import AttributeNode, Document, ElementNode, Node
from repro.xpath.ast import Axis


def _child(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        return list(node.children)
    return []


def _descendant(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        index = doc.index
        if node._stamp == index.stamp:
            # Pre-order subtree slice: identical to node.descendants()
            # order, without walking the tree.
            return index.nodes[node._pre + 1 : node._post + 1]
        return list(node.descendants())  # detached subtree
    return []


def _parent(node: Node, doc: Document) -> list[Node]:
    return [node.parent] if node.parent is not None else []


def _ancestor(node: Node, doc: Document) -> list[Node]:
    return list(node.ancestors())


def _following_sibling(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, AttributeNode):
        return []
    return list(node.following_siblings())


def _preceding_sibling(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, AttributeNode):
        return []
    return list(node.preceding_siblings())


def _attribute(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        return list(node.attribute_nodes())
    return []


def _self(node: Node, doc: Document) -> list[Node]:
    return [node]


def _following(node: Node, doc: Document) -> list[Node]:
    """All nodes after ``node`` in document order, minus its descendants.

    With the document index this is one slice: everything past the end
    of the node's pre-order subtree interval.
    """
    if isinstance(node, AttributeNode):
        node = node.parent
    index = doc.index
    if node is None or node._stamp != index.stamp:
        return []
    return index.nodes[node._post + 1 :]


def _preceding(node: Node, doc: Document) -> list[Node]:
    """All nodes before ``node`` in document order, minus its ancestors,
    in reverse document order.

    A node ``m`` with ``m._pre < node._pre`` is an ancestor exactly when
    its subtree interval still covers ``node`` (``m._post >= node._pre``),
    so the ancestor exclusion is one integer comparison per candidate.
    """
    if isinstance(node, AttributeNode):
        node = node.parent
    index = doc.index
    if node is None or node._stamp != index.stamp:
        return []
    pre = node._pre
    before = [n for n in index.nodes[:pre] if n._post < pre]
    before.reverse()
    return before


_AXIS_FUNCTIONS: dict[Axis, Callable[[Node, Document], list[Node]]] = {
    Axis.CHILD: _child,
    Axis.DESCENDANT: _descendant,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestor,
    Axis.FOLLOWING_SIBLING: _following_sibling,
    Axis.PRECEDING_SIBLING: _preceding_sibling,
    Axis.ATTRIBUTE: _attribute,
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
    Axis.SELF: _self,
}


def axis_candidates(node: Node, axis: Axis, doc: Document) -> list[Node]:
    """Nodes reachable from ``node`` along ``axis``, in axis order."""
    return _AXIS_FUNCTIONS[axis](node, doc)

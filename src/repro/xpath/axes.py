"""Axis navigation.

Each axis function returns candidate nodes *in axis order*: document
order for forward axes, reverse document order for reverse axes
(parent, ancestor, preceding-sibling, preceding).  Positional
predicates count within this order, per XPath 1.0.
"""

from __future__ import annotations

from typing import Callable

from repro.dom.node import AttributeNode, Document, ElementNode, Node
from repro.xpath.ast import Axis


def _child(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        return list(node.children)
    return []


def _descendant(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        return list(node.descendants())
    return []


def _parent(node: Node, doc: Document) -> list[Node]:
    return [node.parent] if node.parent is not None else []


def _ancestor(node: Node, doc: Document) -> list[Node]:
    return list(node.ancestors())


def _following_sibling(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, AttributeNode):
        return []
    return list(node.following_siblings())


def _preceding_sibling(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, AttributeNode):
        return []
    return list(node.preceding_siblings())


def _attribute(node: Node, doc: Document) -> list[Node]:
    if isinstance(node, ElementNode):
        return list(node.attribute_nodes())
    return []


def _self(node: Node, doc: Document) -> list[Node]:
    return [node]


def _following(node: Node, doc: Document) -> list[Node]:
    """All nodes after ``node`` in document order, minus its descendants."""
    if isinstance(node, AttributeNode):
        node = node.parent
    all_nodes = list(doc.all_nodes())
    try:
        start = next(i for i, n in enumerate(all_nodes) if n is node)
    except StopIteration:
        return []
    descendants = (
        {id(d) for d in node.descendants()} if isinstance(node, ElementNode) else set()
    )
    return [n for n in all_nodes[start + 1 :] if id(n) not in descendants]


def _preceding(node: Node, doc: Document) -> list[Node]:
    """All nodes before ``node`` in document order, minus its ancestors,
    in reverse document order."""
    if isinstance(node, AttributeNode):
        node = node.parent
    all_nodes = list(doc.all_nodes())
    try:
        start = next(i for i, n in enumerate(all_nodes) if n is node)
    except StopIteration:
        return []
    ancestors = {id(a) for a in node.ancestors()}
    before = [n for n in all_nodes[:start] if id(n) not in ancestors]
    return list(reversed(before))


_AXIS_FUNCTIONS: dict[Axis, Callable[[Node, Document], list[Node]]] = {
    Axis.CHILD: _child,
    Axis.DESCENDANT: _descendant,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestor,
    Axis.FOLLOWING_SIBLING: _following_sibling,
    Axis.PRECEDING_SIBLING: _preceding_sibling,
    Axis.ATTRIBUTE: _attribute,
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
    Axis.SELF: _self,
}


def axis_candidates(node: Node, axis: Axis, doc: Document) -> list[Node]:
    """Nodes reachable from ``node`` along ``axis``, in axis order."""
    return _AXIS_FUNCTIONS[axis](node, doc)

"""dsXPath: the paper's XPath fragment — AST, parser, evaluator.

``directed XPath with sideways checks`` (dsXPath, Sec. 3) is the query
language wrappers are induced in.  This package provides:

* an AST (:mod:`repro.xpath.ast`) covering the fragment of Fig. 2 plus
  the small extensions needed to *execute* the corpus's human wrappers
  (``following``/``preceding`` axes, nested relative predicates);
* a parser (:mod:`repro.xpath.parser`);
* a reference evaluator with XPath 1.0 positional-predicate semantics
  (:mod:`repro.xpath.evaluator`) and a compiled evaluation engine with
  identical semantics (:mod:`repro.xpath.compile`) used by the
  production paths;
* canonical paths and the c-change measure (:mod:`repro.xpath.canonical`);
* fragment membership checks: one-/two-directionality and plausibility
  (:mod:`repro.xpath.fragment`).
"""

from repro.xpath.ast import (
    Axis,
    AttributePredicate,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TextSubject,
    AttrSubject,
)
from repro.xpath.canonical import c_changes, canonical_path
from repro.xpath.compile import compile_query, evaluate_compiled, evaluate_many
from repro.xpath.errors import XPathError, XPathParseError
from repro.xpath.evaluator import evaluate
from repro.xpath.fragment import (
    axes_signature,
    is_ds_query,
    is_one_directional,
    is_plausible,
    is_two_directional,
)
from repro.xpath.parser import parse_query

__all__ = [
    "AttrSubject",
    "AttributePredicate",
    "Axis",
    "NodeTest",
    "PositionalPredicate",
    "Predicate",
    "Query",
    "RelativePredicate",
    "Step",
    "StringPredicate",
    "TextSubject",
    "XPathError",
    "XPathParseError",
    "axes_signature",
    "c_changes",
    "canonical_path",
    "compile_query",
    "evaluate",
    "evaluate_compiled",
    "evaluate_many",
    "is_ds_query",
    "is_one_directional",
    "is_plausible",
    "is_two_directional",
    "parse_query",
]

"""Parser for (extended) dsXPath query text.

Accepts the textual syntax of Fig. 2 plus the conveniences used by the
paper itself when printing queries:

* ``[@class="adv"]`` as sugar for ``[equals(attribute::class, "adv")]``;
* ``.`` and ``normalize-space(.)`` both denote the text subject;
* ``[position()=n]``, ``[last()]``, ``[last()-n]`` positional forms;
* abbreviated steps: a bare nodetest means the child axis, ``@name``
  means the attribute axis (canonical paths print this way);
* the human-wrapper extensions: ``following``/``preceding`` axes and
  nested relative predicates such as ``[ancestor::div[1][@class="x"]]``.

The grammar is small, so this is a hand-written recursive-descent parser
over a regex token stream.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    Axis,
    NodeTest,
    PositionalPredicate,
    Predicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    Subject,
    TextSubject,
    name_test,
    ANY,
    NODE,
    TEXT,
    STRING_FUNCTIONS,
)
from repro.xpath.errors import XPathParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<axis_sep>::)
  | (?P<symbol>[/\[\]\(\),@=\*\.\-])
    """,
    re.VERBOSE,
)

_AXIS_NAMES = {axis.value: axis for axis in Axis}


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise XPathParseError("unexpected character", text, pos)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "string":
                value = value[1:-1].replace('\\"', '"').replace("\\'", "'")
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise XPathParseError("unexpected end of query", self.text, len(self.text))
        self.index += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token is None or token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        self.index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            at = self._peek()
            pos = at.pos if at else len(self.text)
            want = value or kind
            raise XPathParseError(f"expected {want!r}", self.text, pos)
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Query:
        query = self.parse_query(top_level=True)
        if self._peek() is not None:
            raise XPathParseError("trailing input", self.text, self._peek().pos)
        return query

    def parse_query(self, top_level: bool) -> Query:
        absolute = False
        if top_level and self._accept("symbol", "/"):
            absolute = True
            if self._peek() is None:  # the query "/" selects the document node
                return Query((), absolute=True)
        steps = [self.parse_step()]
        while self._accept("symbol", "/"):
            steps.append(self.parse_step())
        return Query(tuple(steps), absolute=absolute)

    def parse_step(self) -> Step:
        axis, nodetest = self.parse_axis_and_nodetest()
        predicates: list[Predicate] = []
        while self._accept("symbol", "["):
            predicates.append(self.parse_predicate())
            self._expect("symbol", "]")
        return Step(axis, nodetest, tuple(predicates))

    def parse_axis_and_nodetest(self) -> tuple[Axis, NodeTest]:
        if self._accept("symbol", "@"):
            name = self._expect("name").value
            return Axis.ATTRIBUTE, name_test(name)
        token = self._peek()
        if token is not None and token.kind == "name":
            nxt = self._peek(1)
            if nxt is not None and nxt.kind == "axis_sep":
                axis = _AXIS_NAMES.get(token.value)
                if axis is None:
                    raise XPathParseError(f"unknown axis {token.value!r}", self.text, token.pos)
                self._next()
                self._next()
                return axis, self.parse_nodetest(axis)
        return Axis.CHILD, self.parse_nodetest(Axis.CHILD)

    def parse_nodetest(self, axis: Axis) -> NodeTest:
        if self._accept("symbol", "*"):
            return ANY
        token = self._expect("name")
        if token.value in ("node", "text") and self._accept("symbol", "("):
            self._expect("symbol", ")")
            return NODE if token.value == "node" else TEXT
        return name_test(token.value)

    def parse_predicate(self) -> Predicate:
        token = self._peek()
        if token is None:
            raise XPathParseError("empty predicate", self.text, len(self.text))

        if token.kind == "number":  # [n]
            self._next()
            return PositionalPredicate(index=int(token.value))

        if token.kind == "name" and token.value == "last":  # [last()] / [last()-n]
            self._next()
            self._expect("symbol", "(")
            self._expect("symbol", ")")
            if self._accept("symbol", "-"):
                n = int(self._expect("number").value)
                return PositionalPredicate(from_last=n)
            return PositionalPredicate(from_last=0)

        if token.kind == "name" and token.value == "position":  # [position()=n]
            self._next()
            self._expect("symbol", "(")
            self._expect("symbol", ")")
            self._expect("symbol", "=")
            n = int(self._expect("number").value)
            return PositionalPredicate(index=n)

        if token.kind == "symbol" and token.value == "@":  # [@a] or [@a="v"]
            self._next()
            name = self._expect("name").value
            if self._accept("symbol", "="):
                value = self._expect("string").value
                return StringPredicate("equals", AttrSubject(name), value)
            return AttributePredicate(name)

        if token.kind == "symbol" and token.value == ".":  # [.="v"]
            self._next()
            self._expect("symbol", "=")
            value = self._expect("string").value
            return StringPredicate("equals", TextSubject(), value)

        if token.kind == "name" and token.value == "normalize-space":
            subject = self.parse_subject()
            self._expect("symbol", "=")
            value = self._expect("string").value
            return StringPredicate("equals", subject, value)

        if token.kind == "name" and (
            token.value in STRING_FUNCTIONS or token.value == "equals"
        ):
            nxt = self._peek(1)
            if nxt is not None and nxt.kind == "symbol" and nxt.value == "(":
                function = self._next().value
                self._expect("symbol", "(")
                subject = self.parse_subject()
                self._expect("symbol", ",")
                value = self._expect("string").value
                self._expect("symbol", ")")
                return StringPredicate(function, subject, value)

        if token.kind == "name" and token.value == "attribute":
            nxt = self._peek(1)
            if nxt is not None and nxt.kind == "axis_sep":
                self._next()
                self._next()
                name = self._expect("name").value
                if self._accept("symbol", "="):
                    value = self._expect("string").value
                    return StringPredicate("equals", AttrSubject(name), value)
                return AttributePredicate(name)

        # Fall back to a nested relative path (human-wrapper extension).
        query = self.parse_query(top_level=False)
        return RelativePredicate(query)

    def parse_subject(self) -> Subject:
        if self._accept("symbol", "@"):
            return AttrSubject(self._expect("name").value)
        if self._accept("symbol", "."):
            return TextSubject()
        token = self._peek()
        if token is not None and token.kind == "name" and token.value == "normalize-space":
            self._next()
            self._expect("symbol", "(")
            self._expect("symbol", ".")
            self._expect("symbol", ")")
            return TextSubject()
        if token is not None and token.kind == "name" and token.value == "attribute":
            self._next()
            self._expect("axis_sep")
            return AttrSubject(self._expect("name").value)
        pos = token.pos if token else len(self.text)
        raise XPathParseError("expected a string-function subject", self.text, pos)


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`Query` AST."""
    text = text.strip()
    if not text or text == "ε":
        return Query(())
    return _Parser(text).parse()

"""Induction configuration.

Most fields bound the candidate-generation combinatorics (the paper
caps the search through K-best tables; the pattern-generation caps here
keep the polynomial's constants small).  ``allow_text_predicates`` and
the volatility marking implement the evaluation protocol of Sec. 6.2:
"the induction is restricted to expressions which do not refer to
textual data contents" — text nodes carrying page *data* (as opposed to
template labels) are marked ``meta['volatile'] = True`` by the page
generators and are then never used in string predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Candidate search strategies (see ``search`` below).
SEARCH_MODES = ("exhaustive", "pruned")

#: ``WrapperClient.induce(options=...)`` keys that map onto config
#: fields (the remaining facade option, ``diversity``, configures
#: ensemble selection and is consumed by the client directly).
OPTION_FIELDS = frozenset(
    {
        "search",
        "beam_width",
        "prune_trials",
        "prune_seed",
        "fold_workers",
        "diversity",
    }
)

#: Expected value type per option — checked before ``replace`` so that
#: malformed wire input (``beam_width=2.5``, ``fold_workers="4"``) fails
#: here as a ValueError (→ FacadeError → 422 on the wire) instead of
#: surfacing later as an opaque 500 deep inside the pruner or the pool.
_OPTION_TYPES: dict[str, tuple] = {
    "search": (str,),
    "beam_width": (int,),
    "prune_trials": (int,),
    "prune_seed": (int,),
    "fold_workers": (int,),
    "diversity": (int, float),
}


def config_with_options(config: "InductionConfig", options: dict) -> "InductionConfig":
    """Apply a facade ``options={...}`` dict; unknown keys and
    wrongly-typed values raise ``ValueError``."""
    unknown = set(options) - OPTION_FIELDS
    if unknown:
        raise ValueError(
            f"unknown induction options: {sorted(unknown)} "
            f"(supported: {sorted(OPTION_FIELDS)})"
        )
    if not options:
        return config
    coerced = {}
    for key, value in options.items():
        expected = _OPTION_TYPES[key]
        # bool is an int subclass; True is never a valid knob value.
        if isinstance(value, bool) or not isinstance(value, expected):
            names = " or ".join(t.__name__ for t in expected)
            raise ValueError(
                f"induction option {key!r} must be {names}, "
                f"got {type(value).__name__} ({value!r})"
            )
        coerced[key] = float(value) if key == "diversity" else value
    return replace(config, **coerced)


@dataclass(frozen=True)
class InductionConfig:
    k: int = 10
    beta: float = 0.5

    #: Candidate search strategy.  ``"exhaustive"`` (the default) scores
    #: every generated step candidate in the DP exactly as the paper
    #: does; ``"pruned"`` ranks candidates with the cheap stochastic-
    #: approximation score of :mod:`repro.induction.prune` (SPSA-style
    #: perturbation trials over a seeded RNG) and runs the full DP
    #: scoring only on the surviving beam.  The default is pinned
    #: bit-for-bit by the golden corpus.
    search: str = "exhaustive"
    #: Pruned search: candidates kept per (context, anchor) spine
    #: position after stochastic ranking.
    beam_width: int = 10
    #: Pruned search: weight-perturbation trials per candidate list.
    prune_trials: int = 4
    #: Pruned search: RNG seed — the determinism contract (same seed,
    #: same document, same beam → identical induction output).
    prune_seed: int = 0

    #: Fan per-sample induction folds and the multi-sample aggregation
    #: out over the shared persistent process pool
    #: (:mod:`repro.induction.parallel`).  0/1 = serial (the default);
    #: results are identical either way, only wall-clock changes.
    fold_workers: int = 0

    #: Ensemble selection: penalty weight for committee members sharing
    #: a fragile feature class (``ensemble.fragile_signature``).  0.0
    #: keeps the accuracy-first selection; > 0 trades that many ranks of
    #: accuracy per shared fragile key for a different failure mode.
    diversity: float = 0.0

    #: Use text-content predicates at all (contains/starts-with/... on ".").
    allow_text_predicates: bool = True
    #: Meta key marking volatile (data, non-template) text nodes.
    volatile_meta_key: str = "volatile"

    #: Per-value caps on generated string predicates.
    max_words_per_value: int = 4
    max_text_length: int = 60
    max_attr_value_length: int = 80

    #: Cap on node patterns per node (cheapest kept first).
    max_node_patterns: int = 48

    #: Sideways checks (Algorithm 1, child axis only).
    enable_sideways: bool = True
    #: Siblings of the spine node considered on each side, nearest first.
    max_sideways_each_side: int = 4
    #: Anchor/sibling-step patterns combined per sibling.
    max_sideways_patterns: int = 6

    #: Generate positional refinements ([k] / [last()-m]).
    enable_positional: bool = True

    #: Engineering bound: at most this many target spines are walked by
    #: the multi-target DP (first, last, and an even spread in between).
    #: Accuracy is always evaluated against *all* targets, so on regular
    #: lists the result is unchanged while cost stops growing linearly
    #: in |V|; raise it for highly irregular target sets.
    max_target_spines: int = 12

    #: Attributes never used in predicates (too volatile / non-semantic).
    skipped_attributes: frozenset[str] = frozenset({"style"})

    def __post_init__(self) -> None:
        if self.search not in SEARCH_MODES:
            raise ValueError(
                f"search must be one of {SEARCH_MODES}, got {self.search!r}"
            )
        if self.beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.prune_trials < 1:
            raise ValueError(f"prune_trials must be >= 1, got {self.prune_trials}")
        if self.fold_workers < 0:
            raise ValueError(f"fold_workers must be >= 0, got {self.fold_workers}")
        if self.diversity < 0:
            raise ValueError(f"diversity must be >= 0, got {self.diversity}")

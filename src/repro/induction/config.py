"""Induction configuration.

Most fields bound the candidate-generation combinatorics (the paper
caps the search through K-best tables; the pattern-generation caps here
keep the polynomial's constants small).  ``allow_text_predicates`` and
the volatility marking implement the evaluation protocol of Sec. 6.2:
"the induction is restricted to expressions which do not refer to
textual data contents" — text nodes carrying page *data* (as opposed to
template labels) are marked ``meta['volatile'] = True`` by the page
generators and are then never used in string predicates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InductionConfig:
    k: int = 10
    beta: float = 0.5

    #: Use text-content predicates at all (contains/starts-with/... on ".").
    allow_text_predicates: bool = True
    #: Meta key marking volatile (data, non-template) text nodes.
    volatile_meta_key: str = "volatile"

    #: Per-value caps on generated string predicates.
    max_words_per_value: int = 4
    max_text_length: int = 60
    max_attr_value_length: int = 80

    #: Cap on node patterns per node (cheapest kept first).
    max_node_patterns: int = 48

    #: Sideways checks (Algorithm 1, child axis only).
    enable_sideways: bool = True
    #: Siblings of the spine node considered on each side, nearest first.
    max_sideways_each_side: int = 4
    #: Anchor/sibling-step patterns combined per sibling.
    max_sideways_patterns: int = 6

    #: Generate positional refinements ([k] / [last()-m]).
    enable_positional: bool = True

    #: Engineering bound: at most this many target spines are walked by
    #: the multi-target DP (first, last, and an even spread in between).
    #: Accuracy is always evaluated against *all* targets, so on regular
    #: lists the result is unchanged while cost stops growing linearly
    #: in |V|; raise it for highly irregular target sets.
    max_target_spines: int = 12

    #: Attributes never used in predicates (too volatile / non-semantic).
    skipped_attributes: frozenset[str] = frozenset({"style"})

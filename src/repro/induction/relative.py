"""Relative wrapper induction (the paper's future-work item 1).

Sec. 7: "Extending the method to deal with multi-node wrappers where
not only a single item or list of items, but multiple related items are
to be extracted, is a natural step forward.  Our method is already
designed to allow the induction not only of absolute, but also of
relative expressions."

Algorithm 3 already handles samples whose context is an arbitrary node;
this module packages that into record extraction: given example records
(anchor node → related field nodes), it induces (a) an absolute wrapper
for the anchors and (b) one relative wrapper per field, evaluated from
each anchor.  Applying the pair wrapper to a page yields one record per
anchor node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.induce import InductionResult, induce
from repro.induction.samples import QuerySample
from repro.scoring.params import ScoringParams
from repro.xpath.ast import Query
from repro.xpath.evaluator import evaluate


@dataclass(frozen=True)
class RecordExample:
    """One example record: an anchor node and its named field nodes."""

    anchor: Node
    fields: Mapping[str, Node]


@dataclass
class RecordWrapper:
    """An anchor wrapper plus one relative wrapper per field."""

    anchor_query: Query
    field_queries: dict[str, Query]

    def extract(self, doc: Document) -> list[dict[str, Optional[Node]]]:
        """One record per anchor match; missing fields map to None."""
        records = []
        for anchor in evaluate(self.anchor_query, doc.root, doc):
            record: dict[str, Optional[Node]] = {"_anchor": anchor}
            for name, query in self.field_queries.items():
                matches = evaluate(query, anchor, doc)
                record[name] = matches[0] if matches else None
            records.append(record)
        return records

    def extract_values(self, doc: Document) -> list[dict[str, Optional[str]]]:
        """Records as normalized text values."""
        out = []
        for record in self.extract(doc):
            out.append(
                {
                    name: (doc.normalized_text(node) if node is not None else None)
                    for name, node in record.items()
                    if name != "_anchor"
                }
            )
        return out


class RelativeWrapperInducer:
    """Induce a :class:`RecordWrapper` from example records."""

    def __init__(
        self,
        k: int = 10,
        config: Optional[InductionConfig] = None,
        params: Optional[ScoringParams] = None,
    ) -> None:
        self.k = k
        self.config = config or InductionConfig(k=k)
        self.params = params or ScoringParams()

    def induce_ranked(
        self, doc: Document, examples: Sequence[RecordExample]
    ) -> tuple["InductionResult", dict[str, Query]]:
        """Like :meth:`induce`, but keeps the anchor *ranking*.

        Returns the full anchor :class:`InductionResult` (the facade and
        artifact layers need the K-best list and its accuracy counts,
        not just the winner) plus the best relative query per field.
        """
        if not examples:
            raise ValueError("at least one example record is required")
        field_names = set(examples[0].fields)
        for example in examples:
            if set(example.fields) != field_names:
                raise ValueError("all example records must share the same field names")

        anchors = [example.anchor for example in examples]
        anchor_result = induce(
            [QuerySample(doc, anchors)], self.config, self.params
        )
        if anchor_result.best is None:
            raise ValueError("no anchor wrapper could be induced")

        field_queries: dict[str, Query] = {}
        for name in sorted(field_names):
            samples = [
                QuerySample(doc, [example.fields[name]], context=example.anchor)
                for example in examples
            ]
            result = induce(samples, self.config, self.params)
            if result.best is None:
                raise ValueError(f"no relative wrapper for field {name!r}")
            field_queries[name] = result.best.query

        return anchor_result, field_queries

    def induce(self, doc: Document, examples: Sequence[RecordExample]) -> RecordWrapper:
        anchor_result, field_queries = self.induce_ranked(doc, examples)
        return RecordWrapper(
            anchor_query=anchor_result.best.query, field_queries=field_queries
        )

"""Path induction — Algorithm 3 (``induce``) and the public API.

Per sample: if one base axis reaches all targets, Algorithm 2 applies
directly.  Otherwise the query must be two-directional: the least
common ancestor ``l`` of the targets (or of targets ∪ {u}) splits it
into an upward part u→l and a downward part l→targets; the downward
K-best instances seed ``best(l)`` and Algorithm 2 then runs upward.

Multiple samples are handled by inducing per sample and re-scoring
every candidate on *all* samples (aggregate), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.induce_path import (
    BestTables,
    PathInductionContext,
    TargetTable,
    induce_path,
    init_tables,
)
from repro.induction.samples import QuerySample
from repro.induction.spine import base_axis_between, common_base_axis, lca, spine
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import KBestTable, QueryInstance, rank_key
from repro.scoring.score import Scorer
from repro.xpath.ast import Axis, Query
from repro.xpath.cache import CachedEvaluator


@dataclass
class InductionStats:
    """Deterministic counters from one ``induce()`` run.

    Purely observational — never feeds back into ranking — so stamping
    these into artifact provenance / ``/metrics`` is parity-safe.
    """

    search: str = "exhaustive"
    #: Samples (folds) induced.
    folds: int = 0
    #: Whether the folds ran on the shared induction pool.
    pooled: bool = False
    #: Candidates seen at DP positions where pruning was attempted.
    candidates_considered: int = 0
    #: Candidates the stochastic beam dropped before full DP scoring.
    candidates_pruned: int = 0

    def as_payload(self) -> dict:
        return {
            "search": self.search,
            "folds": self.folds,
            "pooled": self.pooled,
            "candidates_considered": self.candidates_considered,
            "candidates_pruned": self.candidates_pruned,
        }


@dataclass
class InductionResult:
    """Ranked query instances with accuracy aggregated over all samples."""

    instances: list[QueryInstance]
    beta: float = 0.5
    #: Run counters (see :class:`InductionStats`); not part of the
    #: ranking payload — ``export()`` is unchanged.
    stats: Optional[InductionStats] = None

    @property
    def best(self) -> Optional[QueryInstance]:
        return self.instances[0] if self.instances else None

    def top(self, k: int) -> list[QueryInstance]:
        return self.instances[:k]

    def queries(self) -> list[Query]:
        return [instance.query for instance in self.instances]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    def export(self, limit: Optional[int] = None) -> list[dict]:
        """Serializable view of the ranking (the artifact export hook).

        Each entry carries the canonical query text, the robustness
        score, and the accuracy counts — everything
        :class:`repro.runtime.artifact.WrapperArtifact` persists per
        candidate, and everything needed to reconstruct the rank order.
        """
        instances = self.instances if limit is None else self.instances[:limit]
        return [
            {
                "query": str(instance.query),
                "score": instance.score,
                "tp": instance.tp,
                "fp": instance.fp,
                "fn": instance.fn,
                "f_beta": instance.f_beta(self.beta),
            }
            for instance in instances
        ]


def _induce_sample(
    sample: QuerySample,
    config: InductionConfig,
    params: ScoringParams,
    stats: Optional[InductionStats] = None,
) -> list[QueryInstance]:
    """Algorithm 3, lines 1–15, for one sample."""
    doc = sample.doc
    ctx = PathInductionContext.for_doc(doc, config, params)
    try:
        return _induce_sample_ctx(ctx, sample, config)
    finally:
        if stats is not None and ctx.pruner is not None:
            stats.candidates_considered += ctx.pruner.considered
            stats.candidates_pruned += ctx.pruner.skipped


def _induce_sample_ctx(
    ctx: PathInductionContext, sample: QuerySample, config: InductionConfig
) -> list[QueryInstance]:
    doc = sample.doc
    u = sample.context
    targets = list(sample.targets)
    if any(v is u for v in targets):
        raise ValueError("the context node cannot itself be a target")

    axis = common_base_axis(u, targets)
    if axis is not None:
        best = init_tables(doc, targets, config.k, config.beta)
        tar: TargetTable = {}
        return induce_path(ctx, u, targets, axis, best, tar).items

    # Two-directional: find the pivot l (Alg. 3, L5–7).
    pivot = lca(targets)
    pivot_ids = {doc.node_id(v) for v in targets}
    if doc.node_id(pivot) in pivot_ids or base_axis_between(u, pivot) is None or pivot is u:
        pivot = lca(targets + [u])

    down_axis = common_base_axis(pivot, targets)
    if down_axis is None:
        raise ValueError("targets are not reachable from their LCA via one base axis")
    down_best = init_tables(doc, targets, config.k, config.beta)
    pivot_table = induce_path(ctx, pivot, targets, down_axis, down_best, {})

    up_axis = base_axis_between(u, pivot)
    if up_axis is None:
        raise ValueError("no base axis from the context to the LCA pivot")

    best: BestTables = {doc.node_id(pivot): pivot_table}
    target_ids = frozenset(doc.node_id(v) for v in targets)
    tar = {
        doc.node_id(n): target_ids
        for n in spine(u, pivot, up_axis)
        if n is not pivot
    }
    return induce_path(ctx, u, [pivot], up_axis, best, tar).items


def _aggregate(
    per_sample: list[list[QueryInstance]],
    samples: Sequence[QuerySample],
    config: InductionConfig,
    scorer: Scorer,
) -> list[QueryInstance]:
    """Algorithm 3, line 16: re-score every candidate on all samples."""
    evaluators = [CachedEvaluator(sample.doc) for sample in samples]
    candidates: dict[Query, float] = {}
    for instances in per_sample:
        for instance in instances:
            if not instance.query.is_empty:
                candidates.setdefault(instance.query, instance.score)

    aggregated: list[QueryInstance] = []
    for query, score in candidates.items():
        tp = fp = fn = 0
        for sample, evaluator in zip(samples, evaluators):
            match_ids = evaluator.evaluate_ids(query, sample.context)
            sample_tp = len(match_ids & sample.target_ids)
            tp += sample_tp
            fp += len(match_ids) - sample_tp
            fn += len(sample.targets) - sample_tp
        aggregated.append(QueryInstance(query, tp=tp, fp=fp, fn=fn, score=score))

    aggregated.sort(key=lambda instance: rank_key(instance, config.beta))
    return aggregated


def induce(
    samples: Sequence[QuerySample],
    config: Optional[InductionConfig] = None,
    params: Optional[ScoringParams] = None,
) -> InductionResult:
    """Induce a ranked set of wrappers from query samples (Algorithm 3)."""
    if not samples:
        raise ValueError("at least one query sample is required")
    config = config or InductionConfig()
    params = params or ScoringParams()
    stats = InductionStats(search=config.search, folds=len(samples))

    if config.fold_workers >= 2 and len(samples) > 1:
        from repro.induction.parallel import induce_pooled

        pooled = induce_pooled(samples, config, params, stats)
        if pooled is not None:
            return pooled

    per_sample = [
        _induce_sample(sample, config, params, stats) for sample in samples
    ]
    if len(samples) == 1:
        ranked = [i for i in per_sample[0] if not i.query.is_empty]
        return InductionResult(ranked, beta=config.beta, stats=stats)
    scorer = Scorer(params)
    return InductionResult(
        _aggregate(per_sample, samples, config, scorer), beta=config.beta, stats=stats
    )


class WrapperInducer:
    """Convenience facade bundling configuration and scoring parameters.

    >>> inducer = WrapperInducer(k=10)
    >>> result = inducer.induce_one(doc, targets)      # doctest: +SKIP
    >>> str(result.best.query)                         # doctest: +SKIP
    'descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]'
    """

    def __init__(
        self,
        k: int = 10,
        config: Optional[InductionConfig] = None,
        params: Optional[ScoringParams] = None,
    ) -> None:
        base = config or InductionConfig()
        if base.k != k:
            from dataclasses import replace

            base = replace(base, k=k)
        self.config = base
        self.params = params or ScoringParams()

    def induce(self, samples: Sequence[QuerySample]) -> InductionResult:
        return induce(samples, self.config, self.params)

    def induce_one(
        self,
        doc: Document,
        targets: Sequence[Node],
        context: Optional[Node] = None,
    ) -> InductionResult:
        """Induce from a single annotated document."""
        return self.induce([QuerySample(doc, targets, context)])

"""Candidate node tests + predicates for one node (``nodePattern``, Sec. 5).

For a node u this generates patterns of the form *nodetest* plus at most
one attribute/text predicate (the positional refinement, which depends
on the axis and context, is added by :mod:`repro.induction.step_pattern`).
Following the paper:

* tests start from the most general (``node()``) down to the tag name;
* one predicate compares an attribute or the text value, using
  equals/contains/starts-with/ends-with;
* string constants are either single words of the document or the full
  text/attribute value of a node (which makes them plausible by
  construction);
* text predicates never use *volatile* text — text nodes marked as page
  data rather than template (Sec. 6.2's evaluation protocol).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dom.node import Document, ElementNode, Node, TextNode
from repro.induction.config import InductionConfig
from repro.scoring.params import ScoringParams
from repro.scoring.score import score_nodetest, score_predicate
from repro.xpath.ast import (
    ANY,
    AttrSubject,
    AttributePredicate,
    NODE,
    NodeTest,
    Predicate,
    StringPredicate,
    TEXT,
    TextSubject,
    name_test,
)


@dataclass(frozen=True)
class NodePattern:
    """A node test with zero or one (non-positional) predicate."""

    nodetest: NodeTest
    predicates: tuple[Predicate, ...]

    @property
    def base_score(self) -> float:  # pragma: no cover - convenience
        raise NotImplementedError


def _dedupe_words(values: list[str], limit: int) -> list[str]:
    seen: set[str] = set()
    words: list[str] = []
    for value in values:
        if value and value not in seen:
            seen.add(value)
            words.append(value)
            if len(words) >= limit:
                break
    return words


def _attribute_predicates(
    node: ElementNode, config: InductionConfig
) -> list[Predicate]:
    predicates: list[Predicate] = []
    for name in sorted(node.attrs):
        if name in config.skipped_attributes:
            continue
        value = node.attrs[name]
        subject = AttrSubject(name)
        if value and len(value) <= config.max_attr_value_length:
            predicates.append(StringPredicate("equals", subject, value))
        words = _dedupe_words(value.split(), config.max_words_per_value)
        for word in words:
            if word != value:
                predicates.append(StringPredicate("contains", subject, word))
        predicates.append(AttributePredicate(name))
    return predicates


def _template_text_runs(node: Node, config: InductionConfig) -> list[TextNode]:
    """Descendant text nodes that are template (non-volatile) text."""
    if isinstance(node, TextNode):
        nodes = [node]
    else:
        assert isinstance(node, ElementNode)
        nodes = [n for n in node.descendants() if isinstance(n, TextNode)]
    key = config.volatile_meta_key
    return [n for n in nodes if not n.meta.get(key)]


def _text_predicates(
    node: Node, doc: Document, config: InductionConfig
) -> list[Predicate]:
    if not config.allow_text_predicates:
        return []
    runs = _template_text_runs(node, config)
    if not runs:
        return []
    subject = TextSubject()
    predicates: list[Predicate] = []
    full_text = doc.normalized_text(node)

    all_template = len(runs) == len(
        [n for n in ([node] if isinstance(node, TextNode) else node.descendants())
         if isinstance(n, TextNode)]
    )
    if all_template and full_text and len(full_text) <= config.max_text_length:
        predicates.append(StringPredicate("equals", subject, full_text))

    # starts-with on the leading template run ("Director:" style labels).
    first_run = runs[0].normalized_text()
    if first_run and full_text.startswith(first_run):
        predicates.append(StringPredicate("starts-with", subject, first_run))
        first_word = first_run.split()[0]
        if first_word != first_run and len(runs) > 0:
            predicates.append(StringPredicate("starts-with", subject, first_word))

    # contains on template words.
    words: list[str] = []
    for run in runs:
        words.extend(run.normalized_text().split())
    for word in _dedupe_words(words, config.max_words_per_value):
        if word != full_text and word != first_run:
            predicates.append(StringPredicate("contains", subject, word))

    # ends-with on the trailing template run.
    last_run = runs[-1].normalized_text()
    if last_run and last_run != first_run and full_text.endswith(last_run):
        predicates.append(StringPredicate("ends-with", subject, last_run))
    return predicates


def node_patterns(
    node: Node,
    doc: Document,
    config: InductionConfig,
    params: ScoringParams,
) -> list[NodePattern]:
    """All candidate patterns for ``node``, cheapest first, capped.

    Returns an empty list for synthetic roots (they cannot be matched by
    any dsXPath node test, which is intended).
    """
    # Following the paper's nodePattern listing ("node() div div[@id='x']
    # div[@class='y'] div[contains(.,'z')]"), attribute/text predicates
    # attach to the *specific* test only; generic tests are generated
    # bare (they still receive positional refinements in stepPattern,
    # e.g. the sideways hop following-sibling::node()[1]).
    if isinstance(node, TextNode):
        specific: list[NodeTest] = [TEXT]
        generic: list[NodeTest] = [NODE]
    elif isinstance(node, ElementNode):
        if node.tag.startswith("#"):
            return []
        specific = [name_test(node.tag)]
        generic = [NODE, ANY]
    else:
        return []

    predicate_options: list[tuple[Predicate, ...]] = [()]
    if isinstance(node, ElementNode):
        predicate_options.extend((p,) for p in _attribute_predicates(node, config))
    predicate_options.extend((p,) for p in _text_predicates(node, doc, config))

    patterns = [NodePattern(test, ()) for test in generic]
    patterns.extend(
        NodePattern(test, predicates)
        for test in specific
        for predicates in predicate_options
    )

    def pattern_cost(pattern: NodePattern) -> float:
        cost = score_nodetest(pattern.nodetest, params)
        for predicate in pattern.predicates:
            cost += score_predicate(predicate, params)
        return cost

    patterns.sort(key=lambda p: (pattern_cost(p), str(p.nodetest), str(p.predicates)))
    return patterns[: config.max_node_patterns]

"""Stochastic candidate pruning for the induction DP (opt-in).

``search="pruned"`` replaces the exhaustive scan of every
``StepCandidate`` at a DP position with a cheap stochastic-approximation
ranking in the SPSA-FSR idiom (Yenice et al., arXiv:1804.05589): each
candidate is reduced to a small feature vector (target coverage,
match-set precision, robustness score, brevity), the feature weights
are perturbed symmetrically a handful of times with a seeded RNG, and
the candidate's ranks under the perturbed weightings are aggregated.
Candidates that rank well *robustly* — under every perturbation, not
just a single hand-tuned weighting — survive into the beam; only they
receive full DP scoring (``score_pair`` + tail-query evaluation per
K-best tail), which is where induction time actually goes on large
pages.

Determinism contract: the RNG is seeded from
``(config.prune_seed, context id, anchor id, axis)`` only, so a given
document + config always prunes identically — same seed, same beam,
same induced queries.  The exhaustive default never constructs a
pruner at all.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from repro.xpath.ast import Axis

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.dom.node import Document
    from repro.induction.step_pattern import StepCandidate

#: Base feature weights (coverage, precision, robustness, brevity) and
#: the SPSA perturbation magnitude.  Coverage/precision dominate —
#: a candidate that cannot reach the targets precisely is never worth
#: full DP scoring — while robustness/brevity break ties the way the
#: paper's rank key does.
_BASE_WEIGHTS = (1.0, 1.0, 0.5, 0.1)
_C_SCALE = 0.5

#: Stable axis ordinal for RNG seeding (enum definition order).
_AXIS_ORDINAL = {axis: index for index, axis in enumerate(Axis)}

#: Generation quotas pruned search narrows *in addition to* the DP beam.
#: Profiling shows candidate generation (the sideways cross-product in
#: particular) costs as much as the DP itself on large pages, and the
#: stochastic beam can only skip work that happens after generation —
#: so pruned mode also tightens how many candidates get generated at
#: all.  Values are ceilings: a stricter user-set quota always wins.
PRUNED_GENERATION_LIMITS = {
    "max_sideways_each_side": 2,
    "max_sideways_patterns": 2,
    "max_node_patterns": 20,
    "max_target_spines": 6,
}


def pruned_generation_config(config):
    """The effective config for a ``search="pruned"`` run."""
    from dataclasses import replace

    return replace(
        config,
        **{
            field_name: min(getattr(config, field_name), ceiling)
            for field_name, ceiling in PRUNED_GENERATION_LIMITS.items()
        },
    )


class CandidatePruner:
    """Per-document pruning state: beam parameters plus skip counters."""

    __slots__ = ("beam_width", "trials", "seed", "considered", "skipped")

    def __init__(self, beam_width: int, trials: int, seed: int) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        if trials < 1:
            raise ValueError(f"prune_trials must be >= 1, got {trials}")
        self.beam_width = beam_width
        self.trials = trials
        self.seed = seed
        #: Candidates seen at positions where pruning was attempted.
        self.considered = 0
        #: Candidates dropped before full DP scoring.
        self.skipped = 0

    def prune(
        self,
        candidates: Sequence["StepCandidate"],
        nid: int,
        tid: int,
        axis: Axis,
        reachable: frozenset[int],
        doc: "Document",
    ) -> list["StepCandidate"]:
        """Return the surviving beam, in original candidate order."""
        self.considered += len(candidates)
        if len(candidates) <= self.beam_width:
            return list(candidates)

        node_id = doc.node_id
        n_reachable = len(reachable) or 1
        features: list[tuple[float, float, float, float]] = []
        for candidate in candidates:
            matches = candidate.matches
            hits = sum(1 for m in matches if node_id(m) in reachable)
            n_matches = len(matches) or 1
            instance = candidate.instance
            features.append(
                (
                    hits / n_reachable,                      # target coverage
                    hits / n_matches,                        # precision proxy
                    1.0 / (1.0 + instance.score),            # robustness
                    1.0 / (1.0 + len(instance.query)),       # brevity
                )
            )

        # SPSA-style simultaneous perturbation: each trial draws one ±1
        # direction per feature and ranks the candidates under both the
        # +c and -c weightings; rank positions accumulate per candidate.
        rng = random.Random(
            self.seed * 1_000_003 + nid * 8_191 + tid * 31 + _AXIS_ORDINAL[axis]
        )
        total_rank = [0] * len(candidates)
        order = list(range(len(candidates)))
        for _ in range(self.trials):
            delta = [1 if rng.random() < 0.5 else -1 for _ in _BASE_WEIGHTS]
            for sign in (1, -1):
                w0, w1, w2, w3 = (
                    base + sign * _C_SCALE * d
                    for base, d in zip(_BASE_WEIGHTS, delta)
                )
                # Scores are precomputed once per weighting (the sort key
                # would otherwise re-evaluate the dot product O(n log n)
                # times); the explicit left-to-right addition matches
                # sum()'s association, keeping ranks bit-stable.
                scores = [
                    w0 * f0 + w1 * f1 + w2 * f2 + w3 * f3
                    for f0, f1, f2, f3 in features
                ]
                order.sort(key=lambda i: (-scores[i], i))
                for rank, i in enumerate(order):
                    total_rank[i] += rank

        kept = sorted(
            range(len(candidates)), key=lambda i: (total_rank[i], i)
        )[: self.beam_width]
        self.skipped += len(candidates) - len(kept)
        # Preserve the generator's candidate order inside the beam so the
        # DP's insertion tie-breaks stay deterministic.
        return [candidates[i] for i in sorted(kept)]

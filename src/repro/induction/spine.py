"""Spines, base axes, and reachability (Sec. 5).

The base axes are B = {child, parent, following-sibling,
preceding-sibling}; ``axis.transitive`` maps child→descendant and
parent→ancestor.  The *spine* from u to v along a base axis is the node
sequence connecting them; its inner nodes are the possible anchors of
the induced query.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.dom.node import INVALIDATED_STAMPS, AttributeNode, Document, ElementNode, Node
from repro.xpath.ast import Axis, BASE_AXES


def is_ancestor_of(ancestor: Node, node: Node) -> bool:
    """Strict ancestorship.

    When both nodes carry the same live (non-zero, not invalidated)
    document-index stamp, this is an O(1) pre/post-order interval
    containment test; otherwise — unindexed nodes, or an index dropped
    by ``Document.invalidate`` whose nodes still hold stale intervals —
    it falls back to walking the parent chain.
    """
    stamp = ancestor._stamp
    if stamp and stamp == node._stamp and stamp not in INVALIDATED_STAMPS:
        return ancestor._pre < node._pre <= ancestor._post
    return any(a is ancestor for a in node.ancestors())


def base_axis_between(u: Node, v: Node) -> Optional[Axis]:
    """The unique base axis a such that v is a.transitive-reachable from u."""
    if v is u:
        return None
    if isinstance(v, AttributeNode):
        v = v.parent
        if v is u:
            return None  # attribute of the context itself: no base axis needed
    if is_ancestor_of(u, v):
        return Axis.CHILD
    if is_ancestor_of(v, u):
        return Axis.PARENT
    if u.parent is not None and v.parent is u.parent:
        if u.index_in_parent() < v.index_in_parent():
            return Axis.FOLLOWING_SIBLING
        return Axis.PRECEDING_SIBLING
    return None


def common_base_axis(u: Node, targets: Iterable[Node]) -> Optional[Axis]:
    """The base axis reaching *all* targets from u, if one exists (Alg. 3, L2)."""
    axes = {base_axis_between(u, v) for v in targets}
    if len(axes) == 1:
        axis = axes.pop()
        if axis in BASE_AXES:
            return axis
    return None


def spine(u: Node, v: Node, axis: Axis) -> list[Node]:
    """Nodes from u to v inclusive, along ``axis`` (u first, v last)."""
    if isinstance(v, AttributeNode):
        v = v.parent
    if axis is Axis.CHILD:
        path = [v]
        for ancestor in v.ancestors():
            path.append(ancestor)
            if ancestor is u:
                path.reverse()
                return path
        raise ValueError("v is not a descendant of u")
    if axis is Axis.PARENT:
        path = [u]
        for ancestor in u.ancestors():
            path.append(ancestor)
            if ancestor is v:
                return path
        raise ValueError("v is not an ancestor of u")
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        if u.parent is None or v.parent is not u.parent:
            raise ValueError("u and v are not siblings")
        siblings = u.parent.children
        i, j = u.index_in_parent(), v.index_in_parent()
        if axis is Axis.FOLLOWING_SIBLING:
            if j < i:
                raise ValueError("v does not follow u")
            return siblings[i : j + 1]
        if j > i:
            raise ValueError("v does not precede u")
        return list(reversed(siblings[j : i + 1]))
    raise ValueError(f"not a base axis: {axis}")


def lca(nodes: Sequence[Node]) -> Node:
    """Least common ancestor of a non-empty node set.

    A node that is itself an ancestor of the others is their LCA
    (matching the paper's ``lca(V ∪ {u})`` usage).
    """
    if not nodes:
        raise ValueError("lca of empty node set")
    paths: list[list[Node]] = []
    for node in nodes:
        if isinstance(node, AttributeNode):
            node = node.parent
        path = [node] + list(node.ancestors())
        path.reverse()  # root first
        paths.append(path)
    depth = min(len(p) for p in paths)
    ancestor: Optional[Node] = None
    for level in range(depth):
        candidate = paths[0][level]
        if all(p[level] is candidate for p in paths):
            ancestor = candidate
        else:
            break
    if ancestor is None:
        raise ValueError("nodes share no common ancestor (different documents?)")
    return ancestor


def targets_reachable(
    node: Node, targets: Sequence[Node], axis: Axis, doc: "Document"
) -> frozenset[int]:
    """Node ids of targets reachable from ``node`` via ``axis.transitive``.

    This is the ``tar`` table of Algorithm 2: tar(n) = V ∩ axis.transitive(n).
    Ids are the document's stable integer node ids
    (:meth:`~repro.dom.node.Document.node_id`), so the DP's set algebra
    runs on small ints.
    """
    reachable: set[int] = set()
    for v in targets:
        between = base_axis_between(node, v)
        if between is not None and between.transitive is axis.transitive:
            reachable.add(doc.node_id(v))
    return frozenset(reachable)

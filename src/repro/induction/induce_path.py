"""Axis path induction — Algorithm 2 (``inducePath``).

A K-best dynamic program along the spine: for every target v and every
anchor t on the spine between v and the context u (v first), candidate
instances ``stepPattern(n, t, axis) × best(t)`` are evaluated against
the reachable targets ``tar(n)`` and inserted into ``best(n)`` when they
beat the current K-th entry.  Anchors are visited bottom-up so ``best(t)``
is final before it is read (the paper's DP invariant); the ``best`` and
``tar`` tables are passed in so Algorithm 3 can reuse this procedure for
the two-directional case with a pre-seeded LCA entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.samples import QuerySample
from repro.induction.spine import spine, targets_reachable
from repro.induction.step_pattern import StepCandidate, step_patterns
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import KBestTable, QueryInstance
from repro.scoring.score import Scorer
from repro.xpath.ast import Axis, EMPTY_QUERY, Query
from repro.xpath.cache import CachedEvaluator

#: Tables are keyed by node identity (nodes are unhashable by value).
BestTables = dict[int, KBestTable]
TargetTable = dict[int, frozenset[int]]


@dataclass
class PathInductionContext:
    """Shared state for one document's induction run."""

    doc: Document
    config: InductionConfig
    params: ScoringParams
    scorer: Scorer
    evaluator: CachedEvaluator
    step_cache: dict[tuple[int, int, Axis], list[StepCandidate]] = field(
        default_factory=dict
    )

    @classmethod
    def for_doc(
        cls, doc: Document, config: InductionConfig, params: ScoringParams
    ) -> "PathInductionContext":
        return cls(
            doc=doc,
            config=config,
            params=params,
            scorer=Scorer(params),
            evaluator=CachedEvaluator(doc),
        )

    def step_patterns(self, n: Node, t: Node, axis: Axis) -> list[StepCandidate]:
        key = (id(n), id(t), axis)
        cached = self.step_cache.get(key)
        if cached is None:
            cached = step_patterns(
                n, t, axis, self.config.k, self.doc, self.config, self.params, self.scorer
            )
            self.step_cache[key] = cached
        return cached


def init_tables(
    targets: list[Node], k: int, beta: float
) -> BestTables:
    """Initial ``best`` tables: ε with ⟨ε,1,0,0⟩ at every target (Sec. 5)."""
    best: BestTables = {}
    for v in targets:
        table = KBestTable(k, beta)
        table.insert(QueryInstance(EMPTY_QUERY, tp=1, fp=0, fn=0, score=0.0))
        best[id(v)] = table
    return best


def induce_path(
    ctx: PathInductionContext,
    u: Node,
    targets: list[Node],
    axis: Axis,
    best: BestTables,
    tar: TargetTable,
) -> KBestTable:
    """Algorithm 2; returns ``best(u)`` (possibly empty when nothing matched)."""
    k = ctx.config.k
    beta = ctx.config.beta

    for v in _spine_targets(targets, ctx.config.max_target_spines):
        path = spine(u, v, axis)  # u .. v
        # Anchors t ∈ spine(v, u) − {u}, i.e. from v up/back towards u.
        for t_index in range(len(path) - 1, 0, -1):
            t = path[t_index]
            tails = best.get(id(t))
            if tails is None or len(tails) == 0:
                continue  # the fail query ⊥: nothing to extend
            tail_items = tails.items
            # Contexts n ∈ spine(u, t) − {t}.
            for n_index in range(t_index):
                n = path[n_index]
                table = best.get(id(n))
                if table is None:
                    table = KBestTable(k, beta)
                    best[id(n)] = table
                reachable = tar.get(id(n))
                if reachable is None:
                    reachable = targets_reachable(n, targets, axis)
                    tar[id(n)] = reachable
                for candidate in ctx.step_patterns(n, t, axis):
                    for tail in tail_items:
                        _try_candidate(ctx, table, candidate, tail, reachable)

    result = best.get(id(u))
    if result is None:
        result = KBestTable(k, beta)
        best[id(u)] = result
    return result


def _spine_targets(targets: list[Node], limit: int) -> list[Node]:
    """The targets whose spines the DP walks: all of them when few,
    otherwise the first, the last, and an even spread in between (head
    and tail matter most — they delimit list selections)."""
    if limit <= 0 or len(targets) <= limit:
        return targets
    step = (len(targets) - 1) / (limit - 1)
    indices = sorted({round(i * step) for i in range(limit)})
    return [targets[i] for i in indices]


def _try_candidate(
    ctx: PathInductionContext,
    table: KBestTable,
    candidate: StepCandidate,
    tail: QueryInstance,
    reachable: frozenset[int],
) -> None:
    """Score/evaluate ``candidate.query / tail.query`` and insert if it beats
    the table's K-th entry (Alg. 2, L5–9)."""
    query = candidate.query.concat(tail.query)
    score = ctx.scorer.score(query)
    # Prune without evaluating: even with a perfect F-score the candidate
    # could not enter the table.
    if not table.would_accept((-1.0, score, len(query), "")):
        return
    match_ids = ctx.evaluator.evaluate_concat_ids(candidate.matches, tail.query)
    tp = len(match_ids & reachable)
    fp = len(match_ids) - tp
    fn = len(reachable) - tp
    table.insert(QueryInstance(query, tp=tp, fp=fp, fn=fn, score=score))

"""Axis path induction — Algorithm 2 (``inducePath``).

A K-best dynamic program along the spine: for every target v and every
anchor t on the spine between v and the context u (v first), candidate
instances ``stepPattern(n, t, axis) × best(t)`` are evaluated against
the reachable targets ``tar(n)`` and inserted into ``best(n)`` when they
beat the current K-th entry.  Anchors are visited bottom-up so ``best(t)``
is final before it is read (the paper's DP invariant); the ``best`` and
``tar`` tables are passed in so Algorithm 3 can reuse this procedure for
the two-directional case with a pre-seeded LCA entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.prune import CandidatePruner, pruned_generation_config
from repro.induction.samples import QuerySample
from repro.induction.spine import spine, targets_reachable
from repro.induction.step_pattern import StepCandidate, step_patterns
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import KBestTable, QueryInstance
from repro.scoring.score import Scorer, shared_scorer
from repro.xpath.ast import Axis, EMPTY_QUERY, Query
from repro.xpath.cache import CachedEvaluator

#: Tables are keyed by the document's stable integer node ids
#: (:meth:`~repro.dom.node.Document.node_id`): small ints, cheap to hash,
#: stable across the whole induction run.
BestTables = dict[int, KBestTable]
TargetTable = dict[int, frozenset[int]]


@dataclass
class PathInductionContext:
    """Shared state for one document's induction run."""

    doc: Document
    config: InductionConfig
    params: ScoringParams
    scorer: Scorer
    evaluator: CachedEvaluator
    step_cache: dict[tuple[int, int, Axis], list[StepCandidate]] = field(
        default_factory=dict
    )
    #: ``search="pruned"`` only; None on the exhaustive default, which
    #: therefore runs byte-for-byte the code it always has.
    pruner: Optional[CandidatePruner] = None
    pruned_cache: dict[tuple, list[StepCandidate]] = field(default_factory=dict)

    @classmethod
    def for_doc(
        cls, doc: Document, config: InductionConfig, params: ScoringParams
    ) -> "PathInductionContext":
        pruner = None
        if config.search == "pruned":
            pruner = CandidatePruner(
                config.beam_width, config.prune_trials, config.prune_seed
            )
            config = pruned_generation_config(config)
        return cls(
            doc=doc,
            config=config,
            params=params,
            scorer=shared_scorer(params),
            evaluator=CachedEvaluator(doc),
            pruner=pruner,
        )

    def node_id(self, node: Node) -> int:
        return self.doc.node_id(node)

    def step_patterns(self, n: Node, t: Node, axis: Axis) -> list[StepCandidate]:
        key = (self.doc.node_id(n), self.doc.node_id(t), axis)
        cached = self.step_cache.get(key)
        if cached is None:
            cached = step_patterns(
                n, t, axis, self.config.k, self.doc, self.config, self.params, self.scorer
            )
            self.step_cache[key] = cached
        return cached

    def step_candidates(
        self, n: Node, t: Node, axis: Axis, reachable: frozenset[int]
    ) -> list[StepCandidate]:
        """The candidates the DP scores at (n, t): all of them under the
        exhaustive default, the stochastic beam under ``search="pruned"``.
        The beam is keyed on the reachable-target set too: the
        two-directional case can revisit a position with different
        reachable targets, and coverage features depend on them."""
        candidates = self.step_patterns(n, t, axis)
        if self.pruner is None:
            return candidates
        nid = self.doc.node_id(n)
        tid = self.doc.node_id(t)
        key = (nid, tid, axis, reachable)
        pruned = self.pruned_cache.get(key)
        if pruned is None:
            pruned = self.pruner.prune(candidates, nid, tid, axis, reachable, self.doc)
            self.pruned_cache[key] = pruned
        return pruned


def init_tables(
    doc: Document, targets: list[Node], k: int, beta: float
) -> BestTables:
    """Initial ``best`` tables: ε with ⟨ε,1,0,0⟩ at every target (Sec. 5)."""
    best: BestTables = {}
    for v in targets:
        table = KBestTable(k, beta)
        table.insert(QueryInstance(EMPTY_QUERY, tp=1, fp=0, fn=0, score=0.0))
        best[doc.node_id(v)] = table
    return best


def induce_path(
    ctx: PathInductionContext,
    u: Node,
    targets: list[Node],
    axis: Axis,
    best: BestTables,
    tar: TargetTable,
) -> KBestTable:
    """Algorithm 2; returns ``best(u)`` (possibly empty when nothing matched)."""
    k = ctx.config.k
    beta = ctx.config.beta
    node_id = ctx.doc.node_id
    score_pair = ctx.scorer.score_pair
    concat_ids = ctx.evaluator.evaluate_concat_ids

    for v in _spine_targets(targets, ctx.config.max_target_spines):
        path = spine(u, v, axis)  # u .. v
        # Anchors t ∈ spine(v, u) − {u}, i.e. from v up/back towards u.
        for t_index in range(len(path) - 1, 0, -1):
            t = path[t_index]
            tails = best.get(node_id(t))
            if tails is None or len(tails) == 0:
                continue  # the fail query ⊥: nothing to extend
            tail_items = [(tail, tail.query, len(tail.query)) for tail in tails.items]
            # Contexts n ∈ spine(u, t) − {t}.
            for n_index in range(t_index):
                n = path[n_index]
                nid = node_id(n)
                table = best.get(nid)
                if table is None:
                    table = KBestTable(k, beta)
                    best[nid] = table
                reachable = tar.get(nid)
                if reachable is None:
                    reachable = targets_reachable(n, targets, axis, ctx.doc)
                    tar[nid] = reachable
                would_accept_partial = table.would_accept_partial
                n_reachable = len(reachable)
                # Alg. 2, L5–9, inlined (this is the DP's innermost loop):
                # score the extension without concatenating, prune, and
                # only then evaluate and materialize the composed query.
                for candidate in ctx.step_candidates(n, t, axis, reachable):
                    head = candidate.instance.query
                    head_len = len(head)
                    head_matches = candidate.matches
                    for tail, tail_query, tail_len in tail_items:
                        score = score_pair(head, tail_query)
                        if not would_accept_partial(
                            (-1.0, score, head_len + tail_len)
                        ):
                            continue
                        match_ids = concat_ids(head_matches, tail_query)
                        tp = len(match_ids & reachable)
                        table.insert(
                            QueryInstance(
                                head.concat(tail_query),
                                tp=tp,
                                fp=len(match_ids) - tp,
                                fn=n_reachable - tp,
                                score=score,
                            )
                        )

    result = best.get(node_id(u))
    if result is None:
        result = KBestTable(k, beta)
        best[node_id(u)] = result
    return result


def _spine_targets(targets: list[Node], limit: int) -> list[Node]:
    """The targets whose spines the DP walks: all of them when few,
    otherwise the first, the last, and an even spread in between (head
    and tail matter most — they delimit list selections)."""
    if limit <= 0 or len(targets) <= limit:
        return targets
    step = (len(targets) - 1) / (limit - 1)
    indices = sorted({round(i * step) for i in range(limit)})
    return [targets[i] for i in indices]



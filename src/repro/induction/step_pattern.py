"""Spine step induction — Algorithm 1 (``stepPattern``).

Generates the K-best one-anchor query pieces matching a spine node ``t``
from a context ``n`` along a base axis:

* *direct* patterns: ``axis.transitive::pattern`` always, plus
  ``axis::pattern`` when ``t`` is one plain step away;
* *sideways* patterns (child axis only, as in the paper): an anchor
  pattern for a sibling ``s`` of ``t`` followed by one
  following-/preceding-sibling step reaching ``t`` — the construction
  that makes robust list selection possible (Sec. 6.3);
* positional refinements ``[k]`` / ``[last()-m]`` appended when a
  pattern does not uniquely match ``t`` — the *unrefined* pattern is
  kept too, since over-matching patterns are exactly what multi-target
  induction needs (they are rescored against the real target set by
  Algorithm 2).

Every returned candidate satisfies the algorithm's contract
``{t} ⊆ p(n)`` and carries its match set, so Algorithm 2 can evaluate
concatenations incrementally.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import nsmallest

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.node_pattern import NodePattern, node_patterns
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import QueryInstance, QueryText, fbeta
from repro.scoring.score import Scorer, shared_scorer
from repro.xpath.ast import Axis, PositionalPredicate, Query, Step
from repro.xpath.compile import compile_step


class StepCandidate:
    """A candidate query piece with its (rescored) instance and matches.

    A plain ``__slots__`` class (not a dataclass): candidates are bulk
    allocated in the induction's innermost generation loop.
    """

    __slots__ = ("instance", "matches")

    def __init__(self, instance: QueryInstance, matches: tuple[Node, ...]) -> None:
        self.instance = instance
        self.matches = matches

    @property
    def query(self) -> Query:
        return self.instance.query


class _LightTopK:
    """Bounded top-K of (rank key, query) pairs without instance payloads.

    Mirrors :class:`~repro.scoring.ranking.KBestTable` exactly for the
    step-pattern selection case, where duplicate queries always carry
    identical keys (so "replace if strictly better" reduces to "skip
    duplicates").  The text tiebreak is only constructed once a
    candidate survives the text-free prefix check.
    """

    __slots__ = ("k", "keys", "queries", "queries_set")

    def __init__(self, k: int) -> None:
        self.k = k
        self.keys: list[tuple] = []
        self.queries: list[Query] = []
        self.queries_set: set[Query] = set()

    def insert(self, neg_f: float, score: float, length: int, query: Query) -> None:
        keys = self.keys
        if len(keys) >= self.k:
            last = keys[-1]
            if (neg_f, score, length) > last[:3]:
                return
            key = (neg_f, score, length, QueryText(query))
            if not key < last:
                return
            if query in self.queries_set:
                return
            i = bisect_left(keys, key)
            keys.insert(i, key)
            self.queries.insert(i, query)
            self.queries_set.add(query)
            keys.pop()
            self.queries_set.discard(self.queries.pop())
        else:
            if query in self.queries_set:
                return
            key = (neg_f, score, length, QueryText(query))
            i = bisect_left(keys, key)
            keys.insert(i, key)
            self.queries.insert(i, query)
            self.queries_set.add(query)


# node_patterns results are memoized on the document index
# (``DocumentIndex.pattern_cache``), keyed by (node pre number,
# config/params identity).  The same target and sibling nodes are
# pattern-expanded for every context on the spine; the stored
# config/params references pin the objects so the id keys stay valid
# while cached.  The memo lives on the index — not in a module global
# keyed by stamp — so it is reclaimed with the document instead of
# pinning every page a long-running fleet worker ever re-induced
# (see the matching note in ``repro.xpath.compile``).


def _cached_node_patterns(
    node: Node, doc: Document, config: InductionConfig, params: ScoringParams
) -> list[NodePattern]:
    index = doc.index
    if node._stamp != index.stamp:
        return node_patterns(node, doc, config, params)
    key = (node._pre, id(config), id(params))
    entry = index.pattern_cache.get(key)
    if entry is None or entry[0] is not config or entry[1] is not params:
        entry = (config, params, node_patterns(node, doc, config, params))
        index.pattern_cache[key] = entry
    return entry[2]


#: Intern tables for steps and the one-/two-step queries built from
#: them.  Candidate generation rebuilds the same Step/Query values over
#: and over; interning makes every later dict/set operation on them an
#: identity hit (tuple equality short-circuits on ``is``) and skips
#: re-running the eager hash of ``__post_init__``.
_STEP_INTERN: dict[Step, Step] = {}
_QUERY1_INTERN: dict[Step, Query] = {}
_QUERY2_INTERN: dict[tuple[Step, Step], Query] = {}
_INTERN_LIMIT = 200_000


def _intern_step(step: Step) -> Step:
    canonical = _STEP_INTERN.get(step)
    if canonical is None:
        if len(_STEP_INTERN) > _INTERN_LIMIT:
            _STEP_INTERN.clear()
        _STEP_INTERN[step] = canonical = step
    return canonical


def _single_query(step: Step) -> Query:
    query = _QUERY1_INTERN.get(step)
    if query is None:
        if len(_QUERY1_INTERN) > _INTERN_LIMIT:
            _QUERY1_INTERN.clear()
        _QUERY1_INTERN[step] = query = Query((step,))
    return query


def _pair_query(anchor: Step, hop: Step) -> Query:
    key = (anchor, hop)
    query = _QUERY2_INTERN.get(key)
    if query is None:
        if len(_QUERY2_INTERN) > _INTERN_LIMIT:
            _QUERY2_INTERN.clear()
        _QUERY2_INTERN[key] = query = Query((anchor, hop))
    return query


# Single-step match lists are memoized on the document index
# (``DocumentIndex.match_cache``), keyed by (context pre-order number,
# step).  The same (context, step) pair is evaluated for many (anchor,
# pattern) combinations — direct patterns shared by several spine
# targets, sideways anchors shared across siblings.  Entries are shared
# lists; callers must not mutate them.  The memo lives on the index —
# not in a module global keyed by stamp — so rebuilt/discarded
# documents release their nodes (see the note in
# ``repro.xpath.compile``).


def _axis_matches(context: Node, step: Step, doc: Document) -> list[Node]:
    """Matches of a (positional-free) step from ``context``, in axis order.

    Runs on the compiled step plan (axis × nodetest fused, tag-index
    slicing for ``descendant`` steps); plans are memoized globally, so
    the many pattern variants sharing a step are compiled once.
    """
    index = doc.index
    if context._stamp != index.stamp:  # detached context: no stable key
        return compile_step(step)(context, doc, index)
    key = (context._pre, step)
    cached = index.match_cache.get(key)
    if cached is None:
        cached = compile_step(step)(context, doc, index)
        index.match_cache[key] = cached
    return cached


def _step_variants(
    context: Node,
    target: Node,
    axis: Axis,
    pattern: NodePattern,
    doc: Document,
    config: InductionConfig,
) -> list[tuple[Step, list[Node]]]:
    """Steps built from one node pattern along one axis, with positional
    refinements; every variant matches ``target`` from ``context``."""
    base = _intern_step(Step(axis, pattern.nodetest, pattern.predicates))
    ordered = _axis_matches(context, base, doc)
    try:
        position = next(i for i, node in enumerate(ordered) if node is target)
    except StopIteration:
        return []  # pattern does not reach the target at all
    variants: list[tuple[Step, list[Node]]] = [(base, ordered)]
    if len(ordered) > 1 and config.enable_positional:
        index_pred = PositionalPredicate(index=position + 1)
        variants.append((_intern_step(base.with_predicates(index_pred)), [target]))
        from_last = len(ordered) - 1 - position
        last_pred = PositionalPredicate(from_last=from_last)
        variants.append((_intern_step(base.with_predicates(last_pred)), [target]))
    return variants


def _vertical_axes(context: Node, target: Node, axis: Axis) -> list[Axis]:
    """Axis forms for a direct step: the transitive form always, the plain
    base form when one step suffices."""
    axes = [axis.transitive]
    if axis in (Axis.CHILD, Axis.PARENT):
        direct = (
            target.parent is context if axis is Axis.CHILD else context.parent is target
        )
        if direct:
            axes.append(axis)
    return axes


def _nearby_siblings(target: Node, limit: int) -> list[Node]:
    """Up to ``limit`` siblings on each side of ``target``, nearest first."""
    preceding = list(target.preceding_siblings())[:limit]
    following = list(target.following_siblings())[:limit]
    return preceding + following


def step_patterns(
    context: Node,
    target: Node,
    axis: Axis,
    k: int,
    doc: Document,
    config: InductionConfig,
    params: ScoringParams,
    scorer: Scorer,
) -> list[StepCandidate]:
    """Algorithm 1: the best query pieces matching ``target`` from ``context``.

    Returns the union of the top-K by the paper's ranking (F0.5 against
    {t}, then score) and the top-K by score alone.  The second group
    keeps cheap over-matching patterns (``descendant::li``) alive for
    multi-target induction, where Algorithm 2 rescored them against the
    full target set.
    """
    beta = config.beta
    # Pieces are scored WITHOUT the no-predicate penalty: that penalty is a
    # property of the final composed query (Sec. 4 adds it to score(q)),
    # and a bare piece like ``descendant::li`` composes into penalty-free
    # queries such as ``descendant::div[@id="x"]/descendant::li``.  Using
    # the penalized score here would starve multi-target induction of its
    # list patterns.
    piece_scorer = shared_scorer(params, "pieces")
    step_score = piece_scorer._step_score

    #: (query, matches, piece score); scores are computed inline from the
    #: cached per-step scores — bit-identical to ``score_pair(query, None)``.
    candidates: list[tuple[Query, list[Node], float]] = []
    core_queries: set[Query] = set()  # bare tag/text tests, always kept

    for vertical_axis in _vertical_axes(context, target, axis):
        for pattern in _cached_node_patterns(target, doc, config, params):
            is_core = not pattern.predicates and pattern.nodetest.kind in ("name", "text")
            for step, matches in _step_variants(
                context, target, vertical_axis, pattern, doc, config
            ):
                query = _single_query(step)
                candidates.append((query, matches, 0.0 + step_score(step) * 1.0))
                if is_core:
                    core_queries.add(query)

    sideways_start = len(candidates)
    if axis is Axis.CHILD and config.enable_sideways:
        candidates.extend(
            _sideways_candidates(context, target, doc, config, params, piece_scorer)
        )

    # Selection runs on lightweight rank keys; only the ~5% of candidates
    # that survive are materialized into instances at the end.
    ranked = _LightTopK(k)
    sideways_ranked = _LightTopK(max(1, config.max_sideways_patterns))
    negf_by_fp: dict[int, float] = {}
    fps: list[int] = []
    for i, (query, matches, score) in enumerate(candidates):
        fp = len(matches) - 1
        fps.append(fp)
        # F_β depends only on fp here (tp=1, fn=0).
        neg_f = negf_by_fp.get(fp)
        if neg_f is None:
            neg_f = -fbeta(1, fp, 0, beta)
            negf_by_fp[fp] = neg_f
        length = 1 if i < sideways_start else 2
        ranked.insert(neg_f, score, length, query)
        if i >= sideways_start:
            # Sideways candidates get a quota of their own: list selection
            # needs sibling anchors (Sec. 6.3) even when cheap one-step
            # anchors exist.
            sideways_ranked.insert(neg_f, score, length, query)

    by_rank = ranked.queries_set
    by_score_top = nsmallest(
        k,
        range(len(candidates)),
        key=lambda i: (candidates[i][2], QueryText(candidates[i][0])),
    )

    chosen: dict[Query, int] = {}
    for i, (query, _, _) in enumerate(candidates):
        if (query in by_rank or query in core_queries) and query not in chosen:
            chosen[query] = i
    for i in by_score_top:
        query = candidates[i][0]
        if query not in chosen:
            chosen[query] = i
    sideways_kept = sideways_ranked.queries_set
    for i, (query, _, _) in enumerate(candidates):
        if query in sideways_kept and query not in chosen:
            chosen[query] = i

    out: list[StepCandidate] = []
    for query, i in chosen.items():
        _, matches, score = candidates[i]
        out.append(
            StepCandidate(
                QueryInstance(query, tp=1, fp=fps[i], fn=0, score=score),
                tuple(matches),
            )
        )
    return out


#: Sideways anchors matching more nodes than this are dropped before the
#: cross product: an anchor that matches a large slice of the page is
#: useless for selection and only inflates the candidate space.
_MAX_ANCHOR_MATCHES = 24


def _sideways_candidates(
    context: Node,
    target: Node,
    doc: Document,
    config: InductionConfig,
    params: ScoringParams,
    piece_scorer: Scorer | None = None,
) -> list[tuple[Query, list[Node], float]]:
    """Anchor-on-sibling patterns: vertical step to a sibling ``s`` of the
    spine node, then one sibling step to the spine node (Alg. 1, L2–5).

    Returns (query, matches, piece score) triples; scores accumulate the
    cached per-step scores exactly like ``score_pair(query, None)``.
    """
    if piece_scorer is None:
        piece_scorer = shared_scorer(params, "pieces")
    step_score = piece_scorer._step_score
    decay_1 = piece_scorer._pow(1)
    results: list[tuple[Query, list[Node], float]] = []
    for sibling in _nearby_siblings(target, config.max_sideways_each_side):
        if sibling.index_in_parent() < target.index_in_parent():
            sibling_axis = Axis.FOLLOWING_SIBLING
        else:
            sibling_axis = Axis.PRECEDING_SIBLING

        sibling_steps: list[tuple[Step, list[Node]]] = []
        for pattern in _cached_node_patterns(sibling, doc, config, params)[
            : config.max_sideways_patterns
        ]:
            for step, matches in _step_variants(
                context, sibling, Axis.DESCENDANT, pattern, doc, config
            ):
                if len(matches) <= _MAX_ANCHOR_MATCHES:
                    sibling_steps.append((step, matches))

        target_steps: list[tuple[Step, float]] = []
        for pattern in _cached_node_patterns(target, doc, config, params)[
            : config.max_sideways_patterns
        ]:
            target_steps.extend(
                (step, step_score(step) * decay_1)
                for step, _ in _step_variants(
                    sibling, target, sibling_axis, pattern, doc, config
                )
            )

        for anchor_step, anchor_matches in sibling_steps:
            if not any(node is sibling for node in anchor_matches):
                continue
            anchor_score = 0.0 + step_score(anchor_step) * 1.0
            for hop_step, hop_term in target_steps:
                query = _pair_query(anchor_step, hop_step)
                matches = evaluate_two_step(anchor_matches, hop_step, doc)
                # {target} ⊆ matches holds by construction: anchor_matches
                # contains the sibling (checked above) and every hop step
                # reaches the target from that sibling (_step_variants
                # only returns target-hitting variants).
                results.append((query, matches, anchor_score + hop_term))
    return results


def evaluate_two_step(
    anchor_matches: list[Node],
    hop_step: Step,
    doc: Document,
) -> list[Node]:
    """Matches of ``hop_step`` applied to every anchor match (doc order).

    Per-(anchor, step) memoization happens in the index-owned match
    cache, shared across all anchor-pattern variants and calls.  The
    cache loop is inlined — this sits on the sideways cross product,
    the innermost loop of candidate generation.  ``hop_step`` may carry
    positional predicates; the compiled plan applies predicates in
    declaration order, and induced steps always append positional
    refinements last, matching the historical plain-then-positional
    filtering exactly.
    """
    index = doc.index
    stamp = index.stamp
    cache = index.match_cache
    plan = None
    out: list[Node] = []
    for node in anchor_matches:
        if node._stamp != stamp:
            if plan is None:
                plan = compile_step(hop_step)
            out.extend(plan(node, doc, index))
            continue
        key = (node._pre, hop_step)
        matched = cache.get(key)
        if matched is None:
            if plan is None:
                plan = compile_step(hop_step)
            matched = plan(node, doc, index)
            cache[key] = matched
        out.extend(matched)
    if len(anchor_matches) == 1:
        # One anchor: matches are unique and in axis order already; doc
        # order is at most a reversal away.
        if hop_step.axis.is_reverse:
            out.reverse()
        return out
    return doc.sort_nodes(out)

"""Spine step induction — Algorithm 1 (``stepPattern``).

Generates the K-best one-anchor query pieces matching a spine node ``t``
from a context ``n`` along a base axis:

* *direct* patterns: ``axis.transitive::pattern`` always, plus
  ``axis::pattern`` when ``t`` is one plain step away;
* *sideways* patterns (child axis only, as in the paper): an anchor
  pattern for a sibling ``s`` of ``t`` followed by one
  following-/preceding-sibling step reaching ``t`` — the construction
  that makes robust list selection possible (Sec. 6.3);
* positional refinements ``[k]`` / ``[last()-m]`` appended when a
  pattern does not uniquely match ``t`` — the *unrefined* pattern is
  kept too, since over-matching patterns are exactly what multi-target
  induction needs (they are rescored against the real target set by
  Algorithm 2).

Every returned candidate satisfies the algorithm's contract
``{t} ⊆ p(n)`` and carries its match set, so Algorithm 2 can evaluate
concatenations incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dom.node import Document, Node
from repro.induction.config import InductionConfig
from repro.induction.node_pattern import NodePattern, node_patterns
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import KBestTable, QueryInstance, rank_key
from repro.scoring.score import Scorer
from repro.xpath.ast import Axis, PositionalPredicate, Query, Step
from repro.xpath.axes import axis_candidates
from repro.xpath.evaluator import nodetest_matches, predicate_holds


@dataclass(frozen=True)
class StepCandidate:
    """A candidate query piece with its (rescored) instance and matches."""

    instance: QueryInstance
    matches: tuple[Node, ...]

    @property
    def query(self) -> Query:
        return self.instance.query


#: Per-document memo of axis candidate lists: (doc id, node id, axis) ->
#: tuple of nodes.  Axis scans dominate pattern generation; one (node,
#: axis) pair is scanned for every pattern variant without this.
_AXIS_CACHE: dict[tuple[int, int, Axis], tuple[Node, ...]] = {}
_AXIS_CACHE_LIMIT = 200_000


def _cached_axis_candidates(context: Node, axis: Axis, doc: Document) -> tuple[Node, ...]:
    key = (id(doc), id(context), axis)
    cached = _AXIS_CACHE.get(key)
    if cached is None:
        if len(_AXIS_CACHE) > _AXIS_CACHE_LIMIT:
            _AXIS_CACHE.clear()
        cached = tuple(axis_candidates(context, axis, doc))
        _AXIS_CACHE[key] = cached
    return cached


def _axis_matches(
    context: Node, step: Step, doc: Document
) -> list[Node]:
    """Matches of a positional-free step from ``context``, in axis order."""
    matched = []
    for candidate in _cached_axis_candidates(context, step.axis, doc):
        if not nodetest_matches(step.nodetest, candidate, step.axis):
            continue
        if all(predicate_holds(p, candidate, doc) for p in step.predicates):
            matched.append(candidate)
    return matched


def _step_variants(
    context: Node,
    target: Node,
    axis: Axis,
    pattern: NodePattern,
    doc: Document,
    config: InductionConfig,
) -> list[tuple[Step, list[Node]]]:
    """Steps built from one node pattern along one axis, with positional
    refinements; every variant matches ``target`` from ``context``."""
    base = Step(axis, pattern.nodetest, pattern.predicates)
    ordered = _axis_matches(context, base, doc)
    try:
        position = next(i for i, node in enumerate(ordered) if node is target)
    except StopIteration:
        return []  # pattern does not reach the target at all
    variants: list[tuple[Step, list[Node]]] = [(base, ordered)]
    if len(ordered) > 1 and config.enable_positional:
        index_pred = PositionalPredicate(index=position + 1)
        variants.append((base.with_predicates(index_pred), [target]))
        from_last = len(ordered) - 1 - position
        last_pred = PositionalPredicate(from_last=from_last)
        variants.append((base.with_predicates(last_pred), [target]))
    return variants


def _vertical_axes(context: Node, target: Node, axis: Axis) -> list[Axis]:
    """Axis forms for a direct step: the transitive form always, the plain
    base form when one step suffices."""
    axes = [axis.transitive]
    if axis in (Axis.CHILD, Axis.PARENT):
        direct = (
            target.parent is context if axis is Axis.CHILD else context.parent is target
        )
        if direct:
            axes.append(axis)
    return axes


def _nearby_siblings(target: Node, limit: int) -> list[Node]:
    """Up to ``limit`` siblings on each side of ``target``, nearest first."""
    preceding = list(target.preceding_siblings())[:limit]
    following = list(target.following_siblings())[:limit]
    return preceding + following


def step_patterns(
    context: Node,
    target: Node,
    axis: Axis,
    k: int,
    doc: Document,
    config: InductionConfig,
    params: ScoringParams,
    scorer: Scorer,
) -> list[StepCandidate]:
    """Algorithm 1: the best query pieces matching ``target`` from ``context``.

    Returns the union of the top-K by the paper's ranking (F0.5 against
    {t}, then score) and the top-K by score alone.  The second group
    keeps cheap over-matching patterns (``descendant::li``) alive for
    multi-target induction, where Algorithm 2 rescored them against the
    full target set.
    """
    beta = config.beta
    candidates: list[tuple[Query, list[Node]]] = []
    core: list[tuple[Query, list[Node]]] = []  # bare tag/text tests, always kept

    for vertical_axis in _vertical_axes(context, target, axis):
        for pattern in node_patterns(target, doc, config, params):
            is_core = not pattern.predicates and pattern.nodetest.kind in ("name", "text")
            for step, matches in _step_variants(
                context, target, vertical_axis, pattern, doc, config
            ):
                candidates.append((Query((step,)), matches))
                if is_core:
                    core.append(candidates[-1])

    sideways: list[tuple[Query, list[Node]]] = []
    if axis is Axis.CHILD and config.enable_sideways:
        sideways = _sideways_candidates(context, target, doc, config, params)
        candidates.extend(sideways)

    # Pieces are scored WITHOUT the no-predicate penalty: that penalty is a
    # property of the final composed query (Sec. 4 adds it to score(q)),
    # and a bare piece like ``descendant::li`` composes into penalty-free
    # queries such as ``descendant::div[@id="x"]/descendant::li``.  Using
    # the penalized score here would starve multi-target induction of its
    # list patterns.
    piece_params = replace(params, no_predicate_penalty=0.0)
    piece_scorer = Scorer(piece_params)

    ranked = KBestTable(k, beta)
    instances: list[StepCandidate] = []
    for query, matches in candidates:
        tp = 1
        fp = len(matches) - 1
        instance = QueryInstance(
            query, tp=tp, fp=fp, fn=0, score=piece_scorer.score(query)
        )
        instances.append(StepCandidate(instance, tuple(matches)))

    for candidate in instances:
        ranked.insert(candidate.instance)
    by_rank = {inst.query for inst in ranked}
    by_score = sorted(instances, key=lambda c: (c.instance.score, str(c.query)))

    # Sideways candidates get a quota of their own: list selection needs
    # sibling anchors (Sec. 6.3) even when cheap one-step anchors exist.
    sideways_queries = {query for query, _ in sideways}
    sideways_ranked = KBestTable(max(1, config.max_sideways_patterns), beta)
    core_queries = {query for query, _ in core}

    chosen: dict[Query, StepCandidate] = {}
    for candidate in instances:
        if candidate.query in sideways_queries:
            sideways_ranked.insert(candidate.instance)
        keep = candidate.query in by_rank or candidate.query in core_queries
        if keep and candidate.query not in chosen:
            chosen[candidate.query] = candidate
    for candidate in by_score[:k]:
        if candidate.query not in chosen:
            chosen[candidate.query] = candidate
    sideways_kept = {inst.query for inst in sideways_ranked}
    for candidate in instances:
        if candidate.query in sideways_kept and candidate.query not in chosen:
            chosen[candidate.query] = candidate
    return list(chosen.values())


#: Sideways anchors matching more nodes than this are dropped before the
#: cross product: an anchor that matches a large slice of the page is
#: useless for selection and only inflates the candidate space.
_MAX_ANCHOR_MATCHES = 24


def _sideways_candidates(
    context: Node,
    target: Node,
    doc: Document,
    config: InductionConfig,
    params: ScoringParams,
) -> list[tuple[Query, list[Node]]]:
    """Anchor-on-sibling patterns: vertical step to a sibling ``s`` of the
    spine node, then one sibling step to the spine node (Alg. 1, L2–5)."""
    results: list[tuple[Query, list[Node]]] = []
    hop_cache: dict[tuple[int, Step], tuple[Node, ...]] = {}
    for sibling in _nearby_siblings(target, config.max_sideways_each_side):
        if sibling.index_in_parent() < target.index_in_parent():
            sibling_axis = Axis.FOLLOWING_SIBLING
        else:
            sibling_axis = Axis.PRECEDING_SIBLING

        sibling_steps: list[tuple[Step, list[Node]]] = []
        for pattern in node_patterns(sibling, doc, config, params)[
            : config.max_sideways_patterns
        ]:
            for step, matches in _step_variants(
                context, sibling, Axis.DESCENDANT, pattern, doc, config
            ):
                if len(matches) <= _MAX_ANCHOR_MATCHES:
                    sibling_steps.append((step, matches))

        target_steps: list[Step] = []
        for pattern in node_patterns(target, doc, config, params)[
            : config.max_sideways_patterns
        ]:
            target_steps.extend(
                step
                for step, _ in _step_variants(
                    sibling, target, sibling_axis, pattern, doc, config
                )
            )

        for anchor_step, anchor_matches in sibling_steps:
            if not any(node is sibling for node in anchor_matches):
                continue
            for hop_step in target_steps:
                query = Query((anchor_step, hop_step))
                matches = evaluate_two_step(anchor_matches, hop_step, doc, hop_cache)
                if any(node is target for node in matches):
                    results.append((query, matches))
    return results


def evaluate_two_step(
    anchor_matches: list[Node],
    hop_step: Step,
    doc: Document,
    hop_cache: dict[tuple[int, Step], tuple[Node, ...]] | None = None,
) -> list[Node]:
    """Matches of ``hop_step`` applied to every anchor match (doc order).

    ``hop_cache`` memoizes per (anchor node, step): the same hops are
    evaluated for many anchor-pattern variants sharing match sets.
    """
    out: list[Node] = []
    for node in anchor_matches:
        if hop_cache is None:
            out.extend(_axis_matches_with_positional(node, hop_step, doc))
            continue
        key = (id(node), hop_step)
        cached = hop_cache.get(key)
        if cached is None:
            cached = tuple(_axis_matches_with_positional(node, hop_step, doc))
            hop_cache[key] = cached
        out.extend(cached)
    return doc.sort_nodes(out)


def _axis_matches_with_positional(context: Node, step: Step, doc: Document) -> list[Node]:
    """Full single-step evaluation from one context, honoring positional
    predicates (axis-order counting)."""
    positional = [p for p in step.predicates if isinstance(p, PositionalPredicate)]
    plain = tuple(p for p in step.predicates if not isinstance(p, PositionalPredicate))
    matched = _axis_matches(context, Step(step.axis, step.nodetest, plain), doc)
    for predicate in positional:
        size = len(matched)
        position = (
            predicate.index if predicate.index is not None else size - predicate.from_last
        )
        matched = [matched[position - 1]] if 1 <= position <= size else []
    return matched

"""Wrapper ensembles (the paper's future-work item 4).

Sec. 7: "no matter how sophisticated the wrapper language or scoring,
... the robustness of a single wrapper will always be limited.
Therefore, we are investigating techniques for inducing multiple
wrappers that use a variety of independent means for selecting a target
node."

This module selects a small committee of induced queries that rely on
*different features* (different anchor attributes, text labels, or
positional structure) and combines them by majority vote at extraction
time.  A class rename then breaks only the members anchored on that
class; the vote survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dom.node import Document, Node
from repro.induction.induce import InductionResult
from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    PositionalPredicate,
    Query,
    StringPredicate,
    TextSubject,
)
from repro.xpath.compile import evaluate_compiled


def feature_signature(query: Query) -> frozenset[str]:
    """The selection features a query depends on.

    Two queries with disjoint signatures break independently: one names
    the attributes/text constants/positional structure used.
    """
    features: set[str] = set()
    for step in query.steps:
        if step.nodetest.kind == "name":
            features.add(f"tag:{step.nodetest.name}")
        for predicate in step.predicates:
            if isinstance(predicate, PositionalPredicate):
                features.add("positional")
            elif isinstance(predicate, AttributePredicate):
                features.add(f"attr:{predicate.name}")
            elif isinstance(predicate, StringPredicate):
                if isinstance(predicate.subject, TextSubject):
                    features.add(f"text:{predicate.value}")
                else:
                    assert isinstance(predicate.subject, AttrSubject)
                    features.add(f"attr:{predicate.subject.name}={predicate.value}")
    return frozenset(features)


def fragile_signature(query: Query) -> frozenset[str]:
    """The *value-insensitive* fragile features of a query.

    ``feature_signature`` keeps predicate values, so two queries anchored
    on different class names look disjoint — yet a site-wide reskin
    renames every class at once and breaks both.  Here all predicates on
    the same attribute collapse to one key (``attr:class``), all text
    anchors to ``text``, and positional structure to ``positional``:
    the failure *modes*, not the failure values.  Tag names are not
    fragile — tag changes are structural rewrites, not skins.
    """
    features: set[str] = set()
    for step in query.steps:
        for predicate in step.predicates:
            if isinstance(predicate, PositionalPredicate):
                features.add("positional")
            elif isinstance(predicate, AttributePredicate):
                features.add(f"attr:{predicate.name}")
            elif isinstance(predicate, StringPredicate):
                if isinstance(predicate.subject, TextSubject):
                    features.add("text")
                else:
                    assert isinstance(predicate.subject, AttrSubject)
                    features.add(f"attr:{predicate.subject.name}")
    return frozenset(features)


def select_diverse(
    result: InductionResult | Sequence,
    size: int = 3,
    min_f_beta: float = 1.0,
    diversity: Optional[float] = None,
) -> list[Query]:
    """Pick up to ``size`` accurate queries with maximally disjoint features.

    Greedy: walk the ranking, keep a query if it shares as few features
    as possible with the committee so far (prefer fully disjoint ones).

    ``diversity`` (the "Diversified Multiple Trees" idiom) additionally
    penalizes sharing *fragile* feature classes with the committee: each
    slot picks the instance minimizing ``rank + diversity·overlap``,
    where overlap counts shared :func:`fragile_signature` keys.  A
    committee of three different-class anchors scores as three shared
    ``attr:class`` keys — with a meaningful weight (≥ 1) the selection
    trades a few ranks of accuracy for an anchor on a different failure
    mode, so one reskin no longer kills the whole vote.  ``None``
    preserves the accuracy-first behavior exactly.
    """
    instances = list(result)
    if diversity is not None:
        if diversity < 0:
            raise ValueError(f"diversity must be >= 0, got {diversity}")
        eligible = [
            (rank, instance)
            for rank, instance in enumerate(instances)
            if instance.f_beta() >= min_f_beta
        ]
        committee: list[Query] = []
        fragile_used: set[str] = set()
        chosen: set[int] = set()
        while len(committee) < size:
            best_rank = best_key = None
            for rank, instance in eligible:
                if rank in chosen or instance.query in committee:
                    continue
                overlap = len(fragile_signature(instance.query) & fragile_used)
                key = rank + diversity * overlap
                if best_key is None or key < best_key:
                    best_key, best_rank = key, rank
            if best_rank is None:
                break
            chosen.add(best_rank)
            committee.append(instances[best_rank].query)
            fragile_used |= fragile_signature(instances[best_rank].query)
        return committee
    committee: list[Query] = []
    used: set[str] = set()
    # First pass: fully feature-disjoint queries in rank order.
    for instance in instances:
        if len(committee) >= size:
            return committee
        if instance.f_beta() < min_f_beta:
            continue
        signature = feature_signature(instance.query)
        if signature and not (signature & used):
            committee.append(instance.query)
            used |= signature
    # Second pass: fill remaining slots with least-overlapping queries.
    for instance in instances:
        if len(committee) >= size:
            break
        if instance.f_beta() < min_f_beta:
            continue
        if instance.query in committee:
            continue
        committee.append(instance.query)
        used |= feature_signature(instance.query)
    return committee


@dataclass
class EnsembleWrapper:
    """Majority vote over member queries.

    A node is selected if at least ``quorum`` members select it; with
    the default quorum of ⌈n/2⌉ a single broken member cannot flip the
    result.
    """

    members: tuple[Query, ...]
    quorum: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("an ensemble needs at least one member")
        if self.quorum is None:
            self.quorum = len(self.members) // 2 + 1

    @classmethod
    def from_texts(
        cls, texts: Iterable[str], quorum: Optional[int] = None
    ) -> "EnsembleWrapper":
        """Rebuild an ensemble from canonical query texts (artifact loading)."""
        from repro.xpath.parser import parse_query

        return cls(tuple(parse_query(text) for text in texts), quorum=quorum)

    def member_texts(self) -> tuple[str, ...]:
        """Canonical texts of the members (the serializable form)."""
        return tuple(str(member) for member in self.members)

    def member_results(self, doc: Document) -> list[list[Node]]:
        """Each member's result set on ``doc`` (drift detectors compare them)."""
        return [
            doc.sort_nodes(list(evaluate_compiled(member, doc.root, doc)))
            for member in self.members
        ]

    def select(self, doc: Document) -> list[Node]:
        votes: dict[int, int] = {}
        nodes: dict[int, Node] = {}
        for member in self.members:
            for node in evaluate_compiled(member, doc.root, doc):
                key = doc.node_id(node)
                votes[key] = votes.get(key, 0) + 1
                nodes[key] = node
        selected = [nodes[key] for key, count in votes.items() if count >= self.quorum]
        return doc.sort_nodes(selected)

    def __str__(self) -> str:
        return " ⊕ ".join(str(member) for member in self.members)


def build_ensemble(
    result: InductionResult, size: int = 3, diversity: Optional[float] = None
) -> EnsembleWrapper:
    """Select a feature-diverse committee from an induction result."""
    members = select_diverse(result, size=size, diversity=diversity)
    if not members:
        best = result.best
        if best is None:
            raise ValueError("no queries available for an ensemble")
        members = [best.query]
    return EnsembleWrapper(tuple(members))

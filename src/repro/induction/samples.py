"""Query samples: the induction input (Sec. 4).

A query sample is a pair ⟨u, V⟩ of a context node and a non-empty set
of target nodes of one document.  The induction consumes a sequence of
samples, possibly over different documents (multiple page versions or
multiple pages of the same template).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Document, Node


@dataclass
class QuerySample:
    """⟨u, V⟩ over a document; ``context=None`` means the document node."""

    doc: Document
    targets: Sequence[Node]
    context: Optional[Node] = None

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("a query sample needs at least one target node")
        if self.context is None:
            self.context = self.doc.root
        # Dedupe targets while preserving order.
        seen: set[int] = set()
        unique: list[Node] = []
        for node in self.targets:
            if id(node) not in seen:
                seen.add(id(node))
                unique.append(node)
        self.targets = unique
        for node in self.targets:
            if not self.doc.contains(node):
                raise ValueError("target node is not part of the sample document")
        if not self.doc.contains(self.context):
            raise ValueError("context node is not part of the sample document")

    @property
    def target_ids(self) -> frozenset[int]:
        """Stable integer node ids of the targets (see ``Document.node_id``)."""
        return frozenset(self.doc.node_id(node) for node in self.targets)

"""Parallel induction folds (opt-in via ``InductionConfig.fold_workers``).

Multi-sample induction is embarrassingly parallel twice over: Algorithm
3 first induces each sample independently (the *folds*), then re-scores
every surviving candidate on every sample (the aggregation).  Both fan
out here over a persistent ``ProcessPoolExecutor`` — the same
pooled-executor idiom as the serving layer's ``BatchExtractor``, and
like it the pool outlives individual calls so repeated ``induce()`` /
``reinduce()`` traffic (the drift fleet's repair chain, ensemble
member induction) amortizes worker startup.

Documents never cross the process boundary: samples ship as
:class:`~repro.runtime.artifact.StoredSample` (HTML + canonical target
paths) and are re-parsed in the worker, exactly the round-trip
``reinduce()`` already relies on.  Candidates come back as canonical
query text plus their bit-exact float score, so the aggregated result
is identical to the serial path — asserted by the test suite and by
``benchmarks/bench_induction.py``.  Samples that cannot be stored
(ambiguous canonical paths) fall back to the serial path, as does a
pool whose spawn-started workers cannot come up (e.g. a top-level
script without an ``if __name__ == "__main__"`` guard).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Optional, Sequence

from repro.induction.config import InductionConfig
from repro.induction.samples import QuerySample
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import QueryInstance, rank_key
from repro.xpath.ast import Query
from repro.xpath.cache import CachedEvaluator
from repro.xpath.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.induction.induce import InductionResult, InductionStats


# -- worker side (module-level: must be picklable by reference) ------------


def _induce_fold(stored, config: InductionConfig, params: ScoringParams):
    """Induce one restored sample; rows are (query text, score)."""
    from repro.induction.induce import InductionStats, _induce_sample

    sample = stored.restore()
    stats = InductionStats(search=config.search)
    instances = _induce_sample(sample, config, params, stats)
    rows = [
        (str(instance.query), instance.score)
        for instance in instances
        if not instance.query.is_empty
    ]
    return rows, stats.candidates_considered, stats.candidates_pruned


def _aggregate_fold(stored, texts: tuple[str, ...]):
    """(tp, fp, fn) of every candidate query on one restored sample."""
    sample = stored.restore()
    evaluator = CachedEvaluator(sample.doc)
    target_ids = sample.target_ids
    n_targets = len(sample.targets)
    counts = []
    for text in texts:
        match_ids = evaluator.evaluate_ids(parse_query(text), sample.context)
        tp = len(match_ids & target_ids)
        counts.append((tp, len(match_ids) - tp, n_targets - tp))
    return counts


# -- pool management -------------------------------------------------------

_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_induction_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process pool for ``workers``-wide fold fan-out.

    ``workers`` is clamped to the machine's CPU count, which both caps
    pool width and bounds how many distinct pools can ever accumulate
    here.  Workers use the ``spawn`` start context: the serving layer
    calls into this from a multithreaded asyncio process, where forked
    children inherit copied lock state and can deadlock.
    """
    workers = max(1, min(workers, os.cpu_count() or 1))
    with _POOLS_LOCK:
        pool = _SHARED_POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _SHARED_POOLS[workers] = pool
        return pool


def close_shared_pools() -> None:
    """Shut down every shared pool (tests / interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a broken pool from the registry so the next request builds
    a fresh one instead of reusing a dead executor."""
    with _POOLS_LOCK:
        for key, value in list(_SHARED_POOLS.items()):
            if value is pool:
                del _SHARED_POOLS[key]
    pool.shutdown(wait=False, cancel_futures=True)


atexit.register(close_shared_pools)


# -- parent side -----------------------------------------------------------


def induce_pooled(
    samples: Sequence[QuerySample],
    config: InductionConfig,
    params: ScoringParams,
    stats: "InductionStats",
) -> Optional["InductionResult"]:
    """Pooled Algorithm 3; None = not poolable, caller runs serial.

    Matches the serial path exactly: per-fold candidate lists arrive in
    fold order with KBest ranking intact, dedup keeps the first-seen
    score per query (``dict.setdefault``, like ``_aggregate``), and the
    per-sample accuracy counts are summed in sample order before the
    final ``rank_key`` sort.
    """
    from repro.induction.induce import InductionResult
    from repro.runtime.artifact import ArtifactError, StoredSample

    try:
        stored = [
            StoredSample.from_sample(s, volatile_meta_key=config.volatile_meta_key)
            for s in samples
        ]
    except ArtifactError:
        return None

    pool = shared_induction_pool(config.fold_workers)
    considered_before = stats.candidates_considered
    pruned_before = stats.candidates_pruned
    try:
        fold_results = list(
            pool.map(
                _induce_fold, stored, [config] * len(stored), [params] * len(stored)
            )
        )

        candidates: dict[Query, float] = {}
        order: list[tuple[str, Query]] = []
        for rows, considered, pruned in fold_results:
            stats.candidates_considered += considered
            stats.candidates_pruned += pruned
            for text, score in rows:
                query = parse_query(text)
                if query not in candidates:
                    candidates[query] = score
                    order.append((text, query))

        texts = tuple(text for text, _ in order)
        count_results = list(
            pool.map(_aggregate_fold, stored, [texts] * len(stored))
        )
    except BrokenProcessPool:
        # Spawn workers re-import __main__; a guard-less top-level
        # script kills them during bootstrap.  Drop the dead executor
        # and run serial — same output, one process.
        _discard_pool(pool)
        stats.candidates_considered = considered_before
        stats.candidates_pruned = pruned_before
        return None

    aggregated: list[QueryInstance] = []
    for i, (text, query) in enumerate(order):
        tp = fp = fn = 0
        for counts in count_results:
            tp += counts[i][0]
            fp += counts[i][1]
            fn += counts[i][2]
        aggregated.append(
            QueryInstance(query, tp=tp, fp=fp, fn=fn, score=candidates[query])
        )
    aggregated.sort(key=lambda instance: rank_key(instance, config.beta))

    stats.pooled = True
    return InductionResult(aggregated, beta=config.beta, stats=stats)

"""Wrapper induction (Secs. 4–5): the paper's primary contribution.

Entry point: :class:`repro.induction.induce.WrapperInducer` (also
re-exported at the package root).  Internals follow the paper's
structure:

* :mod:`repro.induction.node_pattern` — candidate node tests + predicates
* :mod:`repro.induction.step_pattern` — Algorithm 1 (spine step induction
  with sideways checks)
* :mod:`repro.induction.induce_path` — Algorithm 2 (axis path induction,
  a K-best dynamic program along the spine)
* :mod:`repro.induction.induce` — Algorithm 3 (two-directional paths via
  the LCA and multi-sample aggregation)
"""

from repro.induction.config import InductionConfig
from repro.induction.ensemble import (
    EnsembleWrapper,
    build_ensemble,
    fragile_signature,
    select_diverse,
)
from repro.induction.induce import (
    InductionResult,
    InductionStats,
    WrapperInducer,
    induce,
)
from repro.induction.relative import (
    RecordExample,
    RecordWrapper,
    RelativeWrapperInducer,
)
from repro.induction.samples import QuerySample

__all__ = [
    "EnsembleWrapper",
    "InductionConfig",
    "InductionResult",
    "InductionStats",
    "QuerySample",
    "RecordExample",
    "RecordWrapper",
    "RelativeWrapperInducer",
    "WrapperInducer",
    "build_ensemble",
    "fragile_signature",
    "induce",
    "select_diverse",
]

"""Experiment harnesses reproducing every table and figure of Sec. 6.

Each module is a thin, deterministic driver over the library; the
``benchmarks/`` directory calls these and prints paper-style rows, so
the same code paths are unit-tested and benchmarked.

Experiment index (see DESIGN.md for the full mapping):

* :mod:`robustness_study` — Figs. 3 & 4, Tables 1 & 2, break groups
* :mod:`characteristics` — Figs. 5 & 6
* :mod:`noise_study` — Fig. 7 and the Sec. 6.4 NER experiment
* :mod:`sota` — Sec. 6.1 comparisons ([6] and WEIR [2])
* :mod:`change_rate` — Sec. 6.2 c-change statistics
* :mod:`runtime` — induction running-time distribution
"""

from repro.experiments.robustness_study import (
    StudyResult,
    SurvivalRecord,
    TaskOutcome,
    run_study,
    run_task,
)

__all__ = [
    "StudyResult",
    "SurvivalRecord",
    "TaskOutcome",
    "run_study",
    "run_task",
]

"""Plain-text table/series rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 4
) -> str:
    """Render an (x, y) series as one row per point."""
    lines = [f"# {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>10.2f}  {y:.{precision}f}")
    return "\n".join(lines)


def banner(title: str) -> str:
    bar = "=" * max(8, len(title))
    return f"{bar}\n{title}\n{bar}"

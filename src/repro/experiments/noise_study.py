"""Noise resistance (Sec. 6.4 — Figure 7 and the real-life NER study).

Synthetic noise: for each sample we induce once from the clean targets
and once from noised targets; noise resistance at an intensity is the
fraction of samples whose *top-ranked expression is identical* with and
without noise (the paper's "most aggressive" criterion).  A secondary
statistic counts noisy results appearing within the clean top-50.

Real-life noise: the simulated NER annotates product-listing pages; the
study reports how often the top-ranked expression recovers exactly the
intended entity list despite the annotation errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Document, Node
from repro.induction import InductionConfig, WrapperInducer
from repro.metrics.robustness import same_result_set
from repro.noise.ner import NERProfile, SimulatedNER
from repro.noise.synthetic import apply_noise
from repro.sites.corpus import CorpusTask, multi_node_tasks
from repro.sites.listings import listing_pages
from repro.util import seeded_rng
from repro.xpath.evaluator import evaluate


@dataclass
class NoiseSample:
    """One clean sample plus its baseline induction."""

    sample_id: str
    doc: Document
    targets: list[Node]
    baseline_query: object  # Query
    baseline_top: list[object]


@dataclass
class NoisePoint:
    noise_type: str
    intensity: float
    identical: int
    within_top50: int
    total: int

    @property
    def identical_rate(self) -> float:
        return self.identical / self.total if self.total else 0.0

    @property
    def top50_rate(self) -> float:
        return self.within_top50 / self.total if self.total else 0.0


def build_noise_samples(
    tasks: Optional[Sequence[CorpusTask]] = None,
    limit: int = 24,
    inducer: Optional[WrapperInducer] = None,
    min_targets: int = 2,
    top_n: int = 50,
) -> list[NoiseSample]:
    """Clean samples with their baseline inductions (reused across points)."""
    from repro.evolution.archive import SyntheticArchive

    tasks = list(tasks) if tasks is not None else multi_node_tasks()
    inducer = inducer or WrapperInducer(k=10)
    samples: list[NoiseSample] = []
    for corpus_task in tasks:
        if len(samples) >= limit:
            break
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        if len(targets) < min_targets:
            continue
        result = inducer.induce_one(doc, targets)
        if result.best is None:
            continue
        samples.append(
            NoiseSample(
                sample_id=corpus_task.task_id,
                doc=doc,
                targets=targets,
                baseline_query=result.best.query,
                baseline_top=[i.query for i in result.top(top_n)],
            )
        )
    return samples


def noise_resistance_curve(
    samples: Sequence[NoiseSample],
    noise_type: str,
    intensities: Sequence[float],
    inducer: Optional[WrapperInducer] = None,
    repetitions: int = 1,
    seed: int = 0,
) -> list[NoisePoint]:
    """One Fig. 7 curve: identical-result rate per intensity."""
    inducer = inducer or WrapperInducer(k=10)
    points = []
    for intensity in intensities:
        identical = within = total = 0
        for sample in samples:
            for repetition in range(repetitions):
                rng = seeded_rng("noise", noise_type, intensity, sample.sample_id, repetition, seed)
                noisy = apply_noise(noise_type, sample.doc, sample.targets, intensity, rng)
                if not noisy:
                    continue
                result = inducer.induce_one(sample.doc, noisy)
                total += 1
                if result.best is None:
                    continue
                if result.best.query == sample.baseline_query:
                    identical += 1
                    within += 1
                elif any(result.best.query == q for q in sample.baseline_top):
                    within += 1
        points.append(
            NoisePoint(
                noise_type=noise_type,
                intensity=intensity,
                identical=identical,
                within_top50=within,
                total=total,
            )
        )
    return points


@dataclass
class NERPageResult:
    page_id: str
    entity_type: str
    list_size: int
    negative_noise: float
    positive_noise: float
    exact: bool
    selected: int


@dataclass
class NERStudyResult:
    pages: list[NERPageResult]

    @property
    def success_rate(self) -> float:
        if not self.pages:
            return 0.0
        return sum(p.exact for p in self.pages) / len(self.pages)

    @property
    def avg_negative_noise(self) -> float:
        return sum(p.negative_noise for p in self.pages) / len(self.pages)

    @property
    def avg_positive_noise(self) -> float:
        return sum(p.positive_noise for p in self.pages) / len(self.pages)


def run_ner_study(
    n_pages: int = 10,
    profile: Optional[NERProfile] = None,
    inducer: Optional[WrapperInducer] = None,
    seed: int = 0,
    sizes: Optional[tuple[int, ...]] = None,
) -> NERStudyResult:
    """The Sec. 6.4 real-life-noise experiment on listing pages."""
    from repro.sites.listings import DEFAULT_LIST_SIZES

    inducer = inducer or WrapperInducer(k=10)
    ner = SimulatedNER(profile)
    results = []
    pages = listing_pages(
        n_pages=n_pages, seed=seed, sizes=sizes or DEFAULT_LIST_SIZES
    )
    for spec, doc in pages:
        rng = seeded_rng("ner", spec.page_id, seed)
        annotation = ner.annotate(doc, spec.entity_type, rng)
        induced = inducer.induce_one(doc, annotation.nodes)
        exact = False
        selected = 0
        if induced.best is not None:
            result_nodes = evaluate(induced.best.query, doc.root, doc)
            selected = len(result_nodes)
            exact = same_result_set(result_nodes, annotation.true_targets)
        results.append(
            NERPageResult(
                page_id=spec.page_id,
                entity_type=spec.entity_type,
                list_size=spec.list_size,
                negative_noise=annotation.negative_noise,
                positive_noise=annotation.positive_noise,
                exact=exact,
                selected=selected,
            )
        )
    return NERStudyResult(pages=results)

"""The archive robustness study (Sec. 6.2 — Figures 3/4, Tables 1/2).

For each task: induce on snapshot 0, then replay the archive at 20-day
intervals and record when each wrapper breaks.  Wrappers compared:

* ``generated`` — our top-ranked induced dsXPath expression
  (optionally also lower ranks, for the Table 1/2 showcases);
* ``manual`` — the expert-written wrapper of the task spec;
* ``canonical`` — the absolute canonical-path baseline.

Break accounting follows the paper:

* ``mismatch`` — the wrapper no longer selects exactly the (logically
  same) targets;
* ``target_removed`` — the data left the page: no wrapper can survive,
  counted as surviving the maximally possible range (group f);
* ``archive_broken`` — an erroneous, structurally broken capture
  (group e);
* ``full_period`` — still correct at the last snapshot (group a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.baselines.canonical import CanonicalInducer, UnionWrapper
from repro.evolution.archive import SyntheticArchive
from repro.induction import InductionConfig, WrapperInducer
from repro.metrics.robustness import same_result_set
from repro.sites.corpus import CorpusTask
from repro.xpath.canonical import c_changes, canonical_key
from repro.xpath.parser import parse_query


@dataclass
class SurvivalRecord:
    """How long one wrapper stayed correct on one task."""

    task_id: str
    kind: str
    wrapper: str
    valid_days: int
    break_snapshot: Optional[int]
    break_reason: str
    c_changes: int

    @property
    def survived_full(self) -> bool:
        return self.break_reason in ("full_period", "target_removed")


@dataclass
class TaskOutcome:
    task_id: str
    vertical: str
    n_targets: int
    records: dict[str, SurvivalRecord]
    group: str = ""

    def record(self, kind: str) -> SurvivalRecord:
        return self.records[kind]


@dataclass
class StudyResult:
    outcomes: list[TaskOutcome]
    interval_days: int = 20
    n_snapshots: int = 110

    @property
    def max_days(self) -> int:
        return (self.n_snapshots - 1) * self.interval_days

    def records(self, kind: str) -> list[SurvivalRecord]:
        return [o.records[kind] for o in self.outcomes if kind in o.records]

    def valid_days(self, kind: str) -> list[int]:
        return [r.valid_days for r in self.records(kind)]

    def density(self, kind: str, bins: int = 11) -> tuple[np.ndarray, np.ndarray]:
        """(bin centers, density) of survival days — the Fig. 3/4 curves."""
        days = np.asarray(self.valid_days(kind), dtype=float)
        edges = np.linspace(0, self.max_days, bins + 1)
        histogram, _ = np.histogram(days, bins=edges, density=True)
        centers = (edges[:-1] + edges[1:]) / 2
        return centers, histogram

    def group_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.group] = counts.get(outcome.group, 0) + 1
        return counts

    def summary(self, kind: str) -> dict[str, float]:
        days = self.valid_days(kind)
        if not days:
            return {}
        arr = np.asarray(days, dtype=float)
        return {
            "n": len(days),
            "mean_days": float(arr.mean()),
            "median_days": float(np.median(arr)),
            "under_100": int((arr < 100).sum()),
            "between_100_400": int(((arr >= 100) & (arr <= 400)).sum()),
            "over_400": int((arr > 400).sum()),
            "full_period": sum(r.survived_full for r in self.records(kind)),
        }


def _wrapper_from_query(query) -> UnionWrapper:
    return UnionWrapper((query,))


def run_task(
    corpus_task: CorpusTask,
    n_snapshots: int = 110,
    inducer: Optional[WrapperInducer] = None,
    extra_ranks: Sequence[int] = (),
) -> TaskOutcome:
    """Run one task: induce on snapshot 0, replay the archive."""
    spec, task = corpus_task.spec, corpus_task.task
    archive = SyntheticArchive(spec, n_snapshots=n_snapshots)
    interval = archive.interval_days
    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, task.role)
    if not targets0:
        raise ValueError(f"task {task.task_id} has no targets at snapshot 0")

    inducer = inducer or WrapperInducer(k=10)
    result = inducer.induce_one(doc0, targets0)
    if result.best is None:
        raise ValueError(f"induction produced no wrapper for {task.task_id}")

    wrappers: dict[str, UnionWrapper] = {
        "generated": _wrapper_from_query(result.best.query),
        "manual": UnionWrapper((parse_query(task.human_wrapper),)),
        "canonical": CanonicalInducer().induce(doc0, targets0),
    }
    for rank in extra_ranks:
        if rank - 1 < len(result.instances):
            wrappers[f"generated_rank{rank}"] = _wrapper_from_query(
                result.instances[rank - 1].query
            )

    alive = dict.fromkeys(wrappers)  # kind -> None while alive
    break_info: dict[str, tuple[int, str]] = {}
    keys = []  # canonical fingerprints of the ground truth, per snapshot

    last_index = 0
    for index in range(1, n_snapshots):
        last_index = index
        if archive.is_broken(index):
            for kind in list(alive):
                break_info[kind] = (index, "archive_broken")
            alive.clear()
            keys.append(None)
            break
        doc = archive.snapshot(index)
        truth = archive.targets(doc, task.role)
        if not truth:
            for kind in list(alive):
                break_info[kind] = (index, "target_removed")
            alive.clear()
            break
        keys.append(canonical_key(truth))
        for kind in list(alive):
            if not same_result_set(wrappers[kind].select(doc), truth):
                break_info[kind] = (index, "mismatch")
                del alive[kind]
        if not alive:
            break

    records: dict[str, SurvivalRecord] = {}
    for kind, wrapper in wrappers.items():
        if kind in break_info:
            snapshot, reason = break_info[kind]
            valid_days = (snapshot - 1) * interval
            changes = c_changes(keys[: snapshot - 1])
        else:
            snapshot, reason = None, "full_period"
            valid_days = (n_snapshots - 1) * interval
            changes = c_changes(keys)
        records[kind] = SurvivalRecord(
            task_id=task.task_id,
            kind=kind,
            wrapper=str(wrapper),
            valid_days=valid_days,
            break_snapshot=snapshot,
            break_reason=reason,
            c_changes=changes,
        )

    outcome = TaskOutcome(
        task_id=task.task_id,
        vertical=spec.vertical,
        n_targets=len(targets0),
        records=records,
    )
    outcome.group = _classify_group(records)
    return outcome


def _classify_group(records: dict[str, SurvivalRecord]) -> str:
    """The paper's break groups (a)–(f)."""
    generated = records["generated"]
    manual = records["manual"]
    if generated.break_reason == "archive_broken" or manual.break_reason == "archive_broken":
        return "e"
    if generated.break_reason == "target_removed" and manual.break_reason == "target_removed":
        return "f"
    if generated.break_reason == "full_period" and manual.break_reason == "full_period":
        return "a"
    if generated.break_snapshot is not None and generated.break_snapshot == manual.break_snapshot:
        return "b"
    if generated.valid_days > manual.valid_days:
        return "c"
    if generated.valid_days < manual.valid_days:
        return "d"
    return "b"


def run_study(
    tasks: Sequence[CorpusTask],
    n_snapshots: int = 110,
    inducer: Optional[WrapperInducer] = None,
    extra_ranks: Sequence[int] = (),
) -> StudyResult:
    """Run the robustness study over a task set."""
    outcomes = [
        run_task(task, n_snapshots=n_snapshots, inducer=inducer, extra_ranks=extra_ranks)
        for task in tasks
    ]
    return StudyResult(outcomes=outcomes, n_snapshots=n_snapshots)

"""Induction running time (Sec. 6 intro).

The paper reports a median of 1.4 s for single-node induction, with a
range from milliseconds to seconds.  This harness times the inducer on
corpus tasks and reports the distribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.evolution.archive import SyntheticArchive
from repro.induction import WrapperInducer
from repro.sites.corpus import CorpusTask, single_node_tasks


@dataclass
class RuntimeStats:
    n: int
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    per_task: list[tuple[str, float]]


def measure_induction_runtime(
    tasks: Optional[Sequence[CorpusTask]] = None,
    limit: int = 20,
    inducer: Optional[WrapperInducer] = None,
) -> RuntimeStats:
    tasks = list(tasks) if tasks is not None else single_node_tasks(limit=limit)
    tasks = tasks[:limit]
    inducer = inducer or WrapperInducer(k=10)
    timings: list[tuple[str, float]] = []
    for corpus_task in tasks:
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        if not targets:
            continue
        started = time.perf_counter()
        inducer.induce_one(doc, targets)
        timings.append((corpus_task.task_id, time.perf_counter() - started))
    values = np.asarray([t for _, t in timings]) if timings else np.asarray([0.0])
    return RuntimeStats(
        n=len(timings),
        median_s=float(np.median(values)),
        mean_s=float(values.mean()),
        min_s=float(values.min()),
        max_s=float(values.max()),
        per_task=timings,
    )

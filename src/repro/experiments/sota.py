"""State-of-the-art comparisons (Sec. 6.1).

Two experiments:

* **vs. Dalvi et al. [6]** — IMDB-like director pages, 15 snapshots at
  2-month intervals, three overlapping periods; the *success ratio* is
  the fraction of consecutive snapshot pairs (t, t+1) where a wrapper
  induced at t still works at t+1.  The paper reports 100/86/86 % for
  its system vs. the 86 % [6] report.
* **vs. WEIR [2]** — same-template hotel pages; WEIR gets 10 pages, our
  system a single page, and every induced expression is replayed over a
  4-year archive window.  Reported: average survival fraction of our
  top-10 vs. WEIR's (≈30, unranked) expressions, the most robust
  expression per system, and our top-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.treeedit import TreeEditInducer, TreeEditModel
from repro.baselines.weir import WeirInducer
from repro.evolution.archive import SyntheticArchive
from repro.evolution.changes import initial_state
from repro.evolution.state import RenderContext
from repro.induction import WrapperInducer
from repro.metrics.robustness import same_result_set
from repro.sites import datagen
from repro.sites.spec import SiteSpec
from repro.sites.verticals import make_movies_site, make_travel_site
from repro.util import seeded_rng
from repro.xpath.ast import Query
from repro.xpath.evaluator import evaluate

# ---------------------------------------------------------------------------
# Dalvi et al. [6] — success-ratio experiment
# ---------------------------------------------------------------------------


@dataclass
class SuccessRatioResult:
    period: str
    ours: float
    treeedit: float
    transitions: int


def _works_at(query: Query, archive: SyntheticArchive, index: int, role: str) -> bool:
    if archive.is_broken(index):
        return False
    doc = archive.snapshot(index)
    truth = archive.targets(doc, role)
    if not truth:
        return False
    return same_result_set(evaluate(query, doc.root, doc), truth)


def dalvi_comparison(
    n_snapshots: int = 15,
    snapshot_stride: int = 3,
    periods: Sequence[int] = (0, 12, 24),
    inducer: Optional[WrapperInducer] = None,
    variant: int = 0,
) -> list[SuccessRatioResult]:
    """Success ratios over three periods of 15 two-month snapshots.

    ``snapshot_stride`` converts the archive's 20-day cadence into the
    experiment's 2-month one (3 × 20 days ≈ 2 months).
    """
    spec = make_movies_site(variant)
    role = "director"
    total_needed = max(periods) + n_snapshots * snapshot_stride + snapshot_stride
    archive = SyntheticArchive(spec, n_snapshots=total_needed)
    inducer = inducer or WrapperInducer(k=10)
    treeedit = TreeEditInducer(model=TreeEditModel())

    results = []
    for start in periods:
        indices = [start + i * snapshot_stride for i in range(n_snapshots)]
        ours_hits = te_hits = transitions = 0
        for current, following in zip(indices, indices[1:]):
            if archive.is_broken(current):
                continue
            doc = archive.snapshot(current)
            truth = archive.targets(doc, role)
            if not truth:
                break
            transitions += 1
            result = inducer.induce_one(doc, truth)
            if result.best is not None and _works_at(
                result.best.query, archive, following, role
            ):
                ours_hits += 1
            te_queries = treeedit.induce(doc, truth[0])
            if te_queries and _works_at(te_queries[0], archive, following, role):
                te_hits += 1
        if transitions:
            results.append(
                SuccessRatioResult(
                    period=f"start+{start * archive.interval_days}d",
                    ours=ours_hits / transitions,
                    treeedit=te_hits / transitions,
                    transitions=transitions,
                )
            )
    return results


# ---------------------------------------------------------------------------
# WEIR [2] — survival comparison
# ---------------------------------------------------------------------------


def render_template_variant(spec: SiteSpec, variant: int):
    """A same-template page with different data (a different hotel)."""
    state = initial_state(spec.profile, spec.initial_rng()).clone()
    rng = seeded_rng(spec.site_id, "page-variant", variant)
    for key, kind in spec.profile.texts.items():
        state.texts[key] = datagen.generate(kind, rng)
    doc = spec.build(RenderContext(state, rng))
    doc.url = f"{spec.url}?page={variant}"
    return doc


def _survival_fraction(
    query: Query, archive: SyntheticArchive, role: str, n_snapshots: int
) -> float:
    """Fraction of the window before the expression first breaks."""
    for index in range(1, n_snapshots):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, role)
        if not truth:
            return index / (n_snapshots - 1)
        if not same_result_set(evaluate(query, doc.root, doc), truth):
            return (index - 1) / (n_snapshots - 1)
    return 1.0


@dataclass
class WeirComparisonResult:
    ours_top10_avg: float
    weir_avg: float
    ours_best: float
    weir_best: float
    ours_top1: float
    ours_fully_robust: float
    weir_fully_robust: float
    n_runs: int
    weir_expressions_avg: float


def weir_comparison(
    n_pages: int = 10,
    n_runs: int = 5,
    n_snapshots: int = 74,  # ≈ 4 years at 20-day cadence (2012–2016)
    inducer: Optional[WrapperInducer] = None,
) -> WeirComparisonResult:
    """The WEIR comparison on same-template hotel pages."""
    inducer = inducer or WrapperInducer(k=10)
    roles = ["hotel", "price"]
    ours_top10, weir_avgs, ours_best, weir_best, ours_top1 = [], [], [], [], []
    ours_full, weir_full, weir_counts = [], [], []

    for run in range(n_runs):
        spec = make_travel_site(run % 4)
        role = roles[run % len(roles)]
        archive = SyntheticArchive(spec, n_snapshots=n_snapshots)
        doc0 = archive.snapshot(0)
        target = archive.targets(doc0, role)
        if not target:
            continue
        pages = [doc0] + [render_template_variant(spec, j) for j in range(1, n_pages)]
        page_targets = [archive.targets(page, role) for page in pages]
        if any(len(t) != 1 for t in page_targets):
            continue

        weir = WeirInducer(seed=run)
        weir_queries = weir.induce(pages, [t[0] for t in page_targets])
        weir_counts.append(len(weir_queries))
        weir_survivals = [
            _survival_fraction(q, archive, role, n_snapshots) for q in weir_queries[:10]
        ]

        ours = inducer.induce_one(doc0, target)
        ours_queries = [i.query for i in ours.top(10)]
        ours_survivals = [
            _survival_fraction(q, archive, role, n_snapshots) for q in ours_queries
        ]

        if ours_survivals:
            ours_top10.append(sum(ours_survivals) / len(ours_survivals))
            ours_best.append(max(ours_survivals))
            ours_top1.append(ours_survivals[0])
            ours_full.append(max(ours_survivals) >= 1.0)
        if weir_survivals:
            weir_avgs.append(sum(weir_survivals) / len(weir_survivals))
            weir_best.append(max(weir_survivals))
            weir_full.append(max(weir_survivals) >= 1.0)

    def _avg(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return WeirComparisonResult(
        ours_top10_avg=_avg(ours_top10),
        weir_avg=_avg(weir_avgs),
        ours_best=_avg(ours_best),
        weir_best=_avg(weir_best),
        ours_top1=_avg(ours_top1),
        ours_fully_robust=_avg([float(v) for v in ours_full]),
        weir_fully_robust=_avg([float(v) for v in weir_full]),
        n_runs=len(ours_top10),
        weir_expressions_avg=_avg([float(c) for c in weir_counts]),
    )

"""Expression characteristics (Sec. 6.3 — Figures 5 and 6).

Given a set of induced queries, tabulate step counts, node tests per
step position, and predicate kinds per step position — the bar charts
of Figs. 5/6 ("26 of the 72 steps check for div elements…").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    Axis,
    PositionalPredicate,
    Query,
    StringPredicate,
    TextSubject,
)


@dataclass
class Characteristics:
    """Aggregated expression characteristics."""

    n_queries: int = 0
    step_count_distribution: Counter = field(default_factory=Counter)
    axis_usage: Counter = field(default_factory=Counter)
    #: (step position, node test label) -> count
    nodetests_by_step: Counter = field(default_factory=Counter)
    #: (step position, predicate label) -> count
    predicates_by_step: Counter = field(default_factory=Counter)
    steps_with_one_predicate: int = 0
    steps_with_two_predicates: int = 0
    total_steps: int = 0
    total_predicates: int = 0

    def nodetest_totals(self) -> Counter:
        totals: Counter = Counter()
        for (_, label), count in self.nodetests_by_step.items():
            totals[label] += count
        return totals

    def predicate_totals(self) -> Counter:
        totals: Counter = Counter()
        for (_, label), count in self.predicates_by_step.items():
            totals[label] += count
        return totals


def _nodetest_label(query: Query, step_index: int) -> str:
    nodetest = query.steps[step_index].nodetest
    if nodetest.kind == "name":
        return nodetest.name
    return {"any": "*", "node": "node()", "text": "text()"}[nodetest.kind]


def _predicate_label(predicate) -> str:
    if isinstance(predicate, PositionalPredicate):
        return "positional"
    if isinstance(predicate, AttributePredicate):
        return predicate.name
    if isinstance(predicate, StringPredicate):
        if isinstance(predicate.subject, TextSubject):
            return "text"
        assert isinstance(predicate.subject, AttrSubject)
        return predicate.subject.name
    return "other"


def analyze_queries(queries: Iterable[Query]) -> Characteristics:
    """Tabulate the Figs. 5/6 characteristics for a query collection."""
    stats = Characteristics()
    for query in queries:
        stats.n_queries += 1
        stats.step_count_distribution[len(query.steps)] += 1
        for index, step in enumerate(query.steps):
            stats.total_steps += 1
            stats.axis_usage[step.axis.value] += 1
            stats.nodetests_by_step[(index + 1, _nodetest_label(query, index))] += 1
            non_positional_then_positional = len(step.predicates)
            if non_positional_then_positional == 1:
                stats.steps_with_one_predicate += 1
            elif non_positional_then_positional >= 2:
                stats.steps_with_two_predicates += 1
            for predicate in step.predicates:
                stats.total_predicates += 1
                stats.predicates_by_step[(index + 1, _predicate_label(predicate))] += 1
    return stats


def top_labels(counter: Counter, limit: int = 10) -> list[tuple[str, int]]:
    """Most common labels, with the tail folded into ``other``."""
    common = counter.most_common(limit)
    shown = {label for label, _ in common}
    other = sum(count for label, count in counter.items() if label not in shown)
    rows = list(common)
    if other:
        rows.append(("other", other))
    return rows

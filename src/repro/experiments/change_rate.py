"""Change-rate statistics (Sec. 6.2).

The paper measures how many c-changes (changes of the targets' canonical
paths) a wrapper absorbs during its valid period: avg 4.1 for both
datasets, max 25 (single) / 19 (multi), and "16 wrappers survive exactly
1 c-change" being the largest single-target group.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.experiments.robustness_study import StudyResult


@dataclass
class ChangeRateStats:
    n: int
    average: float
    maximum: int
    surviving_more_than_5: int
    surviving_exactly_1: int
    distribution: Counter

    @classmethod
    def from_study(cls, study: StudyResult, kind: str = "generated") -> "ChangeRateStats":
        changes = [record.c_changes for record in study.records(kind)]
        counter = Counter(changes)
        arr = np.asarray(changes) if changes else np.asarray([0])
        return cls(
            n=len(changes),
            average=float(arr.mean()),
            maximum=int(arr.max()),
            surviving_more_than_5=int((arr > 5).sum()),
            surviving_exactly_1=counter.get(1, 0),
            distribution=counter,
        )

"""Complexity results: the NP-hardness reduction behind Theorem 1."""

from repro.theory.setcover import (
    SetCoverInstance,
    encode_as_document,
    min_accurate_predicate_count,
    min_cover_size,
)

__all__ = [
    "SetCoverInstance",
    "encode_as_document",
    "min_accurate_predicate_count",
    "min_cover_size",
]

"""The Minimum-Set-Cover correspondence behind Theorem 1.

Theorem 1 states that the query induction problem is NP-hard, "proved
by a reduction to Minimum Set Cover", already for single-target samples,
child-axis-only expressions, and a plus-compositional scoring with all
scores 1.  This module makes the reduction concrete and executable:

Given a set-cover instance (U, F):

* the document has one *target* ``item`` node carrying a marker
  attribute ``s<j>`` for every set Sⱼ ∈ F, and
* one *decoy* ``item`` node per universe element e, carrying ``s<j>``
  exactly for the sets that do **not** contain e.

A query ``descendant::item[@s_a][@s_b]…`` selects exactly the target
iff the chosen sets {S_a, S_b, …} cover U: decoy(e) survives predicate
``[@s_j]`` iff e ∉ Sⱼ, so excluding every decoy requires covering every
element.  With unit predicate scores, the cheapest accurate query has
exactly ``min-cover`` predicates — finding the best-ranked query is as
hard as set cover.  :func:`min_accurate_predicate_count` brute-forces
the query side so tests can verify the correspondence on small
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

from repro.dom.builder import E, document
from repro.dom.node import Document, ElementNode
from repro.xpath.ast import (
    AttributePredicate,
    Axis,
    Query,
    Step,
    name_test,
)
from repro.xpath.evaluator import evaluate


@dataclass(frozen=True)
class SetCoverInstance:
    """A universe (ints) and a family of subsets."""

    universe: frozenset[int]
    sets: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        covered = frozenset().union(*self.sets) if self.sets else frozenset()
        if not self.universe <= covered:
            raise ValueError("the family does not cover the universe")

    @classmethod
    def of(cls, universe: Sequence[int], sets: Sequence[Sequence[int]]) -> "SetCoverInstance":
        return cls(frozenset(universe), tuple(frozenset(s) for s in sets))


def encode_as_document(instance: SetCoverInstance) -> tuple[Document, ElementNode]:
    """Build the reduction document; returns (document, target node)."""
    target = E("item", "target", **{f"s{j}": "1" for j in range(len(instance.sets))})
    decoys = []
    for element in sorted(instance.universe):
        attrs = {
            f"s{j}": "1"
            for j, s in enumerate(instance.sets)
            if element not in s
        }
        decoys.append(E("item", f"decoy-{element}", **attrs))
    root = E("html", E("body", target, *decoys))
    return document(root), target


def _cover_query(set_indices: Sequence[int]) -> Query:
    predicates = tuple(AttributePredicate(f"s{j}") for j in set_indices)
    return Query((Step(Axis.DESCENDANT, name_test("item"), predicates),))


def query_is_accurate(
    doc: Document, target: ElementNode, set_indices: Sequence[int]
) -> bool:
    """Does the query for the chosen sets select exactly the target?"""
    result = evaluate(_cover_query(set_indices), doc.root, doc)
    return len(result) == 1 and result[0] is target


def min_cover_size(instance: SetCoverInstance) -> Optional[int]:
    """Brute-force minimum set cover size (small instances only)."""
    indices = range(len(instance.sets))
    for size in range(0, len(instance.sets) + 1):
        for chosen in combinations(indices, size):
            covered = frozenset().union(*(instance.sets[j] for j in chosen)) if chosen else frozenset()
            if instance.universe <= covered:
                return size
    return None


def min_accurate_predicate_count(
    doc: Document, target: ElementNode, n_sets: int
) -> Optional[int]:
    """Brute-force the cheapest accurate predicate query on the encoding."""
    indices = range(n_sets)
    for size in range(0, n_sets + 1):
        for chosen in combinations(indices, size):
            if query_is_accurate(doc, target, chosen):
                return size
    return None

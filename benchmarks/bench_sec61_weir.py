"""Sec. 6.1 — comparison with WEIR [2].

WEIR induces (unranked, ~30) expressions from 10 same-template hotel
pages; our system gets a single page.  Expressions are replayed over a
4-year archive window.  Paper numbers: top-10 average survival 67 % vs
32 %; best expression 93 % vs 56 %; our top-1 alone 92 %.
"""

from conftest import scale

from repro.experiments.reporting import banner, format_table
from repro.experiments.sota import weir_comparison


def test_sec61_weir_survival(benchmark, emit):
    result = benchmark.pedantic(
        lambda: weir_comparison(n_pages=10, n_runs=scale(4, 5), n_snapshots=74),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["top-10 avg survival", f"{result.ours_top10_avg:.0%}", f"{result.weir_avg:.0%}"],
        ["best expression", f"{result.ours_best:.0%}", f"{result.weir_best:.0%}"],
        ["top-1 expression", f"{result.ours_top1:.0%}", "-"],
        ["fully robust runs", f"{result.ours_fully_robust:.0%}", f"{result.weir_fully_robust:.0%}"],
    ]
    report = [
        banner(
            f"Sec 6.1: WEIR comparison ({result.n_runs} runs, "
            f"avg {result.weir_expressions_avg:.0f} WEIR expressions)"
        ),
        format_table(["metric", "ours", "WEIR [2]"], rows),
    ]
    emit("sec61_weir", "\n".join(report))

    # Paper shape: ours clearly more robust, top-1 close to best.
    assert result.ours_top10_avg >= result.weir_avg
    assert result.ours_best >= result.weir_best - 0.05

"""Async serving layer benchmark → ``BENCH_serving.json``.

Serving traffic is *per-wrapper* requests: independent clients each ask
"run this one wrapper on this page".  The baseline is what a deployment
gets by pointing those requests at the batch engine one call at a time
(``BatchExtractor(workers=1).extract([job])`` per request — one parse
per request, no sharing).  The serving layer answers the same request
stream through micro-batching + same-page coalescing + a persistent
worker pool; the acceptance bar is ≥ 1.5× the serial-call throughput at
client concurrency 8 on the full corpus.

Two server configurations are recorded: ``workers=1`` (in-process
thread executor — pure coalescing/amortization, machine independent)
and ``workers=2`` (persistent process pool — adds parallelism on
multi-core hosts).  The gate takes the best configuration, mirroring a
deployment sizing its pool per host; single-core containers must clear
the bar on coalescing alone.
"""

from __future__ import annotations

import asyncio
import json
import pathlib

from bench_runtime import build_fleet, timeit
from conftest import scale

from repro.runtime import (
    PageJob,
    ServingConfig,
    serve_jobs,
)
from repro.runtime.extractor import BatchExtractor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_serving.json"

#: Acceptance bar: async serving vs. serial per-request BatchExtractor calls.
REQUIRED_SPEEDUP = 1.5

CONCURRENCY = 8


def build_requests(n_snapshots: int) -> list[PageJob]:
    """Per-wrapper request stream over the full single-node fleet."""
    artifacts, page_html = build_fleet(n_snapshots)
    requests: list[PageJob] = []
    for artifact in artifacts:
        wrappers = [(artifact.task_id, artifact.best.text)] + [
            (f"{artifact.task_id}#m{i}", text)
            for i, text in enumerate(artifact.ensemble)
        ]
        for index in range(n_snapshots):
            html = page_html.get((artifact.site_id, index))
            if html is None:
                continue
            page_id = f"{artifact.site_id}@{index}"
            requests.extend(
                PageJob(page_id=page_id, html=html, wrappers=((wid, text),))
                for wid, text in wrappers
            )
    return requests


def serial_calls(requests: list[PageJob]) -> list:
    """The baseline: one BatchExtractor call per request, in order."""
    extractor = BatchExtractor(workers=1)
    return [extractor.extract([job]) for job in requests]


def serve_stream(requests: list[PageJob], workers: int):
    config = ServingConfig(
        workers=workers, max_pending=64, per_site_limit=8, max_batch_pages=16
    )
    return asyncio.run(serve_jobs(requests, config, concurrency=CONCURRENCY))


def test_serving_bench(benchmark, emit):
    n_snapshots = scale(2, 4)
    requests = build_requests(n_snapshots)

    # Correctness first: the served stream answers exactly what the
    # serial calls answer, request for request (stats from this warm-up
    # run also seed the report).
    expected = serial_calls(requests)
    served, stats = serve_stream(requests, workers=1)
    assert served == expected
    served_mp, _ = serve_stream(requests, workers=2)
    assert served_mp == expected

    def run_all():
        results = {
            "n_requests": len(requests),
            "n_pages": stats.pages_parsed,
            "concurrency": CONCURRENCY,
            "coalesced_requests": stats.coalesced_requests,
            "batches": stats.batches,
            "peak_pending": stats.peak_pending,
        }
        results["serial_calls_s"] = timeit(lambda: serial_calls(requests))
        results["async_1worker_s"] = timeit(lambda: serve_stream(requests, workers=1))
        results["async_2workers_s"] = timeit(lambda: serve_stream(requests, workers=2))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    best = min(results["async_1worker_s"], results["async_2workers_s"])
    throughput = {
        "async_1worker_vs_serial_calls": results["serial_calls_s"]
        / results["async_1worker_s"],
        "async_2workers_vs_serial_calls": results["serial_calls_s"]
        / results["async_2workers_s"],
        "async_vs_serial_calls": results["serial_calls_s"] / best,
    }
    payload = {
        "current": results,
        "throughput": throughput,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.experiments.reporting import banner, format_table

    rows = [
        [key, f"{value * 1000:.2f} ms" if key.endswith("_s") else str(value)]
        for key, value in results.items()
    ]
    rows += [
        [key, f"{value:.2f}x"] for key, value in throughput.items()
    ]
    emit(
        "serving",
        "\n".join(
            [
                banner("async serving layer benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    assert throughput["async_vs_serial_calls"] >= REQUIRED_SPEEDUP, (
        f"async serving is only {throughput['async_vs_serial_calls']:.2f}x "
        f"serial BatchExtractor calls at concurrency {CONCURRENCY} "
        f"(required: {REQUIRED_SPEEDUP}x)"
    )

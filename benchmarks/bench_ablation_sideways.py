"""Ablation — sideways checks (Sec. 6.3).

"To identify the correct subset of siblings belonging to our target
list ... robustly matching lists require sibling anchors."  Disabling
sideways generation should cost accuracy (and robustness) on the
multi-target dataset.
"""

from dataclasses import replace

from conftest import scale

from repro.evolution import SyntheticArchive
from repro.experiments.reporting import banner, format_table
from repro.induction import InductionConfig, WrapperInducer
from repro.metrics.robustness import wrapper_matches_targets
from repro.sites import multi_node_tasks


def accuracy_with(tasks, enable_sideways):
    config = replace(InductionConfig(), enable_sideways=enable_sideways)
    inducer = WrapperInducer(k=10, config=config)
    exact = 0
    for corpus_task in tasks:
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        result = inducer.induce_one(doc, targets)
        if result.best is not None and wrapper_matches_targets(
            result.best.query, doc, targets
        ):
            exact += 1
    return exact / len(tasks)


def test_ablation_sideways_checks(benchmark, emit):
    tasks = multi_node_tasks(limit=scale(14, None))

    def run():
        return {
            "with sideways": accuracy_with(tasks, True),
            "without sideways": accuracy_with(tasks, False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = [
        banner("Ablation: sideways checks on the multi-target dataset"),
        format_table(
            ["variant", "top-1 exact accuracy"],
            [[k, f"{v:.0%}"] for k, v in results.items()],
        ),
    ]
    emit("ablation_sideways", "\n".join(report))

    assert results["with sideways"] >= results["without sideways"]

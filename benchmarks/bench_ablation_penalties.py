"""Ablation — the selectivity penalties (Sec. 4).

The no-predicate (1000) and no-function (15) penalties bias induction
toward selective predicates.  Dropping them lets bare positional or
generic-test wrappers win the ranking; this ablation measures the
robustness cost.
"""

from dataclasses import replace

from conftest import scale

from repro.experiments.reporting import banner, format_table
from repro.experiments.robustness_study import run_study
from repro.induction import WrapperInducer
from repro.scoring import ScoringParams
from repro.sites import single_node_tasks

VARIANTS = {
    "paper (1000 / 15)": {},
    "no penalties": {"no_predicate_penalty": 0.0, "no_function_penalty": 0.0},
    "per-step penalty": {"no_predicate_penalty_scope": "step"},
}


def test_ablation_penalties(benchmark, emit):
    tasks = single_node_tasks(limit=scale(8, 30))

    def sweep():
        out = {}
        for label, overrides in VARIANTS.items():
            params = replace(ScoringParams(), **overrides)
            study = run_study(
                tasks, n_snapshots=60, inducer=WrapperInducer(k=10, params=params)
            )
            out[label] = study.summary("generated")
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [label, f"{s['median_days']:.0f}", f"{s['mean_days']:.0f}", s["full_period"]]
        for label, s in results.items()
    ]
    report = [
        banner("Ablation: selectivity penalties"),
        format_table(["variant", "median days", "mean days", "full period"], rows),
    ]
    emit("ablation_penalties", "\n".join(report))

    assert set(results) == set(VARIANTS)

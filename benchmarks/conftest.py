"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures.  The
paper-style rows are printed to the terminal *and* written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite them.

Workload sizes default to laptop-friendly subsets; set ``REPRO_FULL=1``
to run the paper-sized datasets.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


def scale(small: int, full: int) -> int:
    """Pick a workload size: ``small`` by default, ``full`` with REPRO_FULL=1."""
    return full if FULL else small


@pytest.fixture
def emit():
    """Write a named report to benchmarks/results/ and echo it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _emit

"""Site-family fleet generation benchmark → ``BENCH_sitegen.json``.

The sitegen study harness replays whole synthetic archives per task, so
fleet generation throughput bounds how large a lead-time study can be
and still run in CI.  This bench compiles the default family roster and
renders every member snapshot two ways:

* **serial** — one process compiles + renders family by family; the
  headline ``pages_per_sec_vs_floor`` divides the measured rate by a
  fixed 25 pages/sec floor (the rate below which long-archive sweeps
  stop being interactive).  Like the ``BENCH_xpath.json`` ratios it is
  a host-speed number, so check_bench.py gives it the wide band.
* **process-pool fan-out** — families are independent by construction
  (payload dicts travel to the workers, builders recompile there), so
  ``parallel_gen_vs_serial`` should exceed 1 wherever there is more
  than one core.  On a single-CPU host the ratio is recorded but the
  gate self-disarms (``gate_applies`` — the bench_cluster convention).

Correctness first: the parallel path must produce byte-identical HTML
to the serial path for a probe family, or the fan-out is measuring a
different workload.
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import scale

from repro.dom.serialize import to_html
from repro.evolution.archive import SyntheticArchive
from repro.sitegen import FLOOR_PAGES_PER_SEC, bench_payload, default_roster
from repro.sitegen.family import FamilySpec, generate_family

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sitegen.json"

#: Acceptance floor: serial fleet generation, pages per second.
REQUIRED_PAGES_PER_SEC = FLOOR_PAGES_PER_SEC


def _probe_html(spec: FamilySpec, n_snapshots: int) -> list[str]:
    """Every page of one family, rendered in this process."""
    family = generate_family(spec)
    pages = []
    for site in family.sites:
        archive = SyntheticArchive(site, n_snapshots=n_snapshots, cache_size=1)
        pages.extend(to_html(archive.snapshot(i)) for i in range(n_snapshots))
    return pages


def _probe_html_subprocess(spec: FamilySpec, n_snapshots: int) -> list[str]:
    """The same pages rendered from the payload in a worker process."""
    import subprocess
    import sys

    script = (
        "import json, sys\n"
        "from repro.dom.serialize import to_html\n"
        "from repro.evolution.archive import SyntheticArchive\n"
        "from repro.sitegen.family import FamilySpec, generate_family\n"
        "payload, n = json.loads(sys.stdin.read())\n"
        "family = generate_family(FamilySpec.from_payload(payload))\n"
        "pages = []\n"
        "for site in family.sites:\n"
        "    archive = SyntheticArchive(site, n_snapshots=n, cache_size=1)\n"
        "    pages.extend(to_html(archive.snapshot(i)) for i in range(n))\n"
        "json.dump(pages, sys.stdout)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([spec.to_payload(), n_snapshots]),
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    return json.loads(out.stdout)


def test_sitegen_bench(benchmark, emit):
    n_families = scale(4, 8)
    n_snapshots = scale(10, 20)
    cpus = len(os.sched_getaffinity(0))
    specs = default_roster(n_families, snapshots=n_snapshots)

    # Correctness first: a worker process given only the payload dict
    # must render byte-identical HTML to this process, page for page.
    assert _probe_html_subprocess(specs[0], 3) == _probe_html(specs[0], 3)

    payload = benchmark.pedantic(
        bench_payload, args=(specs, n_snapshots), rounds=1, iterations=1
    )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.experiments.reporting import banner, format_table

    current = payload["current"]
    throughput = payload["throughput"]
    rows = [
        ["families", str(current["families"])],
        ["snapshots/site", str(current["snapshots"])],
        ["cpus", str(current["cpus"])],
        ["serial pages/sec", f"{current['serial']['pages_per_sec']:.2f}"],
        ["parallel pages/sec", f"{current['parallel']['pages_per_sec']:.2f}"],
        ["pages_per_sec_vs_floor", f"{throughput['pages_per_sec_vs_floor']:.2f}x"],
        ["parallel_gen_vs_serial", f"{throughput['parallel_gen_vs_serial']:.2f}x"],
    ]
    emit(
        "sitegen",
        "\n".join(
            [
                banner("sitegen fleet generation benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    assert current["serial"]["pages_per_sec"] >= REQUIRED_PAGES_PER_SEC, (
        f"serial fleet generation ran at "
        f"{current['serial']['pages_per_sec']:.2f} pages/sec "
        f"(floor: {REQUIRED_PAGES_PER_SEC})"
    )
    if cpus >= 2:
        assert throughput["parallel_gen_vs_serial"] >= 1.0, (
            f"process-pool fan-out is {throughput['parallel_gen_vs_serial']:.2f}x "
            f"serial on a {cpus}-CPU host (families are independent; expected >= 1x)"
        )
    else:
        print(
            f"NOTE: single-CPU host ({cpus} usable core(s)) — the fan-out "
            f"gate cannot materialize and is recorded unasserted: "
            f"{throughput['parallel_gen_vs_serial']:.2f}x"
        )

"""Sec. 6.1 — comparison with Dalvi et al. [6] (probabilistic tree-edit).

IMDB-like director pages, 15 snapshots at 2-month intervals over three
periods; success ratio = fraction of consecutive snapshot pairs where a
wrapper induced at t still works at t+1.  The paper reports 100/86/86 %
for its system vs. the 86 % reported by [6].
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.sota import dalvi_comparison


def test_sec61_dalvi_success_ratio(benchmark, emit):
    results = benchmark.pedantic(
        lambda: dalvi_comparison(n_snapshots=15, periods=(0, 12, 24)),
        rounds=1,
        iterations=1,
    )

    rows = [
        [r.period, f"{r.ours:.0%}", f"{r.treeedit:.0%}", r.transitions] for r in results
    ]
    report = [
        banner("Sec 6.1: success ratio vs probabilistic tree-edit baseline [6]"),
        format_table(["period", "ours", "tree-edit [6]", "transitions"], rows),
    ]
    emit("sec61_dalvi", "\n".join(report))

    assert results
    ours_avg = sum(r.ours for r in results) / len(results)
    baseline_avg = sum(r.treeedit for r in results) / len(results)
    assert ours_avg >= 0.75  # paper: 86-100%
    assert ours_avg >= baseline_avg - 0.10

"""Ablation — the decay factor δ (Sec. 6.3).

The paper fixed δ = 2.5 after sweeping 0.5–5: the decay favors putting
expensive, discriminative anchors *early* (far from the target).  This
ablation repeats the sweep and reports robustness of the top-1 wrapper.
"""

from dataclasses import replace

from conftest import scale

from repro.experiments.reporting import banner, format_table
from repro.experiments.robustness_study import run_study
from repro.induction import WrapperInducer
from repro.scoring import ScoringParams
from repro.sites import single_node_tasks

DELTAS = [0.5, 1.0, 2.5, 5.0]


def test_ablation_decay_factor(benchmark, emit):
    tasks = single_node_tasks(limit=scale(8, 30))

    def sweep():
        rows = {}
        for delta in DELTAS:
            inducer = WrapperInducer(
                k=10, params=replace(ScoringParams(), decay=delta)
            )
            study = run_study(tasks, n_snapshots=60, inducer=inducer)
            rows[delta] = study.summary("generated")
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            delta,
            f"{summary['median_days']:.0f}",
            f"{summary['mean_days']:.0f}",
            summary["full_period"],
        ]
        for delta, summary in results.items()
    ]
    report = [
        banner("Ablation: decay factor delta (paper default 2.5)"),
        format_table(["delta", "median days", "mean days", "full period"], rows),
    ]
    emit("ablation_decay", "\n".join(report))

    assert set(results) == set(DELTAS)

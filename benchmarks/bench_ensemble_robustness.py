"""Extension bench — multiple independent wrappers (Sec. 7, item 4).

The paper's closing direction: a single wrapper's robustness is bounded,
so induce several wrappers using *independent* selection features and
vote.  This bench replays the single-node archive study with a
3-member feature-diverse ensemble against the top-1 wrapper.
"""

from conftest import scale

from repro.evolution import SyntheticArchive
from repro.experiments.reporting import banner, format_table
from repro.induction import WrapperInducer
from repro.induction.ensemble import build_ensemble
from repro.metrics.robustness import same_result_set
from repro.sites import single_node_tasks


def survival_days(select, archive, role, n_snapshots):
    for index in range(1, n_snapshots):
        if archive.is_broken(index):
            return archive.day(index - 1)
        doc = archive.snapshot(index)
        truth = archive.targets(doc, role)
        if not truth:
            return archive.day(index - 1)
        if not same_result_set(select(doc), truth):
            return archive.day(index - 1)
    return archive.day(n_snapshots - 1)


def run(tasks, n_snapshots=90):
    inducer = WrapperInducer(k=10)
    single_days, ensemble_days = [], []
    for corpus_task in tasks:
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=n_snapshots)
        doc0 = archive.snapshot(0)
        targets = archive.targets(doc0, corpus_task.task.role)
        result = inducer.induce_one(doc0, targets)
        if result.best is None:
            continue
        top1 = result.best.query
        ensemble = build_ensemble(result, size=3)
        from repro.xpath.evaluator import evaluate

        single_days.append(
            survival_days(
                lambda d, q=top1: evaluate(q, d.root, d), archive,
                corpus_task.task.role, n_snapshots,
            )
        )
        ensemble_days.append(
            survival_days(ensemble.select, archive, corpus_task.task.role, n_snapshots)
        )
    return single_days, ensemble_days


def test_ensemble_vs_single_wrapper(benchmark, emit):
    tasks = single_node_tasks(limit=scale(12, 40))
    single_days, ensemble_days = benchmark.pedantic(
        lambda: run(tasks), rounds=1, iterations=1
    )

    def avg(values):
        return sum(values) / len(values) if values else 0.0

    report = [
        banner("Extension: 3-member feature-diverse ensembles vs top-1 wrapper"),
        format_table(
            ["wrapper", "n", "mean survival days"],
            [
                ["top-1 single", len(single_days), f"{avg(single_days):.0f}"],
                ["ensemble (vote)", len(ensemble_days), f"{avg(ensemble_days):.0f}"],
            ],
        ),
    ]
    emit("ensemble_robustness", "\n".join(report))

    # The committee should not be less robust than its top member on average.
    assert avg(ensemble_days) >= avg(single_days) * 0.75

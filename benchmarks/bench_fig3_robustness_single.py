"""Figure 3 — robustness of expressions matching a single node.

Regenerates the density curves of survival days for generated vs. manual
vs. canonical wrappers over the single-node task set, plus the break-
group accounting (a)–(f) of Sec. 6.2.
"""

from conftest import scale

from repro.experiments.reporting import banner, format_series, format_table
from repro.experiments.robustness_study import run_study
from repro.sites import single_node_tasks


def test_fig3_single_node_robustness(benchmark, emit):
    tasks = single_node_tasks(limit=scale(24, None))

    study = benchmark.pedantic(
        lambda: run_study(tasks, n_snapshots=110), rounds=1, iterations=1
    )

    lines = [banner("Figure 3: robustness, single-node wrappers")]
    rows = []
    for kind in ("generated", "manual", "canonical"):
        summary = study.summary(kind)
        rows.append(
            [
                kind,
                summary["n"],
                f"{summary['median_days']:.0f}",
                f"{summary['mean_days']:.0f}",
                summary["under_100"],
                summary["between_100_400"],
                summary["over_400"],
                summary["full_period"],
            ]
        )
    lines.append(
        format_table(
            ["wrapper", "n", "median_d", "mean_d", "<100d", "100-400d", ">400d", "full"],
            rows,
        )
    )
    for kind in ("generated", "manual", "canonical"):
        centers, density = study.density(kind)
        lines.append(format_series(f"density {kind} (days, density)", centers, density))
    lines.append(f"break groups (a)-(f): {dict(sorted(study.group_counts().items()))}")
    emit("fig3_robustness_single", "\n".join(lines))

    assert study.summary("generated")["median_days"] >= study.summary("canonical")[
        "median_days"
    ] * 0.8

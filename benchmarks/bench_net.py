"""Network front-end benchmark → ``BENCH_net.json``.

The facade's wire story only earns its keep if concurrent remote
clients beat the naive deployment — serial per-request HTTP round trips
against the same server.  This bench deploys the full single-node
corpus fleet behind a :class:`~repro.runtime.net.WrapperHTTPServer` on
a real localhost TCP socket and replays a per-wrapper extraction stream
three ways:

* **serial HTTP** — one :class:`~repro.api.RemoteWrapperClient`, one
  request at a time: every request pays its own round trip *and* its
  own page parse (nothing to coalesce);
* **concurrent HTTP (8 clients)** — eight threads, each with its own
  connection: requests for the same rendered page arrive together, the
  serving layer coalesces them onto one parse and demultiplexes the
  records per caller.  The acceptance bar is ≥ 1.2× the serial-HTTP
  throughput;
* **in-process serving at concurrency 8** — the same stream through
  :func:`repro.runtime.serve.serve_jobs` with no sockets: the reference
  ceiling, recorded (not gated) so the wire overhead stays visible
  across PRs.

A fourth pass replays the concurrent stream against a *hardened*
server — API keys plus an (unsaturated) per-tenant limiter — and
records the auth-on vs. auth-off throughput ratio, so the per-request
cost of authentication/admission stays visible (reported, not gated:
the ratio is new relative to the committed baseline).

Two raw-speed-tier ratios ride along, both self-arming (asserted only
on multi-core hosts; 1-CPU containers record them with a per-metric
``gate_applies`` of ``false``):

* **cached_page_vs_cold** — the in-process stream with every request
  its own dispatch batch (coalescing off the table), parse cache on vs.
  off: the cross-request win of the content-hash
  :class:`~repro.runtime.serve.ParseCache`.  Required ≥ 2.0× when the
  gate arms;
* **bulk_stream_vs_json** — the whole stream as one ``/extract_many``
  request, NDJSON streaming vs. buffered JSON wire mode (reported, not
  thresholded here).
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import threading
from concurrent.futures import ThreadPoolExecutor

from bench_runtime import build_fleet, timeit
from conftest import scale

from repro.api import RemoteWrapperClient, WrapperClient
from repro.runtime import PageJob, ServingConfig, serve_jobs
from repro.runtime.auth import ApiKeyTable, QuotaConfig
from repro.runtime.net import NetConfig, WrapperHTTPServer
from repro.api.results import extraction_wrappers

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_net.json"

#: Acceptance bar: concurrent remote extraction vs. serial HTTP round trips.
REQUIRED_SPEEDUP = 1.2

#: Acceptance bar for the parse-cache tier (armed on multi-core hosts).
CACHE_REQUIRED_SPEEDUP = 2.0

CONCURRENCY = 8

#: Wildcard key for the hardened-server pass.
BENCH_KEY = "k-bench-3f9c2a7e"


def hardened_config() -> NetConfig:
    """Auth + limiter enabled, quotas far above the bench's offered
    load — measures the admission-path overhead, never throttling."""
    return NetConfig(
        serving=ServingConfig(),
        auth=ApiKeyTable.from_lines([f"{BENCH_KEY} *"]),
        quota=QuotaConfig(rate=1e6, burst=10**6, max_inflight=CONCURRENCY * 8),
    )


class ServerThread:
    """A WrapperHTTPServer on its own event loop in a daemon thread, so
    the benchmark's client code can be plain blocking calls."""

    def __init__(self, client: WrapperClient, config: NetConfig | None = None) -> None:
        self.client = client
        self.config = config
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = WrapperHTTPServer(
            self.client, self.config or NetConfig(serving=ServingConfig())
        )
        self.address = await server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.aclose()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("HTTP server never came up")
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


#: Independent consumers polling each (wrapper, page) — the serving
#: traffic shape (dashboards, downstream pipelines, retry loops all ask
#: for the same rendered page).  Concurrent consumers of one page are
#: exactly what the serving layer coalesces onto a single parse; the
#: serial baseline pays the parse per request.
CONSUMERS = 3


def build_request_stream(n_snapshots: int):
    """(site_key, html) extraction requests — ``CONSUMERS`` per
    (wrapper, page), grouped by rendered page so the concurrent window
    covers coalescible neighbors — plus the deployed client."""
    artifacts, page_html = build_fleet(n_snapshots)
    client = WrapperClient()
    for artifact in artifacts:
        client.deploy(artifact)
    by_site: dict[str, list] = {}
    for artifact in artifacts:
        by_site.setdefault(artifact.site_id, []).append(artifact)
    requests: list[tuple[str, str]] = []
    for index in range(n_snapshots):
        for site_id in sorted(by_site):
            html = page_html.get((site_id, index))
            if html is None:
                continue
            requests.extend(
                (artifact.task_id, html)
                for artifact in by_site[site_id]
                for _ in range(CONSUMERS)
            )
    return client, artifacts, requests


def serial_http(address, requests) -> list:
    host, port = address
    with RemoteWrapperClient(host, port) as remote:
        return [remote.extract(site_key, html) for site_key, html in requests]


def concurrent_http(
    address, requests, concurrency: int = CONCURRENCY, api_key: str = ""
) -> list:
    host, port = address
    local = threading.local()

    def one(request):
        if not hasattr(local, "client"):
            local.client = RemoteWrapperClient(host, port, api_key=api_key)
        site_key, html = request
        return local.client.extract(site_key, html)

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        return list(pool.map(one, requests))


def inprocess_serving(
    client: WrapperClient, requests, config: ServingConfig | None = None
) -> list:
    """The same stream through the async serving layer, no sockets."""
    jobs = []
    for site_key, html in requests:
        artifact = client.artifact(site_key)
        jobs.append(
            PageJob(
                page_id=artifact.site_id or site_key,
                html=html,
                wrappers=tuple(extraction_wrappers(artifact)),
            )
        )
    return asyncio.run(
        serve_jobs(jobs, config or ServingConfig(), concurrency=CONCURRENCY)
    )


def bulk_extract(address, requests, wire: str) -> list:
    """The whole stream as one ``/extract_many`` request."""
    host, port = address
    with RemoteWrapperClient(host, port) as remote:
        return remote.extract_many(requests, wire=wire, concurrency=CONCURRENCY)


def test_net_bench(benchmark, emit):
    n_snapshots = scale(2, 3)
    client, artifacts, requests = build_request_stream(n_snapshots)

    cpus = len(os.sched_getaffinity(0))
    # Every request its own dispatch batch: the coalescer cannot mask
    # what the cross-request parse cache does.
    cold_config = ServingConfig(max_batch_pages=1, parse_cache_bytes=0)
    warm_config = ServingConfig(max_batch_pages=1)

    with ServerThread(client) as server:
        # Correctness first: the concurrent stream answers exactly what
        # the serial round trips answer, request for request — and so
        # do both bulk wire modes, slot for slot.
        expected = serial_http(server.address, requests)
        concurrent = concurrent_http(server.address, requests)
        assert concurrent == expected
        assert bulk_extract(server.address, requests, "bulk") == expected
        assert bulk_extract(server.address, requests, "stream") == expected

        def run_all():
            results = {
                "n_wrappers": len(artifacts),
                "n_requests": len(requests),
                "concurrency": CONCURRENCY,
                "cpus": cpus,
            }
            results["serial_http_s"] = timeit(
                lambda: serial_http(server.address, requests)
            )
            results["concurrent8_http_s"] = timeit(
                lambda: concurrent_http(server.address, requests)
            )
            results["bulk_json_s"] = timeit(
                lambda: bulk_extract(server.address, requests, "bulk")
            )
            results["bulk_stream_s"] = timeit(
                lambda: bulk_extract(server.address, requests, "stream")
            )
            results["inprocess_async8_s"] = timeit(
                lambda: inprocess_serving(client, requests)
            )
            results["cold_cache_inprocess_s"] = timeit(
                lambda: inprocess_serving(client, requests, cold_config)
            )
            results["warm_cache_inprocess_s"] = timeit(
                lambda: inprocess_serving(client, requests, warm_config)
            )
            return results

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    with ServerThread(client, config=hardened_config()) as hardened:
        # Auth must be transparent to the payloads: keyed answers match
        # the open server's, request for request.
        assert concurrent_http(hardened.address, requests, api_key=BENCH_KEY) == expected
        results["auth_concurrent8_http_s"] = timeit(
            lambda: concurrent_http(hardened.address, requests, api_key=BENCH_KEY)
        )

    throughput = {
        "concurrent8_vs_serial_http": results["serial_http_s"]
        / results["concurrent8_http_s"],
        # Admission-path overhead: auth-off vs. auth-on concurrent
        # throughput (new vs. the committed baseline → reported, not
        # gated, by scripts/check_bench.py).
        "auth_on_vs_off_concurrent8": results["concurrent8_http_s"]
        / results["auth_concurrent8_http_s"],
        # Raw-speed tier (self-arming on multi-core hosts, see the
        # per-metric gate_applies below).
        "cached_page_vs_cold": results["cold_cache_inprocess_s"]
        / results["warm_cache_inprocess_s"],
        "bulk_stream_vs_json": results["bulk_json_s"]
        / results["bulk_stream_s"],
    }
    results["remote_requests_per_sec"] = len(requests) / results["concurrent8_http_s"]
    results["inprocess_vs_remote_concurrent"] = (
        results["concurrent8_http_s"] / results["inprocess_async8_s"]
    )
    payload = {
        "current": results,
        "throughput": throughput,
        "required_speedup": REQUIRED_SPEEDUP,
        "cpus": cpus,
        # Per-metric self-arming: the cache and streaming ratios are
        # timer-race-sensitive on 1-CPU containers, so they only gate
        # when both the baseline and the current run had cores to spare.
        # The classic concurrency ratio keeps gating everywhere.
        "gate_applies": {
            "throughput.cached_page_vs_cold": cpus >= 2,
            "throughput.bulk_stream_vs_json": cpus >= 2,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.experiments.reporting import banner, format_table

    rows = [
        [key, f"{value * 1000:.2f} ms" if key.endswith("_s") else f"{value:.2f}"]
        for key, value in results.items()
    ]
    rows += [[key, f"{value:.2f}x"] for key, value in throughput.items()]
    emit(
        "net",
        "\n".join(
            [
                banner("network front-end benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    assert throughput["concurrent8_vs_serial_http"] >= REQUIRED_SPEEDUP, (
        f"concurrent remote extraction is only "
        f"{throughput['concurrent8_vs_serial_http']:.2f}x serial per-request "
        f"HTTP round trips at concurrency {CONCURRENCY} "
        f"(required: {REQUIRED_SPEEDUP}x)"
    )
    if cpus >= 2:
        assert throughput["cached_page_vs_cold"] >= CACHE_REQUIRED_SPEEDUP, (
            f"the parse cache only bought "
            f"{throughput['cached_page_vs_cold']:.2f}x over cold parsing "
            f"(required: {CACHE_REQUIRED_SPEEDUP}x on {cpus} CPUs)"
        )

"""Micro-benchmarks for the indexed DOM + compiled dsXPath engine.

Measures the hot primitives the induction sits on — axis navigation,
document-order sort, and full query evaluation (compiled vs. the
reference interpreter) — plus the end-to-end single-node induction
runtime, and writes everything to a machine-readable ``BENCH_xpath.json``
at the repository root so the perf trajectory is tracked across PRs.

``SEED_BASELINE`` holds the numbers measured on the pre-engine seed
implementation (naive interpreter, ``id()``-keyed order dicts) on the
same machine that produced the first ``BENCH_xpath.json``; re-measure on
your hardware before comparing absolute values.
"""

from __future__ import annotations

import json
import pathlib
import random
import statistics
import time

from conftest import scale

from repro.dom.builder import E, T, document
from repro.experiments.reporting import banner, format_table
from repro.experiments.runtime import measure_induction_runtime
from repro.xpath.ast import Axis
from repro.xpath.axes import axis_candidates
from repro.xpath.compile import compile_query, evaluate_compiled
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_xpath.json"

#: Seed (pre-engine) numbers, measured 2026-07-28 on the reference
#: container: per-call seconds on the same generated document/workload.
SEED_BASELINE = {
    "following_axis_200_s": 0.12300,
    "preceding_axis_200_s": 0.12030,
    "descendant_axis_200_s": 0.0011210,
    "sort_nodes_full_s": 0.0011126,
    "evaluate_suite_s": 0.0076503,
    "induction_median_s_limit12": 0.051862,
    "induction_median_s_limit56": 0.061252,
}

TAGS = ["div", "span", "p", "a", "li", "ul", "td", "tr", "h2", "section"]
CLASSES = ["row", "item", "name", "meta", "head", "promo", "txt-block", "list"]

QUERIES = [
    "descendant::div",
    "descendant::a[@href]",
    'descendant::div[@class="row"]/descendant::span',
    "descendant::li[2]",
    "descendant::ul/child::li[last()]",
    'descendant::span[contains(.,"text")]',
    "descendant::p/following-sibling::node()",
]


def random_tree(rng, depth, breadth):
    tag = rng.choice(TAGS)
    attrs = {}
    if rng.random() < 0.6:
        attrs["class"] = rng.choice(CLASSES)
    if rng.random() < 0.15:
        attrs["id"] = f"id{rng.randrange(1000)}"
    if rng.random() < 0.2:
        attrs["href"] = f"/x/{rng.randrange(100)}"
    node = E(tag, **attrs)
    if depth > 0:
        for _ in range(rng.randint(1, breadth)):
            if rng.random() < 0.3:
                node.append_child(T(f"text {rng.randrange(50)}"))
            else:
                node.append_child(random_tree(rng, depth - 1, breadth))
    elif rng.random() < 0.5:
        node.append_child(T(f"leaf {rng.randrange(50)}"))
    return node


def make_doc(seed=7, depth=8, breadth=4):
    rng = random.Random(seed)
    body = E("body")
    for _ in range(8):
        body.append_child(random_tree(rng, depth - 1, breadth))
    return document(E("html", E("head", E("title", T("bench"))), body))


def timeit(fn, repeat=5):
    """Best-of-N per-call seconds (min resists scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_microbench(benchmark, emit):
    doc = make_doc()
    nodes = list(doc.all_nodes())
    elements = [n for n in nodes if getattr(n, "tag", "#")[0] != "#"]
    sample = elements[:: max(1, len(elements) // 200)][:200]
    queries = [parse_query(q) for q in QUERIES]
    shuffled = list(nodes)
    random.Random(3).shuffle(shuffled)

    def run_all():
        results = {}
        results["following_axis_200_s"] = timeit(
            lambda: [axis_candidates(n, Axis.FOLLOWING, doc) for n in sample]
        )
        results["preceding_axis_200_s"] = timeit(
            lambda: [axis_candidates(n, Axis.PRECEDING, doc) for n in sample]
        )
        results["descendant_axis_200_s"] = timeit(
            lambda: [axis_candidates(n, Axis.DESCENDANT, doc) for n in sample]
        )
        results["sort_nodes_full_s"] = timeit(lambda: doc.sort_nodes(list(shuffled)))
        results["evaluate_suite_s"] = timeit(
            lambda: [evaluate_compiled(q, doc.root, doc) for q in queries]
        )
        results["evaluate_suite_reference_s"] = timeit(
            lambda: [evaluate(q, doc.root, doc) for q in queries]
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Sanity: compiled and reference engines agree on the bench queries.
    for query in queries:
        assert [id(n) for n in evaluate_compiled(query, doc.root, doc)] == [
            id(n) for n in evaluate(query, doc.root, doc)
        ]

    limit = scale(12, 56)
    runs = [measure_induction_runtime(limit=limit) for _ in range(3)]
    best_run = min(runs, key=lambda run: run.median_s)
    results["induction_median_s"] = best_run.median_s
    results["induction_limit"] = limit
    results["node_count"] = len(nodes)

    # Node-count-normalized induction time: median seconds per 1000
    # nodes of the induced page, so the figure stays comparable when
    # the task limit (and hence the page mix) changes across tiers.
    from repro.runtime.corpus import snapshot0_annotation
    from repro.sites import single_node_tasks

    page_knodes = {}
    for corpus_task in single_node_tasks(limit=limit):
        annotation = snapshot0_annotation(corpus_task)
        if annotation is not None:
            page_knodes[corpus_task.task_id] = annotation[0].node_count() / 1000.0
    results["induction_s_per_knode"] = statistics.median(
        seconds / page_knodes[task_id]
        for task_id, seconds in best_run.per_task
        if page_knodes.get(task_id)
    )

    seed_induction = SEED_BASELINE[
        "induction_median_s_limit12" if limit == 12 else "induction_median_s_limit56"
    ]
    payload = {
        "seed": SEED_BASELINE,
        "current": results,
        "speedup": {
            key: SEED_BASELINE[key] / results[key]
            for key in (
                "following_axis_200_s",
                "preceding_axis_200_s",
                "descendant_axis_200_s",
                "sort_nodes_full_s",
                "evaluate_suite_s",
            )
            if results[key] > 0
        }
        | {"induction_median": seed_induction / results["induction_median_s"]},
    }
    # Every xpath ratio divides a fixed seed constant by this host's
    # wall-clock, so all of them gate on any host; the explicit dict
    # keeps the file on the same per-metric schema as the self-arming
    # benches (cluster/sitegen/induction).
    payload["gate_applies"] = {
        f"speedup.{key}": True for key in payload["speedup"]
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [key, f"{value * 1000:.3f} ms" if key.endswith("_s") else str(value)]
        for key, value in results.items()
    ]
    rows.append(["induction speedup vs seed", f"{payload['speedup']['induction_median']:.2f}x"])
    emit(
        "xpath_engine",
        "\n".join(
            [
                banner("dsXPath engine micro-benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    # The headline acceptance bar: >= 3x faster single-node induction
    # than the seed interpreter on the reference machine.  Keep a loose
    # floor here so slower CI machines (different baseline) still pass.
    assert results["induction_median_s"] < seed_induction

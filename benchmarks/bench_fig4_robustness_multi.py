"""Figure 4 — robustness of expressions matching multiple nodes."""

from conftest import scale

from repro.experiments.reporting import banner, format_series, format_table
from repro.experiments.robustness_study import run_study
from repro.sites import multi_node_tasks


def test_fig4_multi_node_robustness(benchmark, emit):
    tasks = multi_node_tasks(limit=scale(14, None))

    study = benchmark.pedantic(
        lambda: run_study(tasks, n_snapshots=110), rounds=1, iterations=1
    )

    lines = [banner("Figure 4: robustness, multi-node wrappers")]
    rows = []
    for kind in ("generated", "manual", "canonical"):
        summary = study.summary(kind)
        rows.append(
            [
                kind,
                summary["n"],
                f"{summary['median_days']:.0f}",
                f"{summary['mean_days']:.0f}",
                summary["under_100"],
                summary["over_400"],
                summary["full_period"],
            ]
        )
    lines.append(
        format_table(
            ["wrapper", "n", "median_d", "mean_d", "<100d", ">400d", "full"], rows
        )
    )
    for kind in ("generated", "manual", "canonical"):
        centers, density = study.density(kind)
        lines.append(format_series(f"density {kind} (days, density)", centers, density))
    lines.append(f"break groups: {dict(sorted(study.group_counts().items()))}")
    emit("fig4_robustness_multi", "\n".join(lines))

    # Paper shape: canonical wrappers break quickly on lists.
    assert study.summary("canonical")["median_days"] <= study.summary("generated")[
        "median_days"
    ]

"""Figure 5 — node tests and predicates of single-target queries.

The paper tabulates, over the 53 induced single-node expressions, the
step-count distribution (34 one-step, 19 two-step), the node tests per
step (div dominating), and the predicate kinds (id, class, positional
leading; text rare).
"""

from conftest import scale

from repro.evolution import SyntheticArchive
from repro.experiments.characteristics import analyze_queries, top_labels
from repro.experiments.reporting import banner, format_table
from repro.induction import WrapperInducer
from repro.sites import single_node_tasks


def induce_top1_queries(tasks):
    inducer = WrapperInducer(k=10)
    queries = []
    for corpus_task in tasks:
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        result = inducer.induce_one(doc, targets)
        if result.best is not None:
            queries.append(result.best.query)
    return queries


def test_fig5_single_target_characteristics(benchmark, emit):
    tasks = single_node_tasks(limit=scale(24, None))
    queries = benchmark.pedantic(
        lambda: induce_top1_queries(tasks), rounds=1, iterations=1
    )
    stats = analyze_queries(queries)

    lines = [banner("Figure 5: nodetests/predicates of single-target queries")]
    lines.append(
        f"queries={stats.n_queries}  steps={stats.total_steps}  "
        f"step counts={dict(sorted(stats.step_count_distribution.items()))}"
    )
    lines.append(
        format_table(
            ["nodetest", "count"], top_labels(stats.nodetest_totals(), limit=9)
        )
    )
    lines.append(
        format_table(
            ["predicate", "count"], top_labels(stats.predicate_totals(), limit=9)
        )
    )
    lines.append(f"axis usage: {dict(stats.axis_usage.most_common())}")
    emit("fig5_characteristics_single", "\n".join(lines))

    # Paper shape: single-node queries are short (1–2 steps dominate).
    short = stats.step_count_distribution[1] + stats.step_count_distribution[2]
    assert short >= 0.8 * stats.n_queries
    assert stats.axis_usage.get("descendant", 0) >= 0.7 * stats.total_steps

"""Wrapper lifecycle runtime benchmarks → ``BENCH_runtime.json``.

Measures the production serving loop on the full corpus:

* **batch extraction** — the serial per-(wrapper, page) loop (one parse
  per pair, what a naive deployment does) against the batch engine with
  1 and 4 workers.  The acceptance bar is batch-with-4-workers ≥ 2× the
  serial loop; the win comes from parsing + indexing each page once for
  all its wrappers, with the process fan-out on top for multi-core
  hosts.
* **artifact round trip** — JSON serialize + parse + revalidate per
  wrapper (the cost of a cold wrapper-store load).
* **drift checking** — full detector passes (top query + canonical
  fingerprint + ensemble vote) per (wrapper, page).

Everything lands in ``BENCH_runtime.json`` at the repository root so
the serving-path trajectory is tracked across PRs alongside
``BENCH_xpath.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import scale

from repro.dom.serialize import to_html
from repro.evolution import SyntheticArchive
from repro.experiments.reporting import banner, format_table
from repro.induction import WrapperInducer
from repro.runtime.corpus import induce_corpus_task
from repro.runtime import (
    DriftDetector,
    WrapperArtifact,
    extract_serial,
    jobs_for_artifacts,
)
from repro.runtime.extractor import BatchExtractor
from repro.sites import single_node_tasks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_runtime.json"

#: The acceptance bar: batch extraction with 4 workers vs. the serial loop.
REQUIRED_SPEEDUP = 2.0


def timeit(fn, repeat=3):
    """Best-of-N per-call seconds (min resists scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_fleet(n_snapshots: int):
    """Artifacts for every single-node corpus task + served page HTML."""
    inducer = WrapperInducer(k=10)
    artifacts, page_html = [], {}
    for corpus_task in single_node_tasks():
        spec, task = corpus_task.spec, corpus_task.task
        induced = induce_corpus_task(corpus_task, inducer)
        if induced is None:
            continue
        result, sample = induced
        artifacts.append(
            WrapperArtifact.from_induction(
                result,
                [sample],
                task_id=task.task_id,
                site_id=spec.site_id,
                role=task.role,
            )
        )
        archive = SyntheticArchive(spec, n_snapshots=n_snapshots)
        for index in range(n_snapshots):
            if archive.is_broken(index):
                continue
            page_html[(spec.site_id, index)] = to_html(archive.snapshot(index))
    return artifacts, page_html


def test_runtime_bench(benchmark, emit):
    # 3 snapshots ⇒ ~1s of serial work: enough for the one-time process
    # spawn of the 4-worker pool to amortize, so the gate below is not
    # hostage to fork latency on small CI machines.
    n_snapshots = scale(3, 5)
    artifacts, page_html = build_fleet(n_snapshots)
    sites = {a.site_id for a in artifacts}

    jobs = []
    for index in range(n_snapshots):
        snapshot_pages = {
            site: html for (site, i), html in page_html.items() if i == index
        }
        jobs.extend(
            jobs_for_artifacts(artifacts, snapshot_pages, page_suffix=f"@{index}")
        )
    pairs = sum(len(job.wrappers) for job in jobs)

    def run_all():
        results = {
            "n_wrappers": len(artifacts),
            "n_sites": len(sites),
            "n_pages": len(jobs),
            "n_pairs": pairs,
        }
        results["serial_loop_s"] = timeit(lambda: extract_serial(jobs))
        results["batch_1worker_s"] = timeit(
            lambda: BatchExtractor(workers=1).extract(jobs)
        )
        results["batch_4workers_s"] = timeit(
            lambda: BatchExtractor(workers=4).extract(jobs)
        )

        payloads = [artifact.dumps() for artifact in artifacts]
        results["artifact_roundtrip_s"] = timeit(
            lambda: [WrapperArtifact.loads(text) for text in payloads]
        )

        detector = DriftDetector()
        snapshot0 = {
            a.site_id: page_html[(a.site_id, 0)]
            for a in artifacts
            if (a.site_id, 0) in page_html
        }
        from repro.dom.parser import parse_html

        docs = {site: parse_html(html) for site, html in snapshot0.items()}
        results["drift_check_s"] = timeit(
            lambda: [
                detector.check(a, docs[a.site_id])
                for a in artifacts
                if a.site_id in docs
            ]
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Sanity: all three extraction modes agree record-for-record.
    serial = extract_serial(jobs)
    assert BatchExtractor(workers=1).extract(jobs) == serial
    assert BatchExtractor(workers=4).extract(jobs) == serial

    speedup = {
        "batch_1worker_vs_serial": results["serial_loop_s"] / results["batch_1worker_s"],
        "batch_4workers_vs_serial": results["serial_loop_s"] / results["batch_4workers_s"],
    }
    payload = {"current": results, "speedup": speedup, "required_speedup": REQUIRED_SPEEDUP}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [key, f"{value * 1000:.2f} ms" if key.endswith("_s") else str(value)]
        for key, value in results.items()
    ]
    rows.append(["batch 1w vs serial", f"{speedup['batch_1worker_vs_serial']:.2f}x"])
    rows.append(["batch 4w vs serial", f"{speedup['batch_4workers_vs_serial']:.2f}x"])
    emit(
        "runtime",
        "\n".join(
            [
                banner("wrapper lifecycle runtime benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    assert speedup["batch_4workers_vs_serial"] >= REQUIRED_SPEEDUP, (
        f"batch extraction with 4 workers is only "
        f"{speedup['batch_4workers_vs_serial']:.2f}x the serial loop "
        f"(required: {REQUIRED_SPEEDUP}x)"
    )
    # The machine-independent amortization signal (no process pool in
    # play): one parse + one index per page must carry the bar alone.
    assert speedup["batch_1worker_vs_serial"] >= REQUIRED_SPEEDUP, (
        f"per-page amortization alone is only "
        f"{speedup['batch_1worker_vs_serial']:.2f}x (required: {REQUIRED_SPEEDUP}x)"
    )

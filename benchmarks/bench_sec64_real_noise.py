"""Sec. 6.4 — real-life noise from a (simulated) entity recognizer.

Ten product-listing pages, entity lists of 8–77 items; the NER produces
on average ≈32 % negative and ≈28 % positive noise.  The paper's system
recovers the exact intended entity list from the noisy annotations in
80 % of the cases (8/10), failing on a page with extreme positive noise
and on one where a same-type sidebar list attracts the wrapper.
"""

from repro.experiments.noise_study import run_ner_study
from repro.experiments.reporting import banner, format_table


def test_sec64_real_life_noise(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_ner_study(n_pages=10), rounds=1, iterations=1
    )

    rows = [
        [
            page.page_id,
            page.entity_type,
            page.list_size,
            f"{page.negative_noise:.0%}",
            f"{page.positive_noise:.0%}",
            "yes" if page.exact else "NO",
        ]
        for page in result.pages
    ]
    report = [
        banner("Sec 6.4: induction from simulated-NER annotations"),
        format_table(
            ["page", "entity", "list size", "neg noise", "pos noise", "exact top-1"],
            rows,
        ),
        (
            f"success rate: {result.success_rate:.0%}   "
            f"avg negative noise: {result.avg_negative_noise:.0%}   "
            f"avg positive noise: {result.avg_positive_noise:.0%}"
        ),
    ]
    emit("sec64_real_noise", "\n".join(report))

    # Paper shape: correct extraction despite significant noise (~80%).
    assert result.success_rate >= 0.6
    assert result.avg_negative_noise > 0.05

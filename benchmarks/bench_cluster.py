"""Cross-host cluster benchmark → ``BENCH_cluster.json``.

The cluster layer earns its keep when adding a serving host adds real
throughput — placement is coordination-free, so two hosts should split
the extraction work with zero cross-talk.  This bench deploys the full
single-node corpus fleet into one sharded store, then serves the same
batch-extraction stream two ways over real localhost TCP:

* **single host** — one ``serve --listen`` subprocess owning every
  shard, driven by ``RemoteWrapperClient.extract_many`` at concurrency
  ``CONCURRENCY`` (pipelined per-thread connections);
* **2-host router** — two ``serve --listen --own-shards`` subprocesses
  over disjoint shard halves behind a :class:`~repro.RouterClient`,
  ``extract_many`` fanned out across both hosts at the *same total*
  concurrency (``CONCURRENCY/2`` pipelined per host).

The headline ratio ``router2_vs_single_host`` is gated at ≥ 1.4× — but
only on hosts with ≥ 2 CPUs: the win *is* process-level parallelism
(each serving host is one GIL domain), so a single-core container can
only record the ratio, not exhibit it.  ``cpus`` is written into the
JSON so a reader can tell which regime produced the number.

The failover PR adds a second headline, ``degraded_ratio``: the same
stream through a **replicated 3-host** cluster with one host
SIGKILL-ed (2-of-3) versus all hosts up (3-of-3), at equal client
concurrency.  Replication is supposed to turn a host loss into a
capacity dip, not an outage — the ratio quantifies the dip and is
floored at ≥ 0.35 under the same ``cpus >= 2`` self-arming gate.

Correctness first, as always: the routed results must be byte-identical
payloads to the single-host results, item for item — including the
degraded run, where every answer arrives via a surviving replica.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from bench_runtime import build_fleet, timeit
from conftest import scale

from repro import ClusterMap, RemoteWrapperClient, RouterClient
from repro.runtime.store import ShardedArtifactStore
from tests.serving_utils import spawn_listen, terminate

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_cluster.json"

#: Acceptance bar: 2-host routed batch extraction vs. one serving host.
REQUIRED_SPEEDUP = 1.4

#: Acceptance floor: replicated throughput with one of three hosts dead
#: vs. all three up.  Losing a third of the fleet may cost capacity but
#: must not collapse serving (breaker + failover overhead included).
REQUIRED_DEGRADED_RATIO = 0.35

#: Total client-side in-flight requests (split across hosts for the router).
CONCURRENCY = 16

N_SHARDS = 8

#: Independent consumers per (wrapper, page) — the serving traffic shape.
CONSUMERS = 2


def spawn_host(*extra_args: str) -> tuple:
    """(process, "host:port") for one serving subprocess (shared
    harness, generous deadline for store-backed startup)."""
    proc, host, port = spawn_listen(*extra_args, deadline_s=120.0)
    return proc, f"{host}:{port}"


def build_store_and_stream(n_snapshots: int, root: pathlib.Path):
    """One sharded store holding the whole fleet + the request stream."""
    artifacts, page_html = build_fleet(n_snapshots)
    store = ShardedArtifactStore(root, n_shards=N_SHARDS)
    for artifact in artifacts:
        store.put(artifact)
    items: list[tuple[str, str]] = []
    for index in range(n_snapshots):
        for artifact in artifacts:
            html = page_html.get((artifact.site_id, index))
            if html is None:
                continue
            items.extend((artifact.task_id, html) for _ in range(CONSUMERS))
    return artifacts, items


def test_cluster_bench(benchmark, emit):
    n_snapshots = scale(2, 3)
    cpus = len(os.sched_getaffinity(0))
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        store_root = pathlib.Path(tmp) / "store"
        artifacts, items = build_store_and_stream(n_snapshots, store_root)

        procs = []
        try:
            single_proc, single_host = spawn_host("--artifacts", str(store_root))
            procs.append(single_proc)
            cluster_hosts = []
            for index in range(2):
                own = ",".join(str(s) for s in range(N_SHARDS) if s % 2 == index)
                proc, host = spawn_host(
                    "--artifacts", str(store_root), "--own-shards", own
                )
                procs.append(proc)
                cluster_hosts.append(host)
            cluster_map = ClusterMap(tuple(cluster_hosts), N_SHARDS)

            def single_run():
                with RemoteWrapperClient(single_host) as client:
                    return client.extract_many(items, concurrency=CONCURRENCY)

            def router_run():
                with RouterClient(cluster_map) as router:
                    return router.extract_many(items, concurrency=CONCURRENCY // 2)

            # Correctness first: routing across 2 hosts answers exactly
            # what the single host answers, byte for byte, in order.
            expected = [result.to_payload() for result in single_run()]
            routed = [result.to_payload() for result in router_run()]
            assert routed == expected

            # Replicated 3-host topology over the same store: every
            # shard on two hosts, so one SIGKILL must cost capacity,
            # never answers.
            from tests.cluster.faults import spawn_replicated

            replicated = spawn_replicated(
                n_hosts=3, n_shards=N_SHARDS, store_root=store_root,
                deadline_s=120.0,
            )
            # One long-lived router, breaker tuned to open on the first
            # failed batch and stay open: the timed degraded batches
            # measure steady-state serving with a host down (pure
            # capacity loss), not the one-off dead-host discovery —
            # which the post-kill correctness batch absorbs.
            replicated_router = RouterClient(
                replicated.cluster_map,
                connect_timeout=5.0,
                breaker_threshold=1,
                breaker_reset_s=600.0,
            )

            def replicated_run():
                return replicated_router.extract_many(
                    items, concurrency=max(CONCURRENCY // 3, 1)
                )

            def assert_replicated_matches():
                assert [r.to_payload() for r in replicated_run()] == expected

            def run_all():
                assert_replicated_matches()  # 3-of-3 answers byte-identically
                healthy_s = timeit(replicated_run, repeat=2)
                replicated.kill(replicated.hosts[0])
                assert_replicated_matches()  # 2-of-3 still answers byte-identically
                degraded_s = timeit(replicated_run, repeat=2)
                return {
                    "n_wrappers": len(artifacts),
                    "n_requests": len(items),
                    "n_shards": N_SHARDS,
                    "concurrency": CONCURRENCY,
                    "cpus": cpus,
                    "single_host_s": timeit(single_run, repeat=2),
                    "router2_s": timeit(router_run, repeat=2),
                    "replicated3_s": healthy_s,
                    "degraded2of3_s": degraded_s,
                }

            try:
                results = benchmark.pedantic(run_all, rounds=1, iterations=1)
            finally:
                replicated_router.close()
                replicated.close()
        finally:
            terminate(procs)

    throughput = {
        "router2_vs_single_host": results["single_host_s"] / results["router2_s"],
        # 2-of-3 throughput as a fraction of 3-of-3 (1.0 = host loss is free).
        "degraded_ratio": results["replicated3_s"] / results["degraded2of3_s"],
    }
    results["router_requests_per_sec"] = len(items) / results["router2_s"]
    payload = {
        "current": results,
        "throughput": throughput,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_degraded_ratio": REQUIRED_DEGRADED_RATIO,
        "gate_applies": cpus >= 2,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.experiments.reporting import banner, format_table

    rows = [
        [key, f"{value * 1000:.2f} ms" if key.endswith("_s") else f"{value:.2f}"]
        for key, value in results.items()
    ]
    rows += [[key, f"{value:.2f}x"] for key, value in throughput.items()]
    emit(
        "cluster",
        "\n".join(
            [
                banner("cross-host cluster benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    if cpus >= 2:
        assert throughput["router2_vs_single_host"] >= REQUIRED_SPEEDUP, (
            f"2-host routed extract_many is only "
            f"{throughput['router2_vs_single_host']:.2f}x one serving host "
            f"at total concurrency {CONCURRENCY} (required: {REQUIRED_SPEEDUP}x)"
        )
        assert throughput["degraded_ratio"] >= REQUIRED_DEGRADED_RATIO, (
            f"losing 1 of 3 replicated hosts collapsed throughput to "
            f"{throughput['degraded_ratio']:.2f}x of healthy "
            f"(floor: {REQUIRED_DEGRADED_RATIO}x)"
        )
    else:
        print(
            f"NOTE: single-CPU host ({cpus} usable core(s)) — the 2-host "
            f"parallelism gate ({REQUIRED_SPEEDUP}x) and the degraded-ratio "
            f"floor ({REQUIRED_DEGRADED_RATIO}x) cannot materialize and are "
            f"recorded unasserted: "
            f"{throughput['router2_vs_single_host']:.2f}x, "
            f"{throughput['degraded_ratio']:.2f}x"
        )

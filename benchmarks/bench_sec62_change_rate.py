"""Sec. 6.2 — change-rate (c-change) statistics.

The paper reports an average of 4.1 c-changes absorbed per surviving
wrapper for both datasets, a maximum of 25 (single) / 19 (multi), and
counts of wrappers surviving >5 c-changes.
"""

from conftest import scale

from repro.experiments.change_rate import ChangeRateStats
from repro.experiments.reporting import banner, format_table
from repro.experiments.robustness_study import run_study
from repro.sites import multi_node_tasks, single_node_tasks


def test_sec62_change_rate(benchmark, emit):
    def run():
        single = run_study(single_node_tasks(limit=scale(16, None)), n_snapshots=110)
        multi = run_study(multi_node_tasks(limit=scale(10, None)), n_snapshots=110)
        return (
            ChangeRateStats.from_study(single),
            ChangeRateStats.from_study(multi),
        )

    single_stats, multi_stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, stats in (("single-target", single_stats), ("multi-target", multi_stats)):
        rows.append(
            [
                label,
                stats.n,
                f"{stats.average:.1f}",
                stats.maximum,
                stats.surviving_more_than_5,
                stats.surviving_exactly_1,
            ]
        )
    report = [
        banner("Sec 6.2: c-changes absorbed by generated wrappers"),
        format_table(["dataset", "n", "avg", "max", ">5 c-changes", "==1 c-change"], rows),
    ]
    emit("sec62_change_rate", "\n".join(report))

    # Paper shape: a handful of c-changes on average, max in the tens.
    assert 0.5 <= single_stats.average <= 12
    assert single_stats.maximum <= 40

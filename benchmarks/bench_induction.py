"""Induction fast-path benchmarks → ``BENCH_induction.json``.

Two headline ratios, one per tentpole layer of the induction fast path:

* ``pruned_vs_exhaustive`` — end-to-end single-node induction on a
  large generated listing page (wide sideways structure, the worst case
  for exhaustive candidate generation), default exhaustive search vs.
  ``search="pruned"`` (SPSA-ranked candidate beam + trimmed generation
  ceilings).  Gated at ≥ 2.0× on **any** host: both sides run on the
  same machine and the win is algorithmic (fewer candidates generated
  and scored), not parallelism.
* ``parallel_folds_vs_serial`` — multi-sample aggregation
  (Algorithm 3) with ``fold_workers=2`` on the persistent process pool
  vs. the serial fold loop.  Self-arming: the win *is* process-level
  parallelism, so the gate applies only on hosts with ≥ 2 CPUs
  (``bench_cluster.py``'s pattern, recorded per-metric in
  ``gate_applies``).

Correctness is asserted before any timing counts:

* pruned search must keep the best query's F1 within
  ``QUALITY_TOLERANCE`` of exhaustive on every golden corpus task in
  the sampled subset *and* on the large page — a fast path that finds
  worse wrappers is a regression, not an optimisation;
* pooled folds must return byte-identical results to serial folds
  (same queries, same scores, same order).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random
import time

from conftest import scale

from repro.dom.builder import E, T, document
from repro.evolution.archive import SyntheticArchive
from repro.experiments.reporting import banner, format_table
from repro.induction.config import InductionConfig
from repro.induction.induce import WrapperInducer
from repro.induction.samples import QuerySample
from repro.sites import single_node_tasks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_induction.json"

#: Acceptance bar: pruned search vs. exhaustive on the large page.
REQUIRED_SPEEDUP = 2.0

#: Quality floor: pruned best-query F1 may trail exhaustive by at most
#: this much on any golden task (the documented parity tolerance).
QUALITY_TOLERANCE = 0.01

#: Fold-pool width for the parallel headline.
FOLD_WORKERS = 2

ADJECTIVES = ["solid", "bright", "spare", "quick", "worn", "plain", "deep", "fine"]
NOUNS = ["widget", "gasket", "lamp", "crate", "valve", "panel", "spool", "brush"]

#: Structurally distinct row shells — each produces a different target
#: spine shape, so the DP's spine loop has real variety to walk (and
#: the pruned spine quota has something to trim).
ROW_SHELLS = [
    lambda row: row,
    lambda row: E("section", row, class_="grp"),
    lambda row: E("div", row, class_="grp"),
    lambda row: E("section", E("div", row, class_="inner"), class_="grp"),
    lambda row: E("article", row, class_="grp"),
    lambda row: E("div", E("div", row, class_="inner"), class_="grp"),
    lambda row: E("article", E("div", row, class_="inner"), class_="grp"),
    lambda row: E("section", E("section", row, class_="inner"), class_="grp"),
    lambda row: E("aside", row, class_="grp"),
    lambda row: E("aside", E("div", row, class_="inner"), class_="grp"),
    lambda row: E("div", E("section", row, class_="inner"), class_="grp"),
    lambda row: E("section", E("article", row, class_="inner"), class_="grp"),
    lambda row: E("article", E("article", row, class_="inner"), class_="grp"),
    lambda row: E("div", E("article", row, class_="inner"), class_="grp"),
]


def make_large_page(n_rows: int = 120, seed: int = 11):
    """A deterministic product-listing page that is expensive to induce.

    Every row carries the target (``span[@itemprop="price"]``) plus a
    spread of feature-rich siblings — name, meta, badge list, promo
    blocks — so exhaustive sideways candidate generation has a wide
    cross-product to enumerate, and rows cycle through structurally
    distinct shells so the target spines are genuinely varied.
    ~2k nodes, ``n_rows`` targets.
    """
    rng = random.Random(seed)
    body = E("body")
    nav = E("ul", class_="nav")
    for i in range(8):
        nav.append_child(E("li", E("a", T(f"Section {i}"), href=f"/s/{i}")))
    body.append_child(E("div", E("h1", T("Catalog")), nav, class_="head"))
    listing = E("div", class_="listing")
    for i in range(n_rows):
        adjective = rng.choice(ADJECTIVES)
        noun = rng.choice(NOUNS)
        row = E("div", class_="row", id=f"row{i}")
        row.append_child(E("div", E("a", T(f"{adjective} {noun}"), href=f"/p/{i}"), class_="name"))
        row.append_child(E("span", T(f"sku-{rng.randrange(10000)}"), class_="meta"))
        badges = E("ul", class_="badges")
        for _ in range(rng.randint(1, 3)):
            badges.append_child(E("li", T(rng.choice(ADJECTIVES))))
        row.append_child(badges)
        if rng.random() < 0.4:
            row.append_child(E("div", E("p", T("limited offer")), class_="promo"))
        price = E("span", T(f"${rng.randrange(5, 500)}.{rng.randrange(100):02d}"))
        price.attrs["itemprop"] = "price"
        price.attrs["class"] = "price"
        row.append_child(price)
        row.append_child(E("span", T(f"{rng.randrange(1, 40)} in stock"), class_="stock"))
        listing.append_child(ROW_SHELLS[i % len(ROW_SHELLS)](row))
    body.append_child(listing)
    body.append_child(E("div", E("p", T("© catalog")), class_="footer"))
    return document(E("html", E("head", E("title", T("catalog"))), body))


def price_targets(doc) -> list:
    return [
        node
        for node in doc.all_nodes()
        if getattr(node, "tag", None) == "span"
        and node.attrs.get("itemprop") == "price"
    ]


def timeit(fn, repeat=3):
    """Best-of-N per-call seconds (min resists scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def best_f1(result) -> float:
    best = result.best
    if best is None:
        return 0.0
    denominator = 2 * best.tp + best.fp + best.fn
    return 2 * best.tp / denominator if denominator else 0.0


def multi_sample_task(n_snapshots: int = 4):
    """Samples for the fold benchmark: the first corpus task whose role
    has targets on at least three of the first ``n_snapshots`` pages."""
    for corpus_task in single_node_tasks():
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=n_snapshots)
        samples = []
        for index in range(n_snapshots):
            doc = archive.snapshot(index)
            targets = archive.targets(doc, corpus_task.task.role)
            if targets:
                samples.append(QuerySample(doc, list(targets)))
        if len(samples) >= 3:
            return corpus_task.task_id, samples
    raise AssertionError("no corpus task with >= 3 multi-snapshot samples")


def test_induction_bench(benchmark, emit):
    cpus = len(os.sched_getaffinity(0))
    repeat = scale(2, 3)
    exhaustive_config = InductionConfig()
    pruned_config = dataclasses.replace(exhaustive_config, search="pruned")
    exhaustive = WrapperInducer(k=10, config=exhaustive_config)
    pruned = WrapperInducer(k=10, config=pruned_config)

    doc = make_large_page()
    targets = price_targets(doc)
    assert len(targets) >= 100

    def run_all():
        results: dict = {
            "cpus": cpus,
            "large_page_nodes": doc.node_count(),
            "large_page_targets": len(targets),
        }

        # Warm the per-document caches once per mode so the timed runs
        # compare search strategies, not cold text/index caches.
        exhaustive_result = exhaustive.induce_one(doc, targets)
        pruned_result = pruned.induce_one(doc, targets)
        results["exhaustive_large_page_s"] = timeit(
            lambda: exhaustive.induce_one(doc, targets), repeat=repeat
        )
        results["pruned_large_page_s"] = timeit(
            lambda: pruned.induce_one(doc, targets), repeat=repeat
        )
        results["large_page_f1_exhaustive"] = best_f1(exhaustive_result)
        results["large_page_f1_pruned"] = best_f1(pruned_result)
        stats = pruned_result.stats
        results["pruned_candidates_considered"] = stats.candidates_considered
        results["pruned_candidates_skipped"] = stats.candidates_pruned

        # Quality floor across the golden corpus subset: pruned must
        # match exhaustive within tolerance on every sampled task.
        worse = []
        for corpus_task in single_node_tasks(limit=scale(12, 84)):
            archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
            page = archive.snapshot(0)
            page_targets = archive.targets(page, corpus_task.task.role)
            if not page_targets:
                continue
            f1_exhaustive = best_f1(exhaustive.induce_one(page, page_targets))
            f1_pruned = best_f1(pruned.induce_one(page, page_targets))
            if f1_pruned < f1_exhaustive - QUALITY_TOLERANCE:
                worse.append((corpus_task.task_id, f1_exhaustive, f1_pruned))
        assert not worse, f"pruned search degraded best-query F1: {worse}"
        results["quality_tasks_checked"] = scale(12, 84)
        results["quality_tasks_worse"] = len(worse)

        # Parallel folds: byte-identity first, then the timing.  The
        # first pooled call warms the persistent worker pool so the
        # timed runs measure steady-state fan-out, not process spawn.
        task_id, samples = multi_sample_task()
        results["fold_task"] = task_id
        results["fold_count"] = len(samples)
        serial = WrapperInducer(k=10, config=exhaustive_config)
        pooled = WrapperInducer(
            k=10,
            config=dataclasses.replace(exhaustive_config, fold_workers=FOLD_WORKERS),
        )
        serial_result = serial.induce(samples)
        pooled_result = pooled.induce(samples)
        assert pooled_result.export() == serial_result.export(), (
            "pooled folds are not byte-identical to serial folds"
        )
        assert pooled_result.stats is not None and pooled_result.stats.pooled
        results["serial_folds_s"] = timeit(
            lambda: serial.induce(samples), repeat=repeat
        )
        results["parallel_folds_s"] = timeit(
            lambda: pooled.induce(samples), repeat=repeat
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    speedup = {
        "pruned_vs_exhaustive": (
            results["exhaustive_large_page_s"] / results["pruned_large_page_s"]
        ),
        "parallel_folds_vs_serial": (
            results["serial_folds_s"] / results["parallel_folds_s"]
        ),
    }
    payload = {
        "current": results,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "quality_tolerance": QUALITY_TOLERANCE,
        "fold_workers": FOLD_WORKERS,
        # The pruned ratio is algorithmic and gates everywhere; the
        # fold ratio is process parallelism and self-arms on CPU count.
        "gate_applies": {"speedup.parallel_folds_vs_serial": cpus >= 2},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [key, f"{value * 1000:.2f} ms" if key.endswith("_s") else str(value)]
        for key, value in results.items()
    ]
    rows += [[key, f"{value:.2f}x"] for key, value in speedup.items()]
    emit(
        "induction",
        "\n".join(
            [
                banner("induction fast-path benchmarks"),
                format_table(["metric", "value"], rows),
                f"[json saved to {BENCH_JSON}]",
            ]
        ),
    )

    assert results["large_page_f1_pruned"] >= (
        results["large_page_f1_exhaustive"] - QUALITY_TOLERANCE
    )
    assert speedup["pruned_vs_exhaustive"] >= REQUIRED_SPEEDUP, (
        f"pruned search is only {speedup['pruned_vs_exhaustive']:.2f}x "
        f"exhaustive on the large page (required: {REQUIRED_SPEEDUP}x)"
    )
    if cpus >= 2:
        assert speedup["parallel_folds_vs_serial"] >= 1.2, (
            f"pooled folds are only {speedup['parallel_folds_vs_serial']:.2f}x "
            f"serial at fold_workers={FOLD_WORKERS} (required: 1.2x)"
        )
    else:
        print(
            f"NOTE: single-CPU host ({cpus} usable core(s)) — the fold "
            f"parallelism gate cannot materialize and is recorded "
            f"unasserted: {speedup['parallel_folds_vs_serial']:.2f}x"
        )

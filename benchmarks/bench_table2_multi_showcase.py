"""Table 2 — multi-node showcase queries with sibling axes.

The paper's Table 2 shows channel lists, review-table rows, and a
tv-grid list, where robust selection needs following-/preceding-sibling
anchors.  We regenerate the table on the corresponding synthetic sites
(reference channels = S1, tech-review news rows = S2, sports scores)
including a lower-ranked induced expression, as the paper does (rank 49
for its S3).
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.robustness_study import run_task
from repro.sites.corpus import CorpusTask
from repro.sites.verticals import (
    make_reference_site,
    make_sports_site,
    make_techreview_site,
)


def _showcase_tasks():
    picks = []
    for spec, role in (
        (make_reference_site(0), "channels"),
        (make_techreview_site(0), "news"),
        (make_sports_site(0), "scores"),
    ):
        task = next(t for t in spec.tasks if t.role == role)
        picks.append(CorpusTask(spec, task))
    return picks


def test_table2_multi_showcase(benchmark, emit):
    tasks = _showcase_tasks()

    outcomes = benchmark.pedantic(
        lambda: [run_task(task, n_snapshots=110, extra_ranks=(5,)) for task in tasks],
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, outcome in zip(
        ("S1 reference", "S2 techreview", "S3 sports"), outcomes
    ):
        for kind in ("generated", "generated_rank5", "manual"):
            record = outcome.records.get(kind)
            if record is None:
                continue
            rows.append(
                [
                    label,
                    kind,
                    record.wrapper[:72],
                    outcome.n_targets,
                    record.valid_days,
                    record.c_changes,
                ]
            )
    report = [
        banner("Table 2: matching multiple nodes (sibling-axis wrappers)"),
        format_table(
            ["site", "kind", "query", "#res", "valid days", "c-changes"], rows
        ),
    ]
    emit("table2_multi_showcase", "\n".join(report))

    generated = [o.records["generated"].wrapper for o in outcomes]
    assert any("sibling" in w for w in generated)

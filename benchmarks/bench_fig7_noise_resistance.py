"""Figure 7 — result degradation with increasing annotation noise.

Four curves (N1 negative random, N2 negative mid-random, N3 positive
structural, N4 positive random) of the identical-top-1 rate at noise
intensities 10–70 %, plus the paper's 300 % spot check for N4.
Expected ordering: N4 ≳ N3 > N2 > N1.
"""

from conftest import scale

from repro.experiments.noise_study import build_noise_samples, noise_resistance_curve
from repro.experiments.reporting import banner, format_table
from repro.sites import multi_node_tasks

INTENSITIES = [0.1, 0.3, 0.5, 0.7]

CURVES = [
    ("negative_random", "N1 negative random"),
    ("negative_mid_random", "N2 negative mid-random"),
    ("positive_structural", "N3 positive structural"),
    ("positive_random", "N4 positive random"),
]


def test_fig7_noise_resistance(benchmark, emit):
    samples = build_noise_samples(
        tasks=multi_node_tasks(), limit=scale(8, 50), min_targets=3
    )

    def run_all():
        results = {}
        for kind, _ in CURVES:
            results[kind] = noise_resistance_curve(samples, kind, INTENSITIES)
        results["positive_random_300"] = noise_resistance_curve(
            samples, "positive_random", [3.0]
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [banner(f"Figure 7: noise resistance ({len(samples)} samples)")]
    rows = []
    for kind, label in CURVES:
        for point in results[kind]:
            rows.append(
                [
                    label,
                    f"{point.intensity:.0%}",
                    f"{point.identical_rate:.0%}",
                    f"{point.top50_rate:.0%}",
                ]
            )
    spot = results["positive_random_300"][0]
    rows.append(
        ["N4 positive random", "300%", f"{spot.identical_rate:.0%}", f"{spot.top50_rate:.0%}"]
    )
    lines.append(
        format_table(["noise type", "intensity", "identical top-1", "within top-50"], rows)
    )
    emit("fig7_noise_resistance", "\n".join(lines))

    # Paper shape: positive noise is handled far better than negative.
    def avg(kind):
        points = results[kind]
        return sum(p.identical_rate for p in points) / len(points)

    assert avg("positive_random") >= avg("negative_random")
    assert avg("negative_mid_random") >= avg("negative_random")

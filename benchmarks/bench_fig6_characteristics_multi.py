"""Figure 6 — node tests and predicates of multi-target queries.

The paper's multi-node expressions are longer (34 of 50 use two steps),
lean on list markup (ul/td/li), and — unlike single-node queries —
need sibling axes to pick the right subset of siblings.
"""

from conftest import scale

from repro.evolution import SyntheticArchive
from repro.experiments.characteristics import analyze_queries, top_labels
from repro.experiments.reporting import banner, format_table
from repro.induction import WrapperInducer
from repro.sites import multi_node_tasks


def induce_top1_queries(tasks):
    inducer = WrapperInducer(k=10)
    queries = []
    for corpus_task in tasks:
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        result = inducer.induce_one(doc, targets)
        if result.best is not None:
            queries.append(result.best.query)
    return queries


def test_fig6_multi_target_characteristics(benchmark, emit):
    tasks = multi_node_tasks(limit=scale(16, None))
    queries = benchmark.pedantic(
        lambda: induce_top1_queries(tasks), rounds=1, iterations=1
    )
    stats = analyze_queries(queries)

    lines = [banner("Figure 6: nodetests/predicates of multi-target queries")]
    lines.append(
        f"queries={stats.n_queries}  steps={stats.total_steps}  "
        f"step counts={dict(sorted(stats.step_count_distribution.items()))}"
    )
    lines.append(
        format_table(["nodetest", "count"], top_labels(stats.nodetest_totals(), limit=9))
    )
    lines.append(
        format_table(["predicate", "count"], top_labels(stats.predicate_totals(), limit=9))
    )
    lines.append(f"axis usage: {dict(stats.axis_usage.most_common())}")
    emit("fig6_characteristics_multi", "\n".join(lines))

    # Paper shape: sibling axes appear in multi-target wrappers.
    sibling_steps = stats.axis_usage.get("following-sibling", 0) + stats.axis_usage.get(
        "preceding-sibling", 0
    )
    assert sibling_steps >= 1
    assert stats.step_count_distribution.get(2, 0) + stats.step_count_distribution.get(
        3, 0
    ) >= stats.step_count_distribution.get(1, 0)

"""Sec. 6 (intro) — induction running time.

The paper: single-node induction ranges from milliseconds to seconds
with a median of 1.4 s.  Absolute numbers depend on hardware and page
size; the assertion checks only the order of magnitude.
"""

from conftest import scale

from repro.experiments.reporting import banner, format_table
from repro.experiments.runtime import measure_induction_runtime


def test_runtime_single_node_induction(benchmark, emit):
    stats = benchmark.pedantic(
        lambda: measure_induction_runtime(limit=scale(12, 56)), rounds=1, iterations=1
    )

    rows = [
        ["n tasks", stats.n],
        ["median", f"{stats.median_s * 1000:.0f} ms"],
        ["mean", f"{stats.mean_s * 1000:.0f} ms"],
        ["min", f"{stats.min_s * 1000:.0f} ms"],
        ["max", f"{stats.max_s * 1000:.0f} ms"],
    ]
    report = [
        banner("Induction running time (single-node tasks)"),
        format_table(["metric", "value"], rows),
    ]
    emit("runtime_induction", "\n".join(report))

    assert stats.median_s < 5.0  # paper: median 1.4 s

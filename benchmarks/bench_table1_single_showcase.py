"""Table 1 — single-node showcase queries.

The paper's Table 1 shows, for three sites (a news console, a sports
quote, and the hard wellsfargo advert case), the induced and human
queries with the days they stayed valid and the c-changes absorbed.
We regenerate the same table on the corresponding synthetic sites,
including lower-ranked induced expressions for the hard case (the paper
shows ranks 1, 3, and 5 for S3).
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.robustness_study import run_task
from repro.sites.corpus import CorpusTask
from repro.sites.verticals import make_finance_site, make_news_site, make_sports_site


def _showcase_tasks():
    news = make_news_site(0)
    sports = make_sports_site(0)
    finance = make_finance_site(0)
    picks = []
    for spec, role in ((news, "headline"), (sports, "quote"), (finance, "adv")):
        task = next(t for t in spec.tasks if t.role == role)
        picks.append(CorpusTask(spec, task))
    return picks


def test_table1_single_showcase(benchmark, emit):
    tasks = _showcase_tasks()

    outcomes = benchmark.pedantic(
        lambda: [
            run_task(task, n_snapshots=110, extra_ranks=(3, 5)) for task in tasks
        ],
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, outcome in zip(("S1 news", "S2 sports", "S3 finance"), outcomes):
        for kind in ("generated", "generated_rank3", "generated_rank5", "manual"):
            record = outcome.records.get(kind)
            if record is None:
                continue
            rows.append(
                [
                    label,
                    kind,
                    record.wrapper[:72],
                    record.valid_days,
                    record.c_changes,
                ]
            )
    report = [
        banner("Table 1: matching single nodes (induced ranks vs human)"),
        format_table(["site", "kind", "query", "valid days", "c-changes"], rows),
    ]
    emit("table1_single_showcase", "\n".join(report))

    assert all(o.records["generated"].valid_days >= 0 for o in outcomes)

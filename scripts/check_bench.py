#!/usr/bin/env python
"""CI bench-regression gate over the BENCH_*.json files.

PRs 1–3 each leave a machine-readable benchmark behind
(``BENCH_xpath.json``, ``BENCH_runtime.json``, ``BENCH_serving.json``)
but nothing compared them across commits — a PR could quietly halve the
engine speedup and CI would stay green.  This script closes that gap:

* the **baseline** is the committed snapshot under
  ``benchmarks/baselines/`` (refresh it when a PR intentionally moves a
  number; CI can also point ``--baseline-dir`` at the previous run's
  downloaded ``bench-json`` artifact instead);
* the **current** numbers are the files the smoke benchmarks just wrote
  at the repository root (or ``--current-dir``);
* only the **headline ratios** are compared — the ``speedup`` /
  ``throughput`` sections, which divide two measurements from the *same*
  machine and are therefore far more stable across hardware than raw
  wall-clock times;
* a headline ratio may regress by at most ``--tolerance`` (default 20%);
  anything worse fails the job.  Ratios missing from the current run
  also fail (a silently dropped metric is a regression in coverage);
  ratios new in the current run are reported but not gated.

One carve-out: ``BENCH_xpath.json`` ratios divide *fixed seed-era
constants* by the current run's wall-clock, so they scale inversely
with host speed (and its axis micro-benchmarks sit in the sub-ms noise
floor).  Those get a wide 60% band — enough to catch an engine collapse
(losing the compiled path is a 10–70× drop) without flaking on runner
variance.  ``BENCH_net.json`` rides loopback-TCP and thread-scheduler
variance and gets a 35% band (its benchmark asserts the ≥ 1.2× bar
itself, so the hard floor holds regardless); ``BENCH_cluster.json``
additionally rides multi-process scheduling and CPU-count differences
between runners and gets the same 35% band (its benchmark asserts the
≥ 1.4× bar itself on any multi-core host); when either side of a
comparison was recorded with ``gate_applies: false`` (a single-CPU
host, where a cross-host parallelism ratio cannot materialize) the
ratio is reported but not compared.  ``BENCH_sitegen.json`` divides
its wall-clock generation rate by a fixed pages/sec floor, so like the
xpath file it scales with host speed and gets the 60% band (its
benchmark asserts the ≥ 25 pages/sec floor itself); its process-pool
fan-out ratio self-arms per metric the same way.
``BENCH_induction.json`` divides two same-run wall-clocks but rides
single-process scheduler noise on a heavy workload, and its fold-pool
ratio self-arms per metric on CPU count (the benchmark asserts the
≥ 2× pruned-search bar itself on any host), so it gets the 35% band.
``BENCH_runtime.json`` / ``BENCH_serving.json`` ratios divide two
measurements from the same run and keep the tight default.

``gate_applies`` comes in two shapes: a bare boolean covers the whole
file (the original ``BENCH_cluster.json`` form), while a dict maps
individual metric labels (``"throughput.cached_page_vs_cold"``) to
booleans so one file can mix always-gated ratios with self-arming ones
— metrics absent from the dict stay gated.

When ``--summary`` names a file (default: ``$GITHUB_STEP_SUMMARY``
when set), a markdown ratio table — headline, baseline, current,
verdict, including ``skip`` and ``new`` lines — is appended there, so
a bench regression is readable from the CI run page without
downloading artifacts.

Exit codes: 0 = all within tolerance, 1 = regression (or a baselined
metric disappeared), 2 = setup problem (missing files/directories).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Iterator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Sections whose entries are machine-comparable headline ratios.
RATIO_SECTIONS = ("speedup", "throughput")

#: Per-file tolerance floors (see the module docstring): files whose
#: ratios are relative to fixed seed constants need a wide band, and
#: the network bench rides the host's loopback/scheduler variance
#: (its own ≥ 1.2× assertion stays the hard floor either way).
FILE_TOLERANCES = {
    "BENCH_xpath.json": 0.60,
    "BENCH_net.json": 0.35,
    "BENCH_cluster.json": 0.35,
    "BENCH_sitegen.json": 0.60,
    "BENCH_induction.json": 0.35,
}


def headline_ratios(payload: dict) -> dict[str, float]:
    """``section.key -> ratio`` for every ratio section in a BENCH file."""
    ratios: dict[str, float] = {}
    for section in RATIO_SECTIONS:
        entries = payload.get(section)
        if not isinstance(entries, dict):
            continue
        for key, value in entries.items():
            if isinstance(value, (int, float)):
                ratios[f"{section}.{key}"] = float(value)
    return ratios


def _gate(payload: dict, metric: str) -> bool:
    """Whether ``payload`` arms the gate for ``metric``.

    ``gate_applies`` may be a bare boolean (whole file) or a dict of
    metric labels to booleans (per-metric self-arming); metrics the
    dict does not mention stay gated.
    """
    flag = payload.get("gate_applies", True)
    if isinstance(flag, dict):
        return flag.get(metric, True) is not False
    return flag is not False


def iter_rows(
    baseline_dir: pathlib.Path, current_dir: pathlib.Path, names: list[str]
) -> Iterator[tuple[str, str, float | None, float | None, bool]]:
    """Yield (file, metric, baseline-or-None, current-or-None, gated)
    for every baselined headline ratio, then every ratio that is new in
    the current run (baseline ``None`` — reported, never gated, so a
    bench growing a metric does not invalidate existing baselines).

    ``gated`` is False when either side recorded ``gate_applies:
    false`` for the metric — a bench declaring the ratio meaningless on
    that host (e.g. a cross-host parallelism or cache-race ratio on a
    single-CPU machine).  Such ratios are reported but not compared: a
    single-CPU current run must not fail against a multi-core baseline,
    and a single-CPU baseline must not rubber-stamp a multi-core
    regression as a pass worth trusting.
    """
    for name in names:
        base_payload = json.loads((baseline_dir / name).read_text())
        current_path = current_dir / name
        if not current_path.exists():
            yield name, "<file>", float("nan"), None, True
            continue
        current_payload = json.loads(current_path.read_text())
        current = headline_ratios(current_payload)
        base = headline_ratios(base_payload)
        for metric, base_value in sorted(base.items()):
            gated = _gate(base_payload, metric) and _gate(current_payload, metric)
            yield name, metric, base_value, current.get(metric), gated
        for metric in sorted(current.keys() - base.keys()):
            gated = _gate(base_payload, metric) and _gate(current_payload, metric)
            yield name, metric, None, current[metric], gated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any BENCH_*.json headline ratio regresses."
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="committed baselines (or a downloaded bench-json artifact)",
    )
    parser.add_argument(
        "--current-dir",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="where the current BENCH_*.json files live",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="max allowed fractional drop per ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--summary",
        type=pathlib.Path,
        default=(
            pathlib.Path(os.environ["GITHUB_STEP_SUMMARY"])
            if os.environ.get("GITHUB_STEP_SUMMARY")
            else None
        ),
        help="append a markdown ratio table to this file "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="BENCH file names to compare (default: every baselined file)",
    )
    args = parser.parse_args(argv)

    if not args.baseline_dir.is_dir():
        print(f"baseline directory not found: {args.baseline_dir}", file=sys.stderr)
        return 2
    names = args.names or sorted(
        path.name for path in args.baseline_dir.glob("BENCH_*.json")
    )
    if not names:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 2
    missing = [name for name in names if not (args.baseline_dir / name).exists()]
    if missing:
        print(f"missing baselines: {', '.join(missing)}", file=sys.stderr)
        return 2

    failures = 0
    rows = list(iter_rows(args.baseline_dir, args.current_dir, names))
    width = max(
        (len(f"{name}:{metric}") for name, metric, _, _, _ in rows), default=20
    )
    fmt = lambda value: "—" if value is None else f"{value:.2f}x"  # noqa: E731
    table: list[tuple[str, str, str, str, str]] = []
    for name, metric, base_value, current_value, gated in rows:
        label = f"{name}:{metric}"
        tolerance = max(args.tolerance, FILE_TOLERANCES.get(name, 0.0))
        if current_value is None:
            print(f"FAIL {label:<{width}}  missing from current run")
            failures += 1
            table.append(
                (name, metric, fmt(base_value), "—", "FAIL (missing from current run)")
            )
            continue
        if base_value is None:
            print(
                f"new  {label:<{width}}  current {current_value:8.2f}x  "
                f"[not in baseline — reported, not gated]"
            )
            table.append(
                (name, metric, "—", fmt(current_value), "new (reported, not gated)")
            )
            continue
        ratio = current_value / base_value if base_value else float("inf")
        line = (
            f"{label:<{width}}  baseline {base_value:8.2f}x  "
            f"current {current_value:8.2f}x  ({ratio:6.1%} of baseline, "
            f"tolerance {tolerance:.0%})"
        )
        detail = f"{ratio:.1%} of baseline, tolerance {tolerance:.0%}"
        if not gated:
            print(f"skip {line}  [gate_applies: false on this host]")
            verdict = "skip (gate_applies: false)"
        elif ratio < 1.0 - tolerance:
            print(f"FAIL {line}")
            failures += 1
            verdict = f"FAIL ({detail})"
        else:
            print(f"ok   {line}")
            verdict = f"ok ({detail})"
        table.append((name, metric, fmt(base_value), fmt(current_value), verdict))

    if args.summary is not None:
        write_summary(args.summary, table, failures)

    if failures:
        print(f"\n{failures} headline ratio(s) regressed past tolerance — see above")
        return 1
    print("\nall headline ratios within tolerance of baseline")
    return 0


def write_summary(
    path: pathlib.Path, table: list[tuple[str, str, str, str, str]], failures: int
) -> None:
    """Append the ratio table as GitHub-flavored markdown (the
    ``$GITHUB_STEP_SUMMARY`` contract is append-only)."""
    lines = [
        "### Bench regression gate",
        "",
        "| file | headline | baseline | current | verdict |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += [
        f"| {name} | {metric} | {base} | {current} | {verdict} |"
        for name, metric, base, current, verdict in table
    ]
    lines.append("")
    lines.append(
        f"**{failures} headline ratio(s) regressed past tolerance.**"
        if failures
        else "**All headline ratios within tolerance of baseline.**"
    )
    lines.append("")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


if __name__ == "__main__":
    sys.exit(main())

"""Corpus-wide invariants: every site renders, every human wrapper works."""

import pytest

from repro.dom.node import TextNode
from repro.evolution import SyntheticArchive
from repro.metrics import wrapper_matches_targets
from repro.sites import build_corpus, multi_node_tasks, single_node_tasks
from repro.sites.verticals import VERTICAL_FACTORIES
from repro.xpath import parse_query

CORPUS = build_corpus()


class TestCorpusShape:
    def test_at_least_50_sites(self):
        assert len(CORPUS) >= 50

    def test_at_least_12_verticals(self):
        assert len({s.vertical for s in CORPUS}) >= 12

    def test_100_plus_tasks(self):
        assert len(single_node_tasks()) + len(multi_node_tasks()) >= 100

    def test_paper_dataset_sizes_available(self):
        assert len(single_node_tasks()) >= 50
        assert len(multi_node_tasks()) >= 50

    def test_unique_task_ids(self):
        ids = [t.task_id for t in single_node_tasks()] + [
            t.task_id for t in multi_node_tasks()
        ]
        assert len(ids) == len(set(ids))

    def test_limit_parameter(self):
        assert len(single_node_tasks(limit=5)) == 5


@pytest.mark.parametrize("vertical", sorted(VERTICAL_FACTORIES))
class TestEveryVertical:
    def test_snapshot0_valid(self, vertical):
        spec = VERTICAL_FACTORIES[vertical](0)
        archive = SyntheticArchive(spec, n_snapshots=1)
        doc = archive.snapshot(0)
        assert doc.node_count() > 20
        for task in spec.tasks:
            targets = archive.targets(doc, task.role)
            assert targets, f"{task.task_id}: no targets"
            if not task.multi:
                assert len(targets) == 1
            wrapper = parse_query(task.human_wrapper)
            assert wrapper_matches_targets(wrapper, doc, targets), task.task_id

    def test_volatile_data_is_marked(self, vertical):
        spec = VERTICAL_FACTORIES[vertical](0)
        doc = SyntheticArchive(spec, n_snapshots=1).snapshot(0)
        volatile = [
            n
            for n in doc.root.descendants()
            if isinstance(n, TextNode) and n.meta.get("volatile")
        ]
        assert volatile, f"{vertical}: no volatile data text marked"

    def test_variants_differ(self, vertical):
        from repro.dom.signatures import subtree_signature

        a = VERTICAL_FACTORIES[vertical](0)
        b = VERTICAL_FACTORIES[vertical](1)
        doc_a = SyntheticArchive(a, n_snapshots=1).snapshot(0)
        doc_b = SyntheticArchive(b, n_snapshots=1).snapshot(0)
        assert subtree_signature(doc_a.root) != subtree_signature(doc_b.root)


class TestMultiTaskShapes:
    def test_multi_targets_in_paper_range(self):
        sizes = []
        for corpus_task in multi_node_tasks():
            archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
            doc = archive.snapshot(0)
            sizes.append(len(archive.targets(doc, corpus_task.task.role)))
        assert min(sizes) >= 2
        assert max(sizes) <= 59

"""Tests for the seeded data generators."""

import random

import pytest

from repro.sites import datagen
from repro.util import seeded_rng


class TestGenerators:
    @pytest.mark.parametrize("kind", datagen.kinds())
    def test_every_kind_produces_nonempty_strings(self, kind):
        value = datagen.generate(kind, random.Random(0))
        assert isinstance(value, str) and value

    def test_deterministic_per_seed(self):
        for kind in datagen.kinds():
            a = datagen.generate(kind, random.Random(7))
            b = datagen.generate(kind, random.Random(7))
            assert a == b

    def test_varies_across_seeds(self):
        values = {datagen.generate("headline", random.Random(s)) for s in range(20)}
        assert len(values) > 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            datagen.generate("nonsense", random.Random(0))

    def test_person_name_has_two_parts(self):
        assert len(datagen.person_name(random.Random(3)).split()) == 2

    def test_price_format(self):
        assert datagen.price(random.Random(1)).startswith("$")


class TestSeededRng:
    def test_same_parts_same_stream(self):
        a = seeded_rng("x", 1, "y")
        b = seeded_rng("x", 1, "y")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        a = seeded_rng("x", 1)
        b = seeded_rng("x", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_no_separator_collisions(self):
        # ("ab", "c") must differ from ("a", "bc")
        a = seeded_rng("ab", "c")
        b = seeded_rng("a", "bc")
        assert a.random() != b.random()

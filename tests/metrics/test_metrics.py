"""Tests for PRF counts and the robustness metric."""

from repro.dom import E, T, document, parse_html
from repro.metrics import (
    prf_counts,
    query_robust_between,
    same_result_set,
    wrapper_matches_targets,
)
from repro.xpath import parse_query


class TestPrfCounts:
    def test_exact(self):
        a, b = E("a"), E("b")
        counts = prf_counts([a, b], [a, b])
        assert counts.exact and counts.precision == counts.recall == 1.0

    def test_false_positive(self):
        a, b = E("a"), E("b")
        counts = prf_counts([a, b], [a])
        assert counts.fp == 1 and counts.precision == 0.5

    def test_false_negative(self):
        a, b = E("a"), E("b")
        counts = prf_counts([a], [a, b])
        assert counts.fn == 1 and counts.recall == 0.5

    def test_f_beta(self):
        a, b = E("a"), E("b")
        counts = prf_counts([a], [a, b])
        assert 0 < counts.f_beta(0.5) < 1


class TestRobustBetween:
    def wrapper(self):
        return parse_query('descendant::span[@class="x"]')

    def page(self, text):
        return parse_html(f'<div><span class="x">{text}</span></div>')

    def test_robust_when_subtrees_equal(self):
        assert query_robust_between(self.wrapper(), self.page("a"), self.page("a"))

    def test_not_robust_when_text_changes(self):
        assert not query_robust_between(self.wrapper(), self.page("a"), self.page("b"))

    def test_not_robust_when_cardinality_changes(self):
        two = parse_html('<div><span class="x">a</span><span class="x">a</span></div>')
        assert not query_robust_between(self.wrapper(), self.page("a"), two)

    def test_order_independent(self):
        doc_a = parse_html('<div><span class="x">a</span><span class="x">b</span></div>')
        doc_b = parse_html('<div><span class="x">b</span><span class="x">a</span></div>')
        assert query_robust_between(self.wrapper(), doc_a, doc_b)


class TestWrapperMatches:
    def test_same_result_set_by_identity(self):
        a, b = E("a"), E("b")
        assert same_result_set([a, b], [b, a])
        assert not same_result_set([a], [a, b])

    def test_wrapper_matches_targets(self, imdb_doc):
        q = parse_query('descendant::span[@itemprop="name"]')
        spans = list(imdb_doc.root.iter_find(tag="span"))
        assert wrapper_matches_targets(q, imdb_doc, spans)
        assert not wrapper_matches_targets(q, imdb_doc, spans[:1])

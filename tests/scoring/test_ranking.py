"""Tests for F-beta, instance ranking, and K-best tables."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.scoring import KBestTable, QueryInstance, fbeta, rank_key
from repro.xpath import parse_query


def inst(text, tp=1, fp=0, fn=0, score=1.0):
    return QueryInstance(parse_query(text), tp=tp, fp=fp, fn=fn, score=score)


class TestFBeta:
    def test_perfect(self):
        assert fbeta(5, 0, 0) == 1.0

    def test_zero_when_no_true_positives(self):
        assert fbeta(0, 3, 2) == 0.0
        assert fbeta(0, 0, 0) == 0.0

    def test_beta_half_weighs_precision(self):
        precise = fbeta(1, 0, 1, beta=0.5)  # precision 1, recall .5
        recallful = fbeta(1, 1, 0, beta=0.5)  # precision .5, recall 1
        assert precise > recallful

    def test_beta_two_weighs_recall(self):
        precise = fbeta(1, 0, 1, beta=2.0)
        recallful = fbeta(1, 1, 0, beta=2.0)
        assert recallful > precise

    def test_matches_paper_formula(self):
        tp, fp, fn, beta = 3, 1, 2, 0.5
        prec, rec = tp / (tp + fp), tp / (tp + fn)
        expected = (1 + beta**2) * prec * rec / (beta**2 * prec + rec)
        assert fbeta(tp, fp, fn, beta) == pytest.approx(expected)


class TestRankKey:
    def test_higher_f_wins(self):
        good = inst("descendant::a", tp=2, score=100.0)
        bad = inst("descendant::b", tp=1, fp=1, score=1.0)
        assert rank_key(good) < rank_key(bad)

    def test_lower_score_wins_on_equal_f(self):
        cheap = inst("descendant::a", score=10.0)
        costly = inst("descendant::b", score=20.0)
        assert rank_key(cheap) < rank_key(costly)

    def test_deterministic_tiebreak(self):
        a = inst("descendant::a")
        b = inst("descendant::b")
        assert rank_key(a) != rank_key(b)


class TestKBestTable:
    def test_keeps_k_best(self):
        table = KBestTable(2)
        table.insert(inst("descendant::a", score=3.0))
        table.insert(inst("descendant::b", score=1.0))
        table.insert(inst("descendant::c", score=2.0))
        assert [i.score for i in table.items] == [1.0, 2.0]

    def test_rejects_when_full_and_worse(self):
        table = KBestTable(1)
        assert table.insert(inst("descendant::a", score=1.0))
        assert not table.insert(inst("descendant::b", score=2.0))

    def test_dedupes_by_query_keeping_best(self):
        table = KBestTable(3)
        table.insert(inst("descendant::a", tp=1, fp=1, score=5.0))
        table.insert(inst("descendant::a", tp=1, score=5.0))
        assert len(table) == 1
        assert table.best().fp == 0

    def test_duplicate_worse_is_ignored(self):
        table = KBestTable(3)
        table.insert(inst("descendant::a", tp=1, score=5.0))
        assert not table.insert(inst("descendant::a", tp=1, fp=3, score=5.0))
        assert len(table) == 1

    def test_would_accept_when_not_full(self):
        table = KBestTable(2)
        table.insert(inst("descendant::a"))
        assert table.would_accept((0.0, 1e9, 0, ""))

    def test_best_and_iteration_order(self):
        table = KBestTable(3)
        for text, score in [("descendant::a", 2.0), ("descendant::b", 1.0)]:
            table.insert(inst(text, score=score))
        assert table.best().score == 1.0
        assert [i.score for i in table] == [1.0, 2.0]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KBestTable(0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5), st.integers(0, 5), st.integers(0, 5),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_table_is_always_sorted_and_bounded(entries):
    table = KBestTable(5)
    for index, (tp, fp, fn, score) in enumerate(entries):
        table.insert(
            QueryInstance(parse_query(f"descendant::t{index}"), tp, fp, fn, score)
        )
    keys = [rank_key(i) for i in table.items]
    assert keys == sorted(keys)
    assert len(table) <= 5
